//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the benchmark-harness surface its benches use:
//! `Criterion::benchmark_group`, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter` and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a plain wall-clock loop
//! (warmup + timed samples, mean/min reported) — adequate for the
//! relative comparisons the benches print, with none of criterion's
//! statistics machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
        }
    }
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(param.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            budget: self.measurement_time,
            samples: self.sample_size,
            total: Duration::ZERO,
            min: Duration::MAX,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        println!(
            "{}/{}: mean {:.1} ns/iter, min {:.1} ns ({} iters)",
            self.name,
            id.0,
            mean_ns,
            if b.min == Duration::MAX {
                0.0
            } else {
                b.min.as_nanos() as f64
            },
            b.iters,
        );
    }
}

/// Passed to each benchmark closure; runs and times the workload.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    total: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warmup iteration.
        std::hint::black_box(f());
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let dt = t0.elapsed();
            self.total += dt;
            self.min = self.min.min(dt);
            self.iters += 1;
            if started.elapsed() > self.budget {
                break;
            }
        }
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups (CLI flags are ignored).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
