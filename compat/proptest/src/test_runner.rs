//! Runner configuration and case-failure plumbing for the `proptest!` macro.

use std::fmt;

/// How many cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case (carried by `prop_assert*` via `return Err`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// FNV-1a hash of a test name, used as the deterministic base seed.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}
