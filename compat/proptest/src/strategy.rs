//! Value-generation strategies (the subset the workspace uses).

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng(u64);

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng(seed ^ 0x9E37_79B9_7F4A_7C15)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; 0 when `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test-case inputs.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase for use in [`Union`] / `prop_oneof!`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Uniform choice between strategies yielding the same type.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo + off) as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.unit_f64() as f32 * (self.end - self.start)
    }
}

impl Strategy for bool {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// String pattern strategy: supports `.{a,b}` (a..=b printable ASCII
/// chars, the one pattern form the workspace uses); any other pattern is
/// treated as a literal.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        if let Some((lo, hi)) = parse_dot_repeat(self) {
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| (0x20 + rng.below(0x5f) as u8) as char)
                .collect()
        } else {
            (*self).to_string()
        }
    }
}

fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
    let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+ ))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}
