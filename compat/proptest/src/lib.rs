//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the property-testing surface it actually uses:
//! the `proptest!` / `prop_oneof!` / `prop_assert*` macros, integer /
//! float / tuple / `Just` / `prop_map` / collection strategies and a
//! simple `.{a,b}`-pattern string strategy. Inputs are generated from a
//! deterministic per-test seed (no shrinking): a failing case always
//! reproduces on rerun, which is the property the test-suite relies on.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Expand property-test functions: each `name in strategy` parameter is
/// generated from a deterministic per-case RNG and the body is run for
/// `ProptestConfig::cases` cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::fnv1a(stringify!($name));
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::strategy::TestRng::new(
                    __seed ^ (__case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    ::std::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __cfg.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Pick uniformly between the given strategies (all yielding one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Assert inside a `proptest!` body; failure aborts the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {:?} != {:?}", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{:?} != {:?}: {}", __a, __b, format!($($fmt)*)),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, "assertion failed: {:?} == {:?}", __a, __b);
    }};
}
