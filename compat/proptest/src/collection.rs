//! Collection strategies.

use crate::strategy::{Strategy, TestRng};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Allowed element counts for [`vec()`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// `Vec` strategy: a length drawn from `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
