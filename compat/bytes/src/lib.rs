//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small `Bytes` surface it actually uses: cheaply
//! cloneable immutable buffers (clones share storage), zero-copy slicing,
//! and the usual conversions. Semantics match the real crate for this
//! subset; nothing else is provided.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

/// A cheaply cloneable, immutable contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Bytes {
        Bytes {
            repr: Repr::Static(&[]),
            start: 0,
            end: 0,
        }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes {
            repr: Repr::Static(bytes),
            start: 0,
            end: bytes.len(),
        }
    }

    /// Copy a slice into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// A sub-range of this buffer sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "range {begin}..{end} out of bounds for Bytes of length {len}"
        );
        Bytes {
            repr: self.repr.clone(),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(b) => &b[self.start..self.end],
            Repr::Shared(v) => &v[self.start..self.end],
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(b: &'static [u8]) -> Bytes {
        Bytes::from_static(b)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                _ => write!(f, "\\x{b:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        let s = a.slice(1..3);
        assert_eq!(&s[..], &[2, 3]);
        assert_eq!(unsafe { a.as_ptr().add(1) }, s.as_ptr());
    }

    #[test]
    fn conversions_and_eq() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(vec![97, 98, 99]));
        assert_eq!(Bytes::copy_from_slice(b"xy").len(), 2);
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(String::from("hi")), Bytes::from_static(b"hi"));
        assert_eq!(format!("{:?}", Bytes::from_static(b"a\x01")), "b\"a\\x01\"");
    }
}
