//! Failure injection: the system under a hostile WAN and under blackout
//! windows. Migration must not make a lossy network worse — TCP recovers
//! what the wire drops, UDP loses only what the wire (not the migration)
//! loses.

use dvelm::dve::{run_freeze_bench, FreezeBenchConfig};
use dvelm::net::LossModel;
use dvelm::openarena::{run_scenario, OaScenario};
use dvelm::prelude::*;

#[test]
fn openarena_on_a_lossy_wan() {
    // 2% loss on every client access link, both directions.
    let s = OaScenario {
        n_clients: 8,
        run_for: SimTime::from_secs(8),
        ..OaScenario::default()
    };
    // run_scenario builds its own world; emulate by building the same
    // scenario manually with loss — simplest is to reuse the scenario and
    // accept the loss knob at the world level via the router.
    let r = {
        // A lossy variant: rebuild through the scenario, then inject loss
        // before the run would be ideal; instead run the stock scenario and
        // a manual lossy world below.
        run_scenario(&s)
    };
    let clean_cmds = r.server_usercmds;

    // Manual lossy world: same topology, 2% WAN loss.
    let mut w = World::new(WorldConfig {
        seed: 42,
        ..WorldConfig::default()
    });
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    use dvelm::openarena::{OaClient, OaServer};
    use std::cell::RefCell;
    use std::rc::Rc;
    let usercmds = Rc::new(RefCell::new(0u64));
    let server = w.spawn_process(
        n0,
        "oa",
        512,
        4096,
        Box::new(OaServer::new(usercmds.clone())),
    );
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 27960);
    w.app_udp_bind(n0, server, addr);
    let mut arrivals = Vec::new();
    for _ in 0..8 {
        let ch = w.add_client_host();
        let arr = Rc::new(RefCell::new(Vec::new()));
        arrivals.push(arr.clone());
        let pid = w.spawn_process(ch, "cl", 64, 256, Box::new(OaClient::new(addr, arr)));
        w.app_udp_socket(ch, pid, Some(addr));
    }
    w.router.set_client_loss(LossModel::Bernoulli(0.02));

    w.run_until(SimTime::from_secs(5));
    w.begin_migration(server, n1, Strategy::IncrementalCollective)
        .expect("starts");
    w.run_until(SimTime::from_secs(8));

    let report = &w.reports[0];
    assert!(
        report.freeze_us() < 60 * MILLISECOND,
        "loss must not lengthen the freeze"
    );
    assert_eq!(w.host_of(server), Some(n1));
    // ~2% loss: the lossy run sees slightly fewer usercmds than the clean
    // one, but the service works throughout.
    let lossy_cmds = *usercmds.borrow();
    assert!(
        lossy_cmds > clean_cmds / 2,
        "service collapsed: {lossy_cmds} vs {clean_cmds}"
    );
    for arr in &arrivals {
        let after = arr
            .borrow()
            .iter()
            .filter(|t| **t > SimTime::from_secs(6))
            .count();
        assert!(after > 10, "viewer starved after migration under loss");
    }
}

#[test]
fn tcp_freeze_bench_is_loss_agnostic_for_correctness() {
    // The freeze-time experiment's correctness claims (exactly-once stream,
    // all sockets migrated) hold regardless of strategy; run the two
    // collective strategies back to back as a smoke check that repeated
    // worlds do not interfere.
    for strategy in [Strategy::Collective, Strategy::IncrementalCollective] {
        let r = run_freeze_bench(&FreezeBenchConfig {
            connections: 48,
            strategy,
            repetitions: 2,
            seed: 77,
            monitored: false,
        });
        for rep in &r.reports {
            assert_eq!(rep.sockets_migrated, 48 + 2);
            assert_eq!(rep.parked_nonempty_sockets, 0, "signal-based default");
        }
    }
}

#[test]
fn blackout_window_on_destination_link_is_survivable() {
    // The destination node's public downlink goes dark for 200 ms right
    // around the migration: broadcast copies are lost there, so some
    // packets are neither processed (source detached) nor captured. TCP
    // retransmission must still recover the stream; this is the worst-case
    // combination of migration + network fault.
    use dvelm::dve::{DbServer, SwarmClient, ZoneServer, DB_PORT, ZONE_BASE_PORT};

    let mut w = World::new(WorldConfig {
        seed: 5,
        ..WorldConfig::default()
    });
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let db_host = w.add_database_host();
    let ch = w.add_client_host();

    let db_pid = w.spawn_process(db_host, "mysqld", 64, 256, Box::new(DbServer::new()));
    let db_addr = SockAddr::new(w.hosts[db_host].stack.local_ip, DB_PORT);
    w.app_tcp_listen(db_host, db_pid, db_addr);

    let zone_addr = SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT);
    let zone = w.spawn_process(n0, "zone", 128, 2048, Box::new(ZoneServer::new()));
    w.app_tcp_listen(n0, zone, zone_addr);
    w.app_tcp_connect(n0, zone, db_addr, true);

    let swarm = SwarmClient::new();
    let received = swarm.updates_received.clone();
    let swarm_pid = w.spawn_process(ch, "swarm", 32, 128, Box::new(swarm));
    for _ in 0..16 {
        w.app_tcp_connect(ch, swarm_pid, zone_addr, false);
    }

    w.run_until(SimTime::from_millis(1_200));
    // Blackout on node1's broadcast downlink across the expected freeze.
    let node1 = w.hosts[n1].stack.node;
    w.router
        .node_downlink_mut(node1)
        .expect("node1 attached")
        .set_loss(LossModel::Window {
            from: SimTime::from_millis(1_800),
            to: SimTime::from_millis(2_000),
        });
    w.begin_migration(zone, n1, Strategy::IncrementalCollective)
        .expect("starts");
    w.run_until(SimTime::from_secs(6));

    assert_eq!(
        w.host_of(zone),
        Some(n1),
        "migration completed despite the fault"
    );
    let before = *received.borrow();
    w.run_for(2 * SECOND);
    let after = *received.borrow();
    assert!(
        after > before + 16 * 20,
        "updates keep flowing at ~20/s per connection after recovery: {before} → {after}"
    );
}
