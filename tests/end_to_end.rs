//! Cross-crate integration tests: full scenarios exercising the public API
//! the way the paper's evaluation does.

use dvelm::dve::{run_flow_sim, run_freeze_bench, FlowSimConfig, FreezeBenchConfig};
use dvelm::openarena::{run_scenario, snapshot_gaps_ms, OaScenario};
use dvelm::prelude::*;

#[test]
fn openarena_scenario_end_to_end() {
    let s = OaScenario {
        n_clients: 12,
        run_for: SimTime::from_secs(8),
        ..OaScenario::default()
    };
    let r = run_scenario(&s);
    let report = r.report.expect("migration ran");

    // §VI-B: short freeze, transparent to clients.
    assert!(
        report.freeze_us() < 60 * MILLISECOND,
        "freeze {}µs",
        report.freeze_us()
    );
    assert_eq!(report.strategy, Strategy::IncrementalCollective);
    assert!(report.precopy_iterations >= 5);

    // Every client kept receiving snapshots across the migration.
    for (i, arr) in r.client_arrivals.iter().enumerate() {
        let before = arr.iter().filter(|t| **t <= s.migrate_at).count();
        let after = arr.iter().filter(|t| **t > s.migrate_at).count();
        assert!(
            before > 50,
            "client {i} received too little before: {before}"
        );
        assert!(after > 40, "client {i} starved after migration: {after}");
    }

    // The cadence stays 50 ms except around the migration.
    let gaps = snapshot_gaps_ms(&r.packet_log, Port(27960), 10_000);
    let irregular = gaps.iter().filter(|g| (**g - 50.0).abs() >= 5.0).count();
    assert!(irregular <= 2, "{irregular} irregular gaps");
}

#[test]
fn capture_ablation_loses_packets() {
    // §III-B: without the capture hook, datagrams arriving during the socket
    // blackout are lost (UDP does not retransmit).
    let base = OaScenario {
        n_clients: 12,
        run_for: SimTime::from_secs(8),
        ..OaScenario::default()
    };
    let with_capture = run_scenario(&base);
    let without_capture = run_scenario(&OaScenario {
        disable_capture: true,
        ..base
    });

    let r1 = with_capture.report.expect("ran");
    let r2 = without_capture.report.expect("ran");
    assert!(
        r1.packets_reinjected > 0,
        "capture engaged during the blackout"
    );
    assert_eq!(
        r2.packets_reinjected, 0,
        "ablation disabled the capture hook"
    );
    assert!(
        without_capture.server_usercmds < with_capture.server_usercmds,
        "lost usercmds must show: {} !< {}",
        without_capture.server_usercmds,
        with_capture.server_usercmds
    );
}

#[test]
fn freeze_bench_matches_paper_headline() {
    // §VIII: "migrating over 1000 TCP connections can be performed with
    // keeping the process freeze time less than 40ms". We run 260
    // connections in the (debug-friendly) test; the full 1024-point lives in
    // the fig5b harness and stays under 40 ms in release runs.
    let r = run_freeze_bench(&FreezeBenchConfig {
        connections: 260,
        strategy: Strategy::IncrementalCollective,
        repetitions: 2,
        seed: 3,
        monitored: false,
    });
    assert!(
        r.worst_freeze_us < 40 * MILLISECOND,
        "incremental collective must stay interactive: {}µs",
        r.worst_freeze_us
    );
    for report in &r.reports {
        assert_eq!(report.sockets_migrated as usize, 260 + 2);
        assert!(report.freeze_socket_bytes < report.precopy_socket_bytes);
    }
}

#[test]
fn dve_load_balancing_closes_the_gap() {
    let off = run_flow_sim(&FlowSimConfig {
        lb_enabled: false,
        ..FlowSimConfig::default()
    });
    let on = run_flow_sim(&FlowSimConfig {
        lb_enabled: true,
        ..FlowSimConfig::default()
    });
    assert!(
        on.migrations.len() >= 5,
        "only {} migrations",
        on.migrations.len()
    );
    let off_spread = off.mean_spread(600.0, 900.0);
    let on_spread = on.mean_spread(600.0, 900.0);
    assert!(
        on_spread < off_spread / 2.0,
        "LB must at least halve the spread: {on_spread:.1} vs {off_spread:.1}"
    );
    // Process conservation at every sampled instant.
    for t in [100.0, 450.0, 899.0] {
        let total: f64 = on.procs.iter().map(|s| s.at(t).unwrap()).sum();
        assert_eq!(total, 100.0, "at t={t}");
    }
}

#[test]
fn repeated_migration_of_the_same_process() {
    // A process can migrate more than once; in-cluster translation rules
    // must chain correctly (IP1→IP2 then IP1→IP3, never IP2→IP3 at the
    // peer).
    use bytes::Bytes;
    use dvelm::dve::{DbServer, ZoneServer, DB_PORT, ZONE_BASE_PORT};

    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let n2 = w.add_server_node();
    let db_host = w.add_database_host();

    let db = DbServer::new();
    let queries = db.queries.clone();
    let db_pid = w.spawn_process(db_host, "mysqld", 64, 256, Box::new(db));
    let db_addr = SockAddr::new(w.hosts[db_host].stack.local_ip, DB_PORT);
    w.app_tcp_listen(db_host, db_pid, db_addr);

    let zone_pid = w.spawn_process(n0, "zone", 64, 1024, Box::new(ZoneServer::new()));
    w.app_tcp_listen(
        n0,
        zone_pid,
        SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT),
    );
    w.app_tcp_connect(n0, zone_pid, db_addr, true);

    w.run_for(2 * SECOND);
    let q0 = *queries.borrow();
    assert!(q0 > 0);

    // Hop 1: node0 → node1.
    w.begin_migration(zone_pid, n1, Strategy::Collective)
        .expect("hop 1");
    w.run_for(2 * SECOND);
    assert_eq!(w.host_of(zone_pid), Some(n1));
    let q1 = *queries.borrow();
    assert!(q1 > q0, "session alive after hop 1");

    // Hop 2: node1 → node2.
    w.begin_migration(zone_pid, n2, Strategy::Collective)
        .expect("hop 2");
    w.run_for(2 * SECOND);
    assert_eq!(w.host_of(zone_pid), Some(n2));
    let q2 = *queries.borrow();
    assert!(q2 > q1, "session alive after hop 2");

    // The db host holds exactly one rule for the connection (replaced, not
    // chained), and intermediate node1 keeps no self-rule residue.
    assert_eq!(w.hosts[db_host].stack.xlate.len(), 1);
    assert_eq!(
        w.hosts[n1].stack.xlate.self_rule_count(),
        0,
        "no residue on the middle hop"
    );
    assert_eq!(w.hosts[n1].stack.socket_count(), 0);

    // And the zone server can still hit the database directly.
    let _ = Bytes::new();
}

#[test]
fn world_runs_are_deterministic() {
    let run = || {
        let s = OaScenario {
            n_clients: 6,
            run_for: SimTime::from_secs(7),
            ..OaScenario::default()
        };
        let r = run_scenario(&s);
        let rep = r.report.expect("ran");
        (
            rep.freeze_us(),
            rep.precopy_bytes,
            rep.packets_reinjected,
            r.server_usercmds,
        )
    };
    assert_eq!(run(), run(), "same seed, same world, same numbers");
}

#[test]
fn analytic_model_tracks_the_simulation() {
    // The closed-form model (dvelm-migrate::model) and the packet-level
    // simulation must agree within a factor of two across strategies and
    // sizes — they are independent derivations of the same §III-C argument.
    use dvelm::migrate::{predict_freeze_us, CostModel, WorkloadProfile};
    let cost = CostModel::default();
    for n in [64usize, 256] {
        for strategy in Strategy::ALL {
            let sim = run_freeze_bench(&FreezeBenchConfig {
                connections: n,
                strategy,
                repetitions: 2,
                seed: 1234,
                monitored: false,
            });
            let model = predict_freeze_us(&cost, &WorkloadProfile::zone_server(n as u64), strategy);
            let ratio = sim.worst_freeze_us as f64 / model as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{strategy} at {n} conns: sim {}µs vs model {model}µs (ratio {ratio:.2})",
                sim.worst_freeze_us
            );
        }
    }
}
