//! The zone-handoff matrix (ISSUE 10): interest-managed routing must keep
//! the interest table consistent across every migration strategy and every
//! way a migration can end. Each cell runs the AOI world (zoned inbound
//! routing armed, the zone server registered as its zone's sole serving
//! process) and requires three properties after the dust settles:
//!
//! * **exactly one subscriber per (pid, zone)** — whichever host ends up
//!   owning the process is the zone's only interest seat; neither a
//!   completed handoff nor any abort row may leak the other end's
//!   transient subscription;
//! * **zero `SubscriptionLeak`** — the invariant monitor's interest-table
//!   audit agrees with the placement reconciliation;
//! * **zero TCP payload bytes lost** — the paper's loss-prevention
//!   property holds under zoned routing exactly as under broadcast,
//!   because the destination subscribes the instant its capture hooks are
//!   armed (pre-switch-over rows only: a demand-resolve abort kills the
//!   connections by design, see `tests/fault_matrix.rs`).
//!
//! Rows: clean completion, destination crash before the detach point,
//! destination crash after it, and the epoch fence refusing a stale
//! post-partition restore (`FencedStaleEpoch`) — the latter driven through
//! the conductor, since only negotiated migrations carry an epoch.
//!
//! Also here: the detach-during-frame race (satellite) — a client host
//! departing between a frame's scheduling and its delivery is benign
//! churn, never a route error.

use dvelm::dve::apps::UPDATE_BYTES;
use dvelm::dve::{SwarmClient, ZoneServer, ZONE_BASE_PORT};
use dvelm::lb::ConductorPhase;
use dvelm::migrate::AbortReason;
use dvelm::net::ZoneId;
use dvelm::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// The zone under test (an arbitrary id; the port is its routing identity).
const ZONE: ZoneId = ZoneId(7);

struct Scenario {
    w: World,
    n0: usize,
    n1: usize,
    zone: Pid,
    updates_sent: Rc<RefCell<u64>>,
    bytes_received: Rc<RefCell<u64>>,
}

/// The reference AOI scenario: a zone server on `n0` serving [`ZONE`] on
/// the shared public IP, a 4-connection TCP swarm behind the WAN router,
/// zoned inbound routing armed, invariant monitor on, warmed up for a
/// second. `hot` additionally raises the server's CPU share and starts the
/// conductors (the fenced cell needs a negotiated, epoch-carrying
/// migration; the direct cells steer the transfer themselves).
fn build(seed: u64, strategy: Strategy, hot: bool) -> Scenario {
    let mut w = World::new(WorldConfig {
        seed,
        strategy,
        aoi: true,
        // Stretch control latency so the fenced cell's conductor phases are
        // wide enough to aim a partition into (harmless for direct cells).
        ctrl_latency_us: 20 * MILLISECOND,
        lb: PolicyConfig {
            blacklist_us: 5 * SECOND,
            calm_down_us: 3 * SECOND,
            retry_backoff_base_us: SECOND,
            ..PolicyConfig::default()
        },
        ..WorldConfig::default()
    });
    w.enable_monitor();

    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let ch = w.add_client_host();

    let mut server = ZoneServer::new();
    if hot {
        server.cpu_base = 40.0; // the only worthwhile migration candidate
    }
    let updates_sent = server.updates_sent.clone();
    let zone = w.spawn_process(n0, "zone", 64, 1024, Box::new(server));
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT);
    w.app_tcp_listen(n0, zone, addr);
    w.register_zone_interest(n0, zone, addr.port, ZONE);

    let client = SwarmClient::new();
    let bytes_received = client.bytes_received.clone();
    let swarm = w.spawn_process(ch, "swarm", 64, 256, Box::new(client));
    for _ in 0..4 {
        w.app_tcp_connect(ch, swarm, addr, false);
    }

    w.run_for(SECOND);
    if hot {
        w.enable_load_balancing();
    }
    Scenario {
        w,
        n0,
        n1,
        zone,
        updates_sent,
        bytes_received,
    }
}

/// The matrix's shared acceptance: the zone has exactly one interest seat
/// and it belongs to the host running the serving process; the monitor's
/// audit (which includes the `SubscriptionLeak` rule) is clean.
fn assert_zone_consistent(s: &mut Scenario, what: &str) {
    let owner =
        s.w.host_of(s.zone)
            .unwrap_or_else(|| panic!("{what}: the zone process must be running somewhere"));
    let subs = s.w.zone_subscribers(ZONE);
    assert_eq!(
        subs,
        vec![s.w.hosts[owner].stack.node],
        "{what}: the zone must have exactly one subscriber — its owner's node"
    );
    assert_eq!(
        s.w.zones_of(s.zone),
        vec![ZONE],
        "{what}: the pid's zone registration must survive the handoff"
    );
    s.w.monitor_sweep();
    assert!(
        s.w.violations().is_empty(),
        "{what}: invariant violations (subscription leak?): {:?}",
        s.w.violations()
    );
}

/// Zero TCP payload bytes lost: everything the server wrote up to this
/// instant eventually reaches the clients (TCP retransmission + capture
/// re-injection carry it across freeze and abort alike).
fn assert_bytes_settle(s: &mut Scenario, what: &str) {
    let target = *s.updates_sent.borrow() * UPDATE_BYTES as u64;
    let mut waited = 0u64;
    while *s.bytes_received.borrow() < target {
        assert!(
            waited < 20 * SECOND,
            "{what}: update stream is missing bytes: sent {target}, \
             received {} after 20 s of settling",
            *s.bytes_received.borrow()
        );
        s.w.run_for(100 * MILLISECOND);
        waited += 100 * MILLISECOND;
    }
}

/// Drive the world until the migration crosses its detach point.
fn run_until_past_detach(w: &mut World, mig: dvelm::cluster::MigId, what: &str) {
    let mut deadline = w.now();
    while w.migration_past_detach(mig) == Some(false) {
        deadline += 200;
        w.run_until(deadline);
    }
    assert_eq!(
        w.migration_past_detach(mig),
        Some(true),
        "{what}: migration finished before the crash window opened"
    );
}

// ---------------------------------------------------------------------
// row 1: clean completion — the subscription follows the process
// ---------------------------------------------------------------------

#[test]
fn handoff_clean_complete_moves_the_subscription() {
    for strategy in Strategy::ALL_WITH_RESIDUAL {
        let mut s = build(0x20e1, strategy, false);
        assert_eq!(
            s.w.zone_subscribers(ZONE),
            vec![s.w.hosts[s.n0].stack.node],
            "{strategy:?}: before the handoff the source holds the seat"
        );
        let mig = s.w.begin_migration(s.zone, s.n1, strategy).unwrap();
        s.w.run_for(4 * SECOND);
        assert!(
            s.w.migration_outcome(mig).is_some_and(|o| o.is_completed()),
            "{strategy:?}: clean cell must complete: {:?}",
            s.w.migration_outcome(mig)
        );
        assert_eq!(s.w.host_of(s.zone), Some(s.n1), "{strategy:?}");
        assert_zone_consistent(&mut s, &format!("{strategy:?} clean complete"));
        assert_bytes_settle(&mut s, &format!("{strategy:?} clean complete"));
    }
}

// ---------------------------------------------------------------------
// row 2: destination crash before detach — the source never lost its seat
// ---------------------------------------------------------------------

#[test]
fn handoff_predetach_abort_keeps_source_subscribed() {
    for strategy in Strategy::ALL_WITH_RESIDUAL {
        // Post-copy freezes and detaches at the very first step — there is
        // no pre-detach window to crash in, so row 3 is its only abort row.
        if matches!(strategy, Strategy::PostCopy) {
            continue;
        }
        let mut s = build(0x20e2, strategy, false);
        let mig = s.w.begin_migration(s.zone, s.n1, strategy).unwrap();
        s.w.run_for(5 * MILLISECOND);
        assert_eq!(
            s.w.migration_past_detach(mig),
            Some(false),
            "{strategy:?}: 4 MiB of precopy cannot have finished in 5 ms"
        );
        let n1 = s.n1;
        s.w.inject_fault(Fault::NodeCrash { host: n1 });
        assert!(
            matches!(
                s.w.migration_outcome(mig),
                Some(MigrationOutcome::Aborted {
                    reason: AbortReason::DestinationCrashed,
                    ..
                })
            ),
            "{strategy:?}: expected a DestinationCrashed abort, got {:?}",
            s.w.migration_outcome(mig)
        );
        assert_eq!(s.w.host_of(s.zone), Some(s.n0), "{strategy:?}");
        assert_zone_consistent(&mut s, &format!("{strategy:?} pre-detach abort"));
        assert_bytes_settle(&mut s, &format!("{strategy:?} pre-detach abort"));
    }
}

// ---------------------------------------------------------------------
// row 3: destination crash after detach — the rollback returns the seat
// ---------------------------------------------------------------------

#[test]
fn handoff_postdetach_abort_restores_source_subscription() {
    for strategy in Strategy::ALL_WITH_RESIDUAL {
        let mut s = build(0x20e3, strategy, false);
        let mig = s.w.begin_migration(s.zone, s.n1, strategy).unwrap();
        run_until_past_detach(&mut s.w, mig, &format!("{strategy:?} post-detach"));
        let n1 = s.n1;
        s.w.inject_fault(Fault::NodeCrash { host: n1 });

        let Some(MigrationOutcome::Aborted {
            phase,
            reason,
            recovery,
        }) = s.w.migration_outcome(mig)
        else {
            panic!(
                "{strategy:?}: expected an aborted outcome, got {:?}",
                s.w.migration_outcome(mig)
            );
        };
        assert_eq!(reason, AbortReason::DestinationCrashed, "{strategy:?}");
        assert_eq!(recovery, Recovery::RestoredOnSource, "{strategy:?}");
        assert_eq!(s.w.host_of(s.zone), Some(s.n0), "{strategy:?}");
        assert_zone_consistent(&mut s, &format!("{strategy:?} post-detach abort"));
        // The byte audit only holds for pre-switch-over rows: a crash that
        // lands in demand-resolve kills the connections with the
        // destination (BLCR semantics; the residual strategies switch over
        // at detach, so their crash usually falls there).
        if phase == dvelm::migrate::PhaseId::FreezeDetach {
            assert_bytes_settle(&mut s, &format!("{strategy:?} post-detach abort"));
        }
    }
}

// ---------------------------------------------------------------------
// row 4: the epoch fence refuses a stale restore — seat stays consistent
// ---------------------------------------------------------------------

/// Step in 2 ms slices until `host`'s conductor satisfies `pred`.
fn run_until_phase(w: &mut World, host: usize, what: &str, pred: impl Fn(&ConductorPhase) -> bool) {
    let give_up = w.now() + 60 * SECOND;
    let mut deadline = w.now();
    loop {
        let phase = w.hosts[host].conductor.as_ref().expect("conductor").phase();
        if pred(&phase) {
            return;
        }
        assert!(
            deadline <= give_up,
            "{what}: conductor never reached the target phase (stuck at {phase:?})"
        );
        deadline += 2 * MILLISECOND;
        w.run_until(deadline);
    }
}

#[test]
fn handoff_fenced_stale_epoch_leaves_one_subscriber() {
    // Conductor-negotiated (epoch-carrying) migration per configured
    // strategy ceiling; the partition is aimed into the fence window — the
    // cut opens past detach and heals 1 µs after the destination's lease
    // expires, so the woken transfer's restore is refused by the fence
    // (see `tests/partition_matrix.rs` for the fence choreography itself).
    // Whatever concrete strategy the conductor clamps the ceiling to, the
    // interest table must end with exactly one seat.
    for strategy in Strategy::ALL_WITH_RESIDUAL {
        let what = format!("{strategy:?} fenced stale epoch");
        let mut s = build(0x20e4, strategy, true);
        run_until_phase(&mut s.w, s.n0, &what, |p| {
            matches!(p, ConductorPhase::Sending { .. })
        });
        let mig = s.w.migration_of(s.zone).expect("transfer in flight");
        run_until_past_detach(&mut s.w, mig, &what);
        let phase = s.w.hosts[s.n0]
            .conductor
            .as_ref()
            .expect("conductor")
            .phase();
        let ConductorPhase::Sending { lease_until, .. } = phase else {
            panic!("{what}: sender must still be mid-transfer, got {phase:?}");
        };
        let (a, b) = (s.n0, s.n1);
        let heal_after = lease_until.saturating_since(s.w.now()) + 1;
        s.w.inject_fault(Fault::Partition {
            groups: [HostSet::of(&[a]), HostSet::of(&[b])],
            for_us: heal_after,
        });
        s.w.run_for(40 * SECOND);
        assert!(
            matches!(
                s.w.migration_outcome(mig),
                Some(MigrationOutcome::Aborted {
                    reason: AbortReason::FencedStaleEpoch,
                    ..
                })
            ),
            "{what}: the fence must be what stopped the resume, got {:?}",
            s.w.migration_outcome(mig)
        );
        assert_zone_consistent(&mut s, &what);
        assert_bytes_settle(&mut s, &what);
    }
}

// ---------------------------------------------------------------------
// satellite: a client departing mid-frame is churn, not a route error
// ---------------------------------------------------------------------

#[test]
fn client_departure_races_scheduled_frames_benignly() {
    // The swarm is mid-stream (20 Hz updates across 4 connections, plus
    // TCP ACK chatter) when its host logs off. Frames scheduled toward the
    // departed host — and the server's in-flight replies — must be dropped
    // as benign races, with the route-error tally untouched.
    let mut s = build(0x20e5, Strategy::IncrementalCollective, false);
    let route_errors_before = s.w.route_errors();
    let ch =
        s.w.hosts
            .iter()
            .position(|h| h.kind == dvelm::cluster::HostKind::Client)
            .expect("the scenario has a client host");
    s.w.detach_client_host(ch);
    // The server keeps streaming at the dead connections until its
    // retransmission timers give up — every one of those frames is the
    // race under test.
    s.w.run_for(2 * SECOND);
    assert!(
        s.w.benign_route_races() > 0,
        "a mid-stream departure must race at least one scheduled frame"
    );
    assert_eq!(
        s.w.route_errors(),
        route_errors_before,
        "departed-client races must never count as route errors"
    );
    // The zone's interest seat is untouched by client churn.
    assert_eq!(s.w.zone_subscribers(ZONE), vec![s.w.hosts[s.n0].stack.node]);
    s.w.monitor_sweep();
    assert!(
        s.w.violations().is_empty(),
        "client departure must not trip the monitor: {:?}",
        s.w.violations()
    );
}
