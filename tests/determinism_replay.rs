//! Double-run determinism: build the chaos soak's world — same seed, same
//! topology, same fault plan as `tests/chaos_soak.rs` — twice, replay it
//! with effect logging enabled, and require the two rendered effect streams
//! to be byte-identical. This is the machine-checkable form of the repo's
//! determinism contract: if any `HashMap` iteration order, wall-clock read
//! or unseeded RNG leaks into the simulation (lint rule R1), the two logs
//! diverge here long before a figure regenerates differently.

use dvelm::lb::AdmissionConfig;
use dvelm::migrate::OverloadGuard;
use dvelm::prelude::*;
use dvelm::stack::CaptureBudget;

/// The seed `tests/chaos_soak.rs` soaks under.
const SOAK_SEED: u64 = 0x50a1;
const MIG_CAP: usize = 2;
const CAPTURE_PACKETS: usize = 64;
const CAPTURE_BYTES: usize = 256 * 1024;
/// Long enough to cover every scripted fault through the node crash at 34 s.
const REPLAY_SECS: u64 = 36;

struct Worker {
    share: f64,
    dirty: usize,
}

impl App for Worker {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.set_cpu_share(self.share);
        ctx.touch_memory(self.dirty);
    }
    fn tick_period_us(&self) -> u64 {
        100 * MILLISECOND
    }
}

/// One full replay of the soak scenario: returns the rendered effect log
/// and the final clock.
fn replay() -> (Vec<String>, SimTime) {
    let mut w = World::new(WorldConfig {
        seed: SOAK_SEED,
        admission: AdmissionConfig {
            max_cluster_migrations: MIG_CAP,
            max_node_migrations: 1,
            max_inflight_image_bytes: 256 * 1024 * 1024,
        },
        overload_guard: OverloadGuard {
            deadline_us: Some(10 * SECOND),
            max_stagnant_rounds: Some(8),
        },
        capture_budget: CaptureBudget::bounded(CAPTURE_PACKETS, CAPTURE_BYTES),
        xlate_gc_ttl_us: Some(10 * SECOND),
        ..WorldConfig::default()
    });
    w.enable_effect_log();

    let mut nodes = Vec::new();
    for n in 0..5 {
        let node = w.add_server_node();
        let (count, share) = match n {
            0..=2 => (5, 16.0),
            _ => (1, 6.0),
        };
        for i in 0..count {
            w.spawn_process(
                node,
                &format!("w{n}-{i}"),
                16,
                512,
                Box::new(Worker {
                    share,
                    dirty: 20 + 7 * i,
                }),
            );
        }
        nodes.push(node);
    }

    w.run_for(500 * MILLISECOND);
    w.enable_load_balancing();

    let plan = FaultPlan::new()
        .at(
            SimTime::from_secs(3),
            Fault::Overload {
                host: nodes[0],
                factor: 6,
                for_us: 4 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(5),
            Fault::DownlinkLoss {
                host: nodes[1],
                model: dvelm::net::LossModel::Burst { p: 0.02, burst: 6 },
                for_us: 3 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(8),
            Fault::CaptureInstallFail { host: nodes[3] },
        )
        .at(
            SimTime::from_secs(12),
            Fault::CtrlBlackout {
                host: nodes[3],
                for_us: 4 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(16),
            Fault::RestoreFail { host: nodes[4] },
        )
        .at(
            SimTime::from_secs(20),
            Fault::Overload {
                host: nodes[2],
                factor: 10,
                for_us: 5 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(26),
            Fault::Overload {
                host: nodes[3],
                factor: 4,
                for_us: 0,
            },
        )
        .at(SimTime::from_secs(34), Fault::NodeCrash { host: nodes[4] })
        .at(
            SimTime::from_secs(40),
            Fault::Overload {
                host: nodes[3],
                factor: 1,
                for_us: 0,
            },
        );
    w.install_fault_plan(plan);

    w.run_for(REPLAY_SECS * SECOND);
    (w.effect_log().to_vec(), w.now())
}

#[test]
fn chaos_seed_replays_byte_identical() {
    let (log_a, end_a) = replay();
    let (log_b, end_b) = replay();
    assert!(
        !log_a.is_empty(),
        "the soak scenario migrates under load balancing; an empty effect \
         log means the replay never exercised the pipeline"
    );
    assert_eq!(end_a, end_b, "the two replays must end at the same instant");
    assert_eq!(
        log_a.len(),
        log_b.len(),
        "effect streams differ in length: {} vs {}",
        log_a.len(),
        log_b.len()
    );
    // Element-wise first so a divergence points at the exact effect line.
    for (i, (a, b)) in log_a.iter().zip(&log_b).enumerate() {
        assert_eq!(a, b, "effect streams diverge at entry {i}");
    }
}
