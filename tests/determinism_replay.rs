//! Double-run determinism: build the chaos soak's world — same seed, same
//! topology, same fault plan as `tests/chaos_soak.rs` — twice, replay it
//! with effect logging enabled, and require the two rendered effect streams
//! to be byte-identical. This is the machine-checkable form of the repo's
//! determinism contract: if any `HashMap` iteration order, wall-clock read
//! or unseeded RNG leaks into the simulation (lint rule R1), the two logs
//! diverge here long before a figure regenerates differently.
//!
//! Since the parallel core landed, the contract is two-dimensional: the
//! same world must also produce byte-identical effect streams at *any*
//! worker-thread count. The chaos scenario is replayed at 1, 2 and 8
//! shards, and a broadcast-heavy scenario (unlimited capture budget, so
//! rx rounds stay active even while migrations are in flight) at 1, 2
//! and 4 — the latter is the path where deliveries genuinely fan out
//! across the worker pool.

use dvelm::cluster::shards_from_env;
use dvelm::lb::AdmissionConfig;
use dvelm::migrate::OverloadGuard;
use dvelm::openarena::apps::{OaClient, OaServer, OA_PORT};
use dvelm::prelude::*;
use dvelm::stack::CaptureBudget;
use std::cell::RefCell;
use std::rc::Rc;

/// The seed `tests/chaos_soak.rs` soaks under.
const SOAK_SEED: u64 = 0x50a1;
const MIG_CAP: usize = 2;
const CAPTURE_PACKETS: usize = 64;
const CAPTURE_BYTES: usize = 256 * 1024;
/// Long enough to cover every scripted fault through the node crash at 34 s.
const REPLAY_SECS: u64 = 36;

struct Worker {
    share: f64,
    dirty: usize,
}

impl App for Worker {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.set_cpu_share(self.share);
        ctx.touch_memory(self.dirty);
    }
    fn tick_period_us(&self) -> u64 {
        100 * MILLISECOND
    }
}

/// One full replay of the soak scenario: returns the rendered effect log
/// and the final clock. Runs at the environment's default shard count
/// (`DVELM_SHARDS` or 1), so the CI shard matrix replays it sharded.
fn replay() -> (Vec<String>, SimTime) {
    replay_with(shards_from_env().unwrap_or(1))
}

/// The soak replay at an explicit worker-thread count.
fn replay_with(threads: usize) -> (Vec<String>, SimTime) {
    replay_full(threads, false)
}

/// The soak replay with the invariant monitor optionally armed. The monitor
/// observes the run without scheduling events or drawing randomness, so the
/// `monitored == plain` comparison in
/// [`monitor_does_not_perturb_the_stream`] is the zero-cost-when-disabled
/// contract stated as a byte equality.
fn replay_full(threads: usize, monitored: bool) -> (Vec<String>, SimTime) {
    let mut w = World::new(WorldConfig {
        seed: SOAK_SEED,
        threads,
        admission: AdmissionConfig {
            max_cluster_migrations: MIG_CAP,
            max_node_migrations: 1,
            max_inflight_image_bytes: 256 * 1024 * 1024,
        },
        overload_guard: OverloadGuard {
            deadline_us: Some(10 * SECOND),
            max_stagnant_rounds: Some(8),
            // Mirror the chaos soak: non-converging precopies escalate to
            // hybrid switch-overs, so the replay also proves the
            // demand-resolve path is shard-count-deterministic.
            escalate_nonconverging: true,
        },
        capture_budget: CaptureBudget::bounded(CAPTURE_PACKETS, CAPTURE_BYTES),
        xlate_gc_ttl_us: Some(10 * SECOND),
        ..WorldConfig::default()
    });
    w.enable_effect_log();
    if monitored {
        w.enable_monitor();
    }

    let mut nodes = Vec::new();
    for n in 0..5 {
        let node = w.add_server_node();
        let (count, share) = match n {
            0..=2 => (5, 16.0),
            _ => (1, 6.0),
        };
        for i in 0..count {
            w.spawn_process(
                node,
                &format!("w{n}-{i}"),
                16,
                512,
                Box::new(Worker {
                    share,
                    dirty: 20 + 7 * i,
                }),
            );
        }
        nodes.push(node);
    }

    w.run_for(500 * MILLISECOND);
    w.enable_load_balancing();

    let plan = FaultPlan::new()
        .at(
            SimTime::from_secs(3),
            Fault::Overload {
                host: nodes[0],
                factor: 6,
                for_us: 4 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(5),
            Fault::DownlinkLoss {
                host: nodes[1],
                model: dvelm::net::LossModel::Burst { p: 0.02, burst: 6 },
                for_us: 3 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(8),
            Fault::CaptureInstallFail { host: nodes[3] },
        )
        .at(
            SimTime::from_secs(12),
            Fault::CtrlBlackout {
                host: nodes[3],
                dir: CtrlDir::Both,
                for_us: 4 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(16),
            Fault::RestoreFail { host: nodes[4] },
        )
        .at(
            SimTime::from_secs(20),
            Fault::Overload {
                host: nodes[2],
                factor: 10,
                for_us: 5 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(26),
            Fault::Overload {
                host: nodes[3],
                factor: 4,
                for_us: 0,
            },
        )
        .at(SimTime::from_secs(34), Fault::NodeCrash { host: nodes[4] })
        .at(
            SimTime::from_secs(40),
            Fault::Overload {
                host: nodes[3],
                factor: 1,
                for_us: 0,
            },
        );
    w.install_fault_plan(plan);

    w.run_for(REPLAY_SECS * SECOND);
    if monitored {
        w.monitor_sweep();
        assert!(
            w.violations().is_empty(),
            "the fault-free-of-partitions soak run must hold every \
             invariant: {:?}",
            w.violations()
        );
    }
    (w.effect_log().to_vec(), w.now())
}

/// Arming the invariant monitor must not change a single byte of the
/// effect stream: the monitor observes state transitions, it never
/// schedules events or draws from the world RNG. This is the "always-on,
/// zero cost when disabled" contract — figures regenerated with the
/// monitor armed are the same figures.
#[test]
fn monitor_does_not_perturb_the_stream() {
    let (plain, end_plain) = replay_full(1, false);
    let (monitored, end_monitored) = replay_full(1, true);
    assert_eq!(
        end_plain, end_monitored,
        "monitored and plain replays must end at the same instant"
    );
    assert_logs_identical("plain", &plain, "monitored", &monitored);
}

/// The figures stay honest under the monitor: the fault-free scale cell's
/// deterministic fingerprint and the Fig. 5b/5c freeze-bench outputs
/// (worst/mean freeze time, freeze-phase socket bytes, and the full
/// per-run reports including the phase timeline) are byte-identical with
/// the monitor armed. A monitor that scheduled an event or drew from the
/// world RNG would shift a timestamp here.
#[test]
fn monitor_does_not_perturb_figures() {
    use dvelm::dve::{run_freeze_bench, FreezeBenchConfig};
    use dvelm_bench::scale::{run_scale, ScaleConfig};

    let scale_cfg = ScaleConfig::smoke();
    let plain = run_scale(&scale_cfg);
    let monitored = run_scale(&ScaleConfig {
        monitored: true,
        ..scale_cfg
    });
    assert_eq!(
        plain.det_fingerprint(),
        monitored.det_fingerprint(),
        "scale-cell fingerprint must not depend on the monitor"
    );

    let freeze_cfg = FreezeBenchConfig {
        connections: 48,
        repetitions: 2,
        seed: 21,
        ..FreezeBenchConfig::default()
    };
    let plain = run_freeze_bench(&freeze_cfg);
    let monitored = run_freeze_bench(&FreezeBenchConfig {
        monitored: true,
        ..freeze_cfg
    });
    assert_eq!(plain.worst_freeze_us, monitored.worst_freeze_us);
    assert_eq!(plain.mean_freeze_us, monitored.mean_freeze_us);
    assert_eq!(
        plain.worst_freeze_socket_bytes,
        monitored.worst_freeze_socket_bytes
    );
    assert_eq!(
        format!("{:?}", plain.reports),
        format!("{:?}", monitored.reports),
        "freeze-bench reports (incl. the phase timeline) must be \
         identical with the monitor armed"
    );
}

/// The residual-dependency strategies go through demand-fetch and
/// write-back queues that post-copy work shares with ordinary traffic —
/// the scale cell's deterministic fingerprint (which folds in the
/// demand-fetch / write-back counters) must still be thread-invariant,
/// and the cells must actually exercise those queues.
#[test]
fn residual_scale_cells_are_thread_invariant() {
    use dvelm_bench::scale::{run_scale, ScaleConfig};
    use dvelm_migrate::Strategy;

    for strategy in [Strategy::PostCopy, Strategy::Hybrid { precopy_rounds: 2 }] {
        let mut fingerprints = Vec::new();
        let mut resolved = None;
        for threads in [1usize, 2, 8] {
            let cell = run_scale(&ScaleConfig {
                threads,
                strategy,
                ..ScaleConfig::smoke()
            });
            assert!(
                cell.migrations_completed > 0,
                "{strategy}: the smoke cell must complete migrations"
            );
            assert!(
                cell.demand_fetch_pages > 0 || cell.writeback_pages > 0,
                "{strategy}: a residual-strategy cell must move pages through \
                 the demand-fetch or write-back queue"
            );
            resolved.get_or_insert_with(|| cell.det_fingerprint());
            fingerprints.push((threads, cell.det_fingerprint()));
        }
        let reference = resolved.unwrap();
        for (threads, fp) in &fingerprints {
            assert_eq!(
                fp, &reference,
                "{strategy}: scale-cell fingerprint must not depend on the \
                 worker-thread count (diverged at {threads} threads)"
            );
        }
    }
}

#[test]
fn chaos_seed_replays_byte_identical() {
    let (log_a, end_a) = replay();
    let (log_b, end_b) = replay();
    assert!(
        !log_a.is_empty(),
        "the soak scenario migrates under load balancing; an empty effect \
         log means the replay never exercised the pipeline"
    );
    assert_eq!(end_a, end_b, "the two replays must end at the same instant");
    assert_eq!(
        log_a.len(),
        log_b.len(),
        "effect streams differ in length: {} vs {}",
        log_a.len(),
        log_b.len()
    );
    // Element-wise first so a divergence points at the exact effect line.
    for (i, (a, b)) in log_a.iter().zip(&log_b).enumerate() {
        assert_eq!(a, b, "effect streams diverge at entry {i}");
    }
}

/// Diff two effect logs byte-for-byte, pointing at the first divergent
/// entry (with a line of context) rather than dumping both streams.
fn assert_logs_identical(label_a: &str, log_a: &[String], label_b: &str, log_b: &[String]) {
    for (i, (a, b)) in log_a.iter().zip(log_b).enumerate() {
        assert_eq!(
            a, b,
            "effect streams {label_a} vs {label_b} diverge at entry {i}"
        );
    }
    assert_eq!(
        log_a.len(),
        log_b.len(),
        "effect streams {label_a} vs {label_b} differ in length after a \
         common prefix of {} entries",
        log_a.len().min(log_b.len())
    );
}

/// The parallel core's contract on the chaos scenario: 1, 2 and 8 shards
/// replay the same world into byte-identical effect streams. The chaos
/// run uses a *bounded* capture budget, so rx rounds gate themselves off
/// while migrations are in flight — this test proves the gate itself is
/// thread-count-deterministic (a gate that consulted anything
/// thread-dependent would diverge here).
#[test]
fn chaos_seed_is_shard_count_invariant() {
    let (log_1, end_1) = replay_with(1);
    assert!(!log_1.is_empty(), "the soak scenario must produce effects");
    for threads in [2usize, 8] {
        let (log_n, end_n) = replay_with(threads);
        assert_eq!(
            end_1, end_n,
            "1-shard and {threads}-shard replays must end at the same instant"
        );
        assert_logs_identical("1-shard", &log_1, &format!("{threads}-shard"), &log_n);
    }
}

/// A broadcast-heavy scenario where rx rounds are *active* (default
/// unlimited capture budget), with UDP chatter from many clients and two
/// live migrations under load: the path where same-instant deliveries
/// genuinely fan out across the worker pool. Byte-identical at 1, 2 and
/// 4 threads.
#[test]
fn parallel_rounds_replay_byte_identical() {
    fn chatter_replay(threads: usize) -> (Vec<String>, SimTime) {
        let mut w = World::new(WorldConfig {
            seed: SOAK_SEED ^ 0xbca5,
            threads,
            ..WorldConfig::default()
        });
        w.enable_effect_log();

        let mut nodes = Vec::new();
        let mut pids = Vec::new();
        let mut addrs = Vec::new();
        let usercmds = Rc::new(RefCell::new(0u64));
        for n in 0..4 {
            let node = w.add_server_node();
            let pid = w.spawn_process(
                node,
                &format!("oa{n}"),
                128,
                1024,
                Box::new(OaServer::new(usercmds.clone())),
            );
            let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, OA_PORT + n as u16);
            w.app_udp_bind(node, pid, addr);
            nodes.push(node);
            pids.push(pid);
            addrs.push(addr);
        }
        for c in 0..48 {
            let ch = w.add_client_host();
            let addr = addrs[c % addrs.len()];
            let arrivals = Rc::new(RefCell::new(Vec::new()));
            let pid = w.spawn_process(ch, "cl", 16, 64, Box::new(OaClient::new(addr, arrivals)));
            w.app_udp_socket(ch, pid, Some(addr));
        }

        // Heartbeat broadcasts join the packet chatter.
        w.enable_load_balancing();
        w.run_for(SECOND);
        // Two concurrent migrations while rounds stay active (unlimited
        // capture budget): cross-shard freeze/copy/resume must not perturb
        // the stream.
        w.begin_migration(pids[0], nodes[2], Strategy::IncrementalCollective)
            .expect("migration 0 admitted");
        w.begin_migration(pids[1], nodes[3], Strategy::IncrementalCollective)
            .expect("migration 1 admitted");
        w.run_for(3 * SECOND);
        (w.effect_log().to_vec(), w.now())
    }

    let (log_1, end_1) = chatter_replay(1);
    assert!(
        !log_1.is_empty(),
        "the chatter scenario migrates under load; effects must flow"
    );
    for threads in [2usize, 4] {
        let (log_n, end_n) = chatter_replay(threads);
        assert_eq!(end_1, end_n, "replays must end at the same instant");
        assert_logs_identical("1-thread", &log_1, &format!("{threads}-thread"), &log_n);
    }
}

/// The same contract over the interest-managed routing path: an AOI world
/// (each server's inbound port mapped to its zone, subscriptions moving
/// with the two in-flight migrations through Subscribe/Unsubscribe
/// effects) must replay byte-identically at 1, 2 and 8 shards. This is
/// the zoned counterpart of `parallel_rounds_replay_byte_identical` —
/// multicast delivery sets, not just broadcast fan-out, must be stable
/// under resharding.
#[test]
fn aoi_rounds_replay_byte_identical() {
    fn aoi_replay(threads: usize) -> (Vec<String>, SimTime) {
        let mut w = World::new(WorldConfig {
            seed: SOAK_SEED ^ 0xa01,
            threads,
            aoi: true,
            ..WorldConfig::default()
        });
        w.enable_effect_log();

        let mut nodes = Vec::new();
        let mut pids = Vec::new();
        let mut addrs = Vec::new();
        let usercmds = Rc::new(RefCell::new(0u64));
        for n in 0..4 {
            let node = w.add_server_node();
            let pid = w.spawn_process(
                node,
                &format!("oa{n}"),
                128,
                1024,
                Box::new(OaServer::new(usercmds.clone())),
            );
            let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, OA_PORT + n as u16);
            w.app_udp_bind(node, pid, addr);
            w.register_zone_interest(node, pid, addr.port, dvelm::net::ZoneId(n as u32));
            nodes.push(node);
            pids.push(pid);
            addrs.push(addr);
        }
        for c in 0..48 {
            let ch = w.add_client_host();
            let addr = addrs[c % addrs.len()];
            let arrivals = Rc::new(RefCell::new(Vec::new()));
            let pid = w.spawn_process(ch, "cl", 16, 64, Box::new(OaClient::new(addr, arrivals)));
            w.app_udp_socket(ch, pid, Some(addr));
        }

        w.enable_load_balancing();
        w.run_for(SECOND);
        // Two concurrent migrations drag their zone subscriptions across
        // the interest table while zoned rounds stay active.
        w.begin_migration(pids[0], nodes[2], Strategy::IncrementalCollective)
            .expect("migration 0 admitted");
        w.begin_migration(pids[1], nodes[3], Strategy::IncrementalCollective)
            .expect("migration 1 admitted");
        w.run_for(3 * SECOND);
        (w.effect_log().to_vec(), w.now())
    }

    let (log_1, end_1) = aoi_replay(1);
    assert!(
        log_1.iter().any(|l| l.contains("Subscribe")),
        "the zoned scenario must route subscriptions through the effect stream"
    );
    for threads in [2usize, 8] {
        let (log_n, end_n) = aoi_replay(threads);
        assert_eq!(end_1, end_n, "replays must end at the same instant");
        assert_logs_identical("1-shard", &log_1, &format!("{threads}-shard"), &log_n);
    }
}
