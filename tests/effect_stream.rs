//! Determinism of the effect pipeline: for a fixed world seed, the rendered
//! migration effect stream is byte-identical across independent runs. The
//! effect log is the serialized view of every `Effect` the engine emits, so
//! equality here pins the whole cross-layer pipeline — ordering, timestamps
//! and payloads — not just the derived report.

use dvelm::dve::{SwarmClient, ZoneServer, ZONE_BASE_PORT};
use dvelm::prelude::*;
// The socket-migration strategy, not proptest's value-generation trait of
// the same name (both preludes are glob-imported).
use dvelm::prelude::Strategy;
use proptest::prelude::*;

/// Run the reference scenario (a zone server with a swarm of TCP clients,
/// migrated mid-run) and return the rendered effect stream.
fn effect_log_for(seed: u64, conns: usize) -> Vec<String> {
    let mut w = World::new(WorldConfig {
        seed,
        ..WorldConfig::default()
    });
    w.enable_effect_log();
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let ch = w.add_client_host();

    let zone = w.spawn_process(n0, "zone", 64, 1024, Box::new(ZoneServer::new()));
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT);
    w.app_tcp_listen(n0, zone, addr);
    let swarm = w.spawn_process(ch, "swarm", 64, 256, Box::new(SwarmClient::new()));
    for _ in 0..conns {
        w.app_tcp_connect(ch, swarm, addr, false);
    }

    w.run_for(SECOND);
    w.begin_migration(zone, n1, Strategy::IncrementalCollective)
        .expect("migration starts");
    w.run_for(2 * SECOND);
    w.effect_log().to_vec()
}

#[test]
fn effect_log_captures_a_full_migration() {
    let log = effect_log_for(0xd0e5, 4);
    assert!(!log.is_empty(), "effect log populated");
    assert!(
        log.iter().any(|l| l.contains("SuspendApp")),
        "freeze recorded"
    );
    assert_eq!(
        log.iter().filter(|l| l.ends_with("Complete")).count(),
        1,
        "exactly one completed migration"
    );
    // The stream ends with the migration's completion.
    assert!(log.last().unwrap().ends_with("Complete"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Two worlds built from the same seed replay the exact same effect
    /// stream, byte for byte.
    #[test]
    fn effect_stream_is_reproducible(seed in 0u64..1_000, conns in 1usize..6) {
        let a = effect_log_for(seed, conns);
        let b = effect_log_for(seed, conns);
        prop_assert!(!a.is_empty());
        prop_assert_eq!(a, b);
    }
}
