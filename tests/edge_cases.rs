//! Edge cases of the migration machinery through the public API.

use bytes::Bytes;
use dvelm::prelude::*;
use dvelm_cluster::{App, AppCtx};
use dvelm_stack::udp::Datagram;
use std::cell::RefCell;
use std::rc::Rc;

struct Quiet;
impl App for Quiet {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.touch_memory(4);
    }
}

struct Responder {
    got: Rc<RefCell<u64>>,
}
impl App for Responder {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.touch_memory(4);
    }
    fn on_udp_data(&mut self, ctx: &mut AppCtx<'_>, fd: Fd, dgrams: &[Datagram]) {
        for d in dgrams {
            *self.got.borrow_mut() += 1;
            ctx.send_udp_to(fd, d.from, Bytes::from_static(b"pong"));
        }
    }
}

struct Pinger {
    server: SockAddr,
    pongs: Rc<RefCell<u64>>,
}
impl App for Pinger {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        let fd = ctx.socket_fds()[0];
        ctx.send_udp_to(fd, self.server, Bytes::from_static(b"ping"));
    }
    fn on_udp_data(&mut self, _ctx: &mut AppCtx<'_>, _fd: Fd, d: &[Datagram]) {
        *self.pongs.borrow_mut() += d.len() as u64;
    }
}

#[test]
fn socketless_process_migrates() {
    // A pure-compute process (no sockets at all): the socket machinery must
    // degrade to plain live checkpoint/restart.
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let pid = w.spawn_process(n0, "batch", 64, 2048, Box::new(Quiet));
    w.run_for(SECOND);
    w.begin_migration(pid, n1, Strategy::IncrementalCollective)
        .expect("starts");
    w.run_for(2 * SECOND);
    assert_eq!(w.host_of(pid), Some(n1));
    let r = &w.reports[0];
    assert_eq!(r.sockets_migrated, 0);
    assert_eq!(r.freeze_socket_bytes, 0);
    assert!(
        r.freeze_us() < 20 * MILLISECOND,
        "socketless freeze is memory-only"
    );
}

#[test]
fn listener_only_process_migrates_and_accepts() {
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let ch = w.add_client_host();
    let pid = w.spawn_process(n0, "acceptor", 16, 64, Box::new(Quiet));
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 6000);
    w.app_tcp_listen(n0, pid, addr);
    w.run_for(SECOND);
    w.begin_migration(pid, n1, Strategy::Collective)
        .expect("starts");
    w.run_for(2 * SECOND);
    assert_eq!(w.host_of(pid), Some(n1));
    assert_eq!(w.reports[0].sockets_migrated, 1);

    // A client connecting afterwards is accepted on the new node.
    let cpid = w.spawn_process(ch, "probe", 4, 8, Box::new(Quiet));
    w.app_tcp_connect(ch, cpid, addr, false);
    w.run_for(SECOND);
    assert_eq!(
        w.hosts[n1].stack.socket_count(),
        2,
        "listener + accepted child"
    );
    assert!(!w.hosts[n0].stack.is_bound(addr.ip, addr.port));
}

#[test]
fn multithreaded_process_migrates_whole() {
    // §VII-D: MOSIX cannot live-migrate multithreaded applications; this
    // mechanism checkpoints every thread (registers, relations) through the
    // barrier protocol of Fig. 3.
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let pid = w.spawn_process(n0, "threaded", 32, 512, Box::new(Quiet));
    {
        let entry = w.hosts[n0].procs.get_mut(&pid).unwrap();
        for _ in 0..3 {
            entry.process.spawn_thread();
        }
        assert_eq!(entry.process.threads.len(), 4);
    }
    w.run_for(SECOND);
    w.begin_migration(pid, n1, Strategy::IncrementalCollective)
        .expect("starts");
    w.run_for(2 * SECOND);
    let p = &w.hosts[n1].procs[&pid].process;
    assert_eq!(p.threads.len(), 4, "all threads restored");
    assert!(!p.is_frozen(), "threads resumed on the destination");
}

#[test]
fn concurrent_migrations_of_different_processes() {
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let n2 = w.add_server_node();
    let ch = w.add_client_host();

    let got_a = Rc::new(RefCell::new(0u64));
    let got_b = Rc::new(RefCell::new(0u64));
    let a = w.spawn_process(
        n0,
        "svc_a",
        32,
        512,
        Box::new(Responder { got: got_a.clone() }),
    );
    let b = w.spawn_process(
        n1,
        "svc_b",
        32,
        512,
        Box::new(Responder { got: got_b.clone() }),
    );
    let addr_a = SockAddr::new(Ip::CLUSTER_PUBLIC, 7001);
    let addr_b = SockAddr::new(Ip::CLUSTER_PUBLIC, 7002);
    w.app_udp_bind(n0, a, addr_a);
    w.app_udp_bind(n1, b, addr_b);

    let pongs_a = Rc::new(RefCell::new(0u64));
    let pongs_b = Rc::new(RefCell::new(0u64));
    for (addr, pongs) in [(addr_a, pongs_a.clone()), (addr_b, pongs_b.clone())] {
        let pid = w.spawn_process(
            ch,
            "pinger",
            4,
            8,
            Box::new(Pinger {
                server: addr,
                pongs,
            }),
        );
        w.app_udp_socket(ch, pid, Some(addr));
    }

    w.run_for(SECOND);
    // Two migrations in flight simultaneously: A n0→n2, B n1→n0.
    let m1 = w.begin_migration(a, n2, Strategy::IncrementalCollective);
    let m2 = w.begin_migration(b, n0, Strategy::Collective);
    assert!(m1.is_some() && m2.is_some());
    assert_eq!(w.active_migrations(), 2);
    w.run_for(3 * SECOND);
    assert_eq!(w.active_migrations(), 0);
    assert_eq!(w.host_of(a), Some(n2));
    assert_eq!(w.host_of(b), Some(n0));
    assert_eq!(w.reports.len(), 2);

    let (pa, pb) = (*pongs_a.borrow(), *pongs_b.borrow());
    w.run_for(2 * SECOND);
    assert!(
        *pongs_a.borrow() > pa + 20,
        "service A alive after crossing migrations"
    );
    assert!(
        *pongs_b.borrow() > pb + 20,
        "service B alive after crossing migrations"
    );
}

#[test]
fn begin_migration_guards() {
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let pid = w.spawn_process(n0, "p", 8, 32, Box::new(Quiet));
    assert!(
        w.begin_migration(pid, n0, Strategy::Collective).is_none(),
        "same host rejected"
    );
    assert!(
        w.begin_migration(Pid(999), n1, Strategy::Collective)
            .is_none(),
        "unknown pid"
    );
    assert!(w.begin_migration(pid, n1, Strategy::Collective).is_some());
    assert!(
        w.begin_migration(pid, n1, Strategy::Collective).is_none(),
        "already migrating"
    );
    w.run_for(2 * SECOND);
    // After completion it can migrate again (back).
    assert!(w.begin_migration(pid, n0, Strategy::Collective).is_some());
    w.run_for(2 * SECOND);
    assert_eq!(w.host_of(pid), Some(n0));
    assert_eq!(w.reports.len(), 2);
}

#[test]
fn udp_bound_port_follows_the_process_through_three_hops() {
    let mut w = World::new(WorldConfig::default());
    let nodes: Vec<usize> = (0..4).map(|_| w.add_server_node()).collect();
    let ch = w.add_client_host();

    let got = Rc::new(RefCell::new(0u64));
    let pid = w.spawn_process(
        nodes[0],
        "svc",
        32,
        256,
        Box::new(Responder { got: got.clone() }),
    );
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 7999);
    w.app_udp_bind(nodes[0], pid, addr);
    let pongs = Rc::new(RefCell::new(0u64));
    let cpid = w.spawn_process(
        ch,
        "pinger",
        4,
        8,
        Box::new(Pinger {
            server: addr,
            pongs: pongs.clone(),
        }),
    );
    w.app_udp_socket(ch, cpid, Some(addr));

    for hop in 1..4 {
        w.run_for(SECOND);
        w.begin_migration(pid, nodes[hop], Strategy::IncrementalCollective)
            .expect("hop");
        w.run_for(2 * SECOND);
        assert_eq!(w.host_of(pid), Some(nodes[hop]), "hop {hop}");
        // Exactly one node owns the port.
        let owners = nodes
            .iter()
            .filter(|n| w.hosts[**n].stack.is_bound(addr.ip, addr.port))
            .count();
        assert_eq!(owners, 1, "port ownership after hop {hop}");
    }
    let before = *pongs.borrow();
    w.run_for(2 * SECOND);
    assert!(
        *pongs.borrow() > before + 20,
        "service alive after three hops"
    );
    assert_eq!(w.reports.len(), 3);
}
