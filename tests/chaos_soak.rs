//! Chaos soak: a seeded, deterministic long run mixing every fault the
//! cluster knows — crashes, loss bursts, kernel refusals, stalls, control
//! blackouts and traffic surges — on top of live load balancing, with all
//! overload protections armed (ISSUE 3).
//!
//! The soak's value is its per-tick invariants, checked a few thousand
//! times across the run:
//!
//! * **no process is lost unless its host died** — every spawned pid is on
//!   exactly one alive host, in transit, or accounted for by a crash (or
//!   survives only as a captured image in `World::lost_images`);
//! * **budgets hold** — active migrations never exceed the admission cap,
//!   the admission ledger agrees with the task table, and no capture queue
//!   ever exceeded its per-entry budget;
//! * **the world keeps running** — the clock advances and apps keep
//!   ticking through every injected disaster.

use dvelm::lb::AdmissionConfig;
use dvelm::migrate::OverloadGuard;
use dvelm::prelude::*;
use dvelm::stack::CaptureBudget;
use std::collections::HashSet;

const SOAK_SEED: u64 = 0x50a1;
const MIG_CAP: usize = 2;
const CAPTURE_PACKETS: usize = 64;
const CAPTURE_BYTES: usize = 256 * 1024;

struct Worker {
    share: f64,
    dirty: usize,
}

impl App for Worker {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.set_cpu_share(self.share);
        ctx.touch_memory(self.dirty);
    }
    fn tick_period_us(&self) -> u64 {
        100 * MILLISECOND
    }
}

#[test]
fn chaos_soak_holds_invariants() {
    chaos_soak(Strategy::IncrementalCollective, SOAK_SEED);
}

/// The same disaster schedule with every conductor-initiated migration
/// running post-copy: switch-over windows, residual ledgers and demand
/// fetches are now in flight when the crashes, stalls and surges land.
#[test]
fn chaos_soak_postcopy_strategy() {
    chaos_soak(Strategy::PostCopy, SOAK_SEED ^ 0xbc01);
}

/// And with the hybrid strategy: bounded precopy prefix, then switch-over.
#[test]
fn chaos_soak_hybrid_strategy() {
    chaos_soak(Strategy::Hybrid { precopy_rounds: 2 }, SOAK_SEED ^ 0xbc02);
}

fn chaos_soak(strategy: Strategy, seed: u64) {
    let mut w = World::new(WorldConfig {
        seed,
        strategy,
        admission: AdmissionConfig {
            max_cluster_migrations: MIG_CAP,
            max_node_migrations: 1,
            max_inflight_image_bytes: 256 * 1024 * 1024,
        },
        overload_guard: OverloadGuard {
            deadline_us: Some(10 * SECOND),
            max_stagnant_rounds: Some(8),
            // Soak the escalation path too: non-converging precopies become
            // hybrid switch-overs instead of aborting.
            escalate_nonconverging: true,
        },
        capture_budget: CaptureBudget::bounded(CAPTURE_PACKETS, CAPTURE_BYTES),
        xlate_gc_ttl_us: Some(10 * SECOND),
        ..WorldConfig::default()
    });
    w.enable_monitor();

    // Five server nodes: three overloaded, two light. The doomed node (n4)
    // hosts sacrificial processes and dies mid-run.
    let mut nodes = Vec::new();
    let mut pids = Vec::new();
    for n in 0..5 {
        let node = w.add_server_node();
        let (count, share) = match n {
            0..=2 => (5, 16.0),
            _ => (1, 6.0),
        };
        for i in 0..count {
            pids.push(w.spawn_process(
                node,
                &format!("w{n}-{i}"),
                16,
                512,
                Box::new(Worker {
                    share,
                    dirty: 20 + 7 * i,
                }),
            ));
        }
        nodes.push(node);
    }
    let doomed = nodes[4];

    w.run_for(500 * MILLISECOND);
    w.enable_load_balancing();

    // The disaster schedule, relative to t=0 (the world is ~0.5 s old when
    // balancing starts). Every fault family appears at least once.
    let crash_at = SimTime::from_secs(34);
    let plan = FaultPlan::new()
        .at(
            SimTime::from_secs(3),
            Fault::Overload {
                host: nodes[0],
                factor: 6,
                for_us: 4 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(5),
            Fault::DownlinkLoss {
                host: nodes[1],
                model: dvelm::net::LossModel::Burst { p: 0.02, burst: 6 },
                for_us: 3 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(8),
            Fault::CaptureInstallFail { host: nodes[3] },
        )
        .at(
            SimTime::from_secs(12),
            Fault::CtrlBlackout {
                host: nodes[3],
                dir: CtrlDir::Both,
                for_us: 4 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(16),
            Fault::RestoreFail { host: nodes[4] },
        )
        .at(
            SimTime::from_secs(20),
            Fault::Overload {
                host: nodes[2],
                factor: 10,
                for_us: 5 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(26),
            Fault::Overload {
                host: nodes[3],
                factor: 4,
                for_us: 0,
            },
        )
        // Residual-stream stalls for whatever happens to be mid-resolve
        // (a documented no-op in the precopy-only runs).
        .at(
            SimTime::from_secs(28),
            Fault::FetchStall {
                pid: pids[0],
                for_us: 2 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(30),
            Fault::FetchStall {
                pid: pids[7],
                for_us: SECOND,
            },
        )
        .at(crash_at, Fault::NodeCrash { host: doomed })
        .at(
            SimTime::from_secs(40),
            Fault::Overload {
                host: nodes[3],
                factor: 1,
                for_us: 0,
            },
        );
    w.install_fault_plan(plan);

    // 60 s of simulated time in 10 ms steps, invariants checked each step.
    let mut dead_ok: HashSet<Pid> = HashSet::new();
    let mut crash_handled = false;
    let mut deadline = w.now();
    let mut last_now = w.now();
    for step in 0..6_000 {
        deadline += 10 * MILLISECOND;
        w.run_until(deadline);

        // The clock must keep moving (no wedged event loop).
        let now = w.now();
        assert!(now >= last_now, "time went backwards at step {step}");
        last_now = now;

        // Track who lives on the doomed node; at the crash instant that
        // snapshot freezes into the set of excusable casualties.
        if w.hosts[doomed].alive {
            dead_ok = w.hosts[doomed].procs.keys().copied().collect();
        } else if !crash_handled {
            assert!(now >= crash_at, "the crash cannot fire early");
            crash_handled = true;
        }

        // Invariant 1: every process is on an alive host, in transit, or
        // accounted for by the crash.
        for pid in &pids {
            let placed = w.host_of(*pid).is_some()
                || w.migration_of(*pid).is_some()
                || (crash_handled && dead_ok.contains(pid))
                || w.lost_images.iter().any(|p| p.pid == *pid);
            assert!(placed, "process {pid:?} vanished at step {step} ({now:?})");
        }

        // Invariant 2: budgets hold.
        let usage = w.resource_usage();
        assert!(
            usage.active_migrations <= MIG_CAP,
            "admission cap violated at step {step}: {usage:?}"
        );
        assert_eq!(
            usage.active_migrations,
            w.admission().active_count(),
            "ledger out of sync at step {step}"
        );
        for h in &w.hosts {
            if !h.alive {
                continue;
            }
            let stats = h.stack.capture.stats();
            assert!(
                stats.peak_queued_packets <= CAPTURE_PACKETS as u64,
                "capture packet budget exceeded at step {step}: {stats:?}"
            );
            assert!(
                stats.peak_queued_bytes <= CAPTURE_BYTES as u64,
                "capture byte budget exceeded at step {step}: {stats:?}"
            );
        }

        // Invariant 3: the always-on monitor's view agrees — exactly one
        // owner per pid, nothing lost on an alive host, budgets respected.
        w.monitor_sweep();
        assert!(
            w.violations().is_empty(),
            "invariant monitor flagged the soak at step {step}: {:?}",
            w.violations()
        );
    }

    // The run saw real action: the crash fired, processes survived on the
    // remaining nodes, and the cluster still balanced load throughout.
    assert!(crash_handled, "the scripted crash was reached");
    let placed = pids.iter().filter(|p| w.host_of(**p).is_some()).count();
    let in_transit = pids
        .iter()
        .filter(|p| w.host_of(**p).is_none() && w.migration_of(**p).is_some())
        .count();
    let excused = pids
        .iter()
        .filter(|p| w.host_of(**p).is_none() && w.migration_of(**p).is_none())
        .count();
    assert_eq!(
        placed + in_transit + excused,
        pids.len(),
        "process accounting must close"
    );
    assert!(
        excused <= dead_ok.len(),
        "only the doomed node's residents may be gone: {excused} missing, \
         {} excusable",
        dead_ok.len()
    );
    assert!(
        !w.reports.is_empty(),
        "the conductors migrated something during the soak"
    );
    // Per-world determinism: the same seed must reproduce the same world.
    assert_eq!(w.now(), last_now);
}

/// The partition-family soak (ISSUE 7): network partitions plus unreliable
/// control delivery — loss, duplication, reordering — on top of live load
/// balancing, with the epoch fence armed and the invariant monitor checked
/// every 10 ms. No process may be lost or duplicated no matter how the
/// control plane misbehaves, because no host dies in this run.
#[test]
fn partition_soak_holds_invariants() {
    let mut w = World::new(WorldConfig {
        seed: SOAK_SEED ^ 0x9a27,
        admission: AdmissionConfig {
            max_cluster_migrations: MIG_CAP,
            max_node_migrations: 1,
            max_inflight_image_bytes: 256 * 1024 * 1024,
        },
        capture_budget: CaptureBudget::bounded(CAPTURE_PACKETS, CAPTURE_BYTES),
        ..WorldConfig::default()
    });
    w.enable_monitor();

    let mut nodes = Vec::new();
    let mut pids = Vec::new();
    for n in 0..5 {
        let node = w.add_server_node();
        let (count, share) = match n {
            0..=2 => (5, 16.0),
            _ => (1, 6.0),
        };
        for i in 0..count {
            pids.push(w.spawn_process(
                node,
                &format!("w{n}-{i}"),
                16,
                512,
                Box::new(Worker {
                    share,
                    dirty: 20 + 7 * i,
                }),
            ));
        }
        nodes.push(node);
    }

    w.run_for(500 * MILLISECOND);
    w.enable_load_balancing();

    // Control-plane chaos from the start, partitions opening and healing
    // while migrations are in flight. The second partition overlaps the
    // first's heal, and a lossy+duplicating+reordering window spans both.
    let plan = FaultPlan::new()
        .at(
            SimTime::from_secs(2),
            Fault::CtrlLoss {
                pct: 15,
                for_us: 20 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(2),
            Fault::CtrlDup {
                pct: 20,
                for_us: 25 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(2),
            Fault::CtrlReorder {
                pct: 20,
                max_extra_us: 150_000,
                for_us: 25 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(5),
            Fault::Partition {
                groups: [
                    HostSet::of(&[nodes[0], nodes[1]]),
                    HostSet::of(&[nodes[2], nodes[3], nodes[4]]),
                ],
                for_us: 8 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(11),
            Fault::Partition {
                groups: [HostSet::of(&[nodes[0], nodes[2]]), HostSet::of(&[nodes[4]])],
                for_us: 6 * SECOND,
            },
        )
        .at(
            SimTime::from_secs(22),
            Fault::Partition {
                groups: [
                    HostSet::of(&[nodes[0]]),
                    HostSet::of(&[nodes[1], nodes[2], nodes[3], nodes[4]]),
                ],
                for_us: 5 * SECOND,
            },
        );
    w.install_fault_plan(plan);

    // 40 s in 10 ms steps, monitor reconciled each step. Every pid must
    // stay placed (or in transit) the whole way — there is no crash to
    // excuse a loss here.
    let mut deadline = w.now();
    for step in 0..4_000 {
        deadline += 10 * MILLISECOND;
        w.run_until(deadline);

        for pid in &pids {
            let placed = w.host_of(*pid).is_some() || w.migration_of(*pid).is_some();
            assert!(placed, "process {pid:?} vanished at step {step}");
        }
        let usage = w.resource_usage();
        assert!(
            usage.active_migrations <= MIG_CAP,
            "admission cap violated at step {step}: {usage:?}"
        );

        w.monitor_sweep();
        assert!(
            w.violations().is_empty(),
            "invariant monitor flagged the partition soak at step {step}: {:?}",
            w.violations()
        );
    }

    assert!(
        !w.reports.is_empty(),
        "the conductors migrated something during the partition soak"
    );
    // Time healed every partition; the cluster is whole again and still
    // balancing (heartbeats resumed flowing across the former cut).
    assert!(w.now() >= SimTime::from_secs(40));
}
