//! The overload matrix: resource budgets must hold under pressure (ISSUE 3).
//!
//! World-level acceptance tests for the overload-protection subsystem:
//!
//! * a traffic surge during precopy drives the dirty rate past the drain
//!   rate; the convergence guard aborts with `NonConverging` and the
//!   rollback leaves the source copy running with zero downtime;
//! * the wall-clock deadline guard aborts a migration that cannot finish
//!   inside its budget (`Overloaded`), again without freezing the app;
//! * a bounded capture queue sheds TCP only in the recoverable way — a
//!   refused segment is indistinguishable from wire loss, so dedup plus the
//!   sender's retransmission recover every byte and the stream never gaps;
//! * the `HardFail` shed policy instead turns queue pressure into a typed
//!   abort, routed from the stack hook up through the effect pipeline;
//! * admission control keeps concurrent migrations and in-flight image
//!   bytes under their cluster-wide caps during a thundering herd, while
//!   denied conductors retry until the herd drains;
//! * idle translation rules are garbage-collected once a TTL is configured.

use dvelm::dve::{SwarmClient, ZoneServer, ZONE_BASE_PORT};
use dvelm::lb::AdmissionConfig;
use dvelm::migrate::{AbortReason, OverloadGuard, PhaseId};
use dvelm::prelude::*;
use dvelm::stack::{CaptureBudget, TcpShedPolicy, XlateRule};
use std::cell::RefCell;
use std::rc::Rc;

/// Live app-side counters handed out by [`zone_world_with`].
struct ZoneCounters {
    updates_sent: Rc<RefCell<u64>>,
    cmds_received: Rc<RefCell<u64>>,
    updates_received: Rc<RefCell<u64>>,
}

/// The reference scenario from the fault matrix — a zone server on `n0`
/// with a 4-connection TCP swarm behind the WAN router, warmed up for a
/// second — but with a caller-controlled [`WorldConfig`] so each test can
/// arm exactly one protection mechanism.
fn zone_world_with(cfg: WorldConfig) -> (World, usize, usize, usize, Pid, ZoneCounters) {
    let mut w = World::new(cfg);
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let ch = w.add_client_host();

    let server = ZoneServer::new();
    let updates_sent = server.updates_sent.clone();
    let cmds_received = server.cmds_received.clone();
    let zone = w.spawn_process(n0, "zone", 64, 1024, Box::new(server));
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT);
    w.app_tcp_listen(n0, zone, addr);

    let client = SwarmClient::new();
    let updates_received = client.updates_received.clone();
    let swarm = w.spawn_process(ch, "swarm", 64, 256, Box::new(client));
    for _ in 0..4 {
        w.app_tcp_connect(ch, swarm, addr, false);
    }

    w.run_for(SECOND);
    let counters = ZoneCounters {
        updates_sent,
        cmds_received,
        updates_received,
    };
    (w, n0, n1, ch, zone, counters)
}

/// Assert that `counter` keeps advancing over the next two seconds.
fn assert_stream_alive(w: &mut World, counter: &Rc<RefCell<u64>>, what: &str) {
    let before = *counter.borrow();
    w.run_for(2 * SECOND);
    let after = *counter.borrow();
    assert!(
        after > before + 20,
        "{what}: counter stuck at {before} -> {after}"
    );
}

// ---------------------------------------------------------------------
// surge during precopy → NonConverging abort with clean rollback
// ---------------------------------------------------------------------

#[test]
fn fault_surge_during_precopy_aborts_nonconverging() {
    // The zone dirties 100 pages per 10 ms frame (~40 MB/s). A 32× surge
    // re-dirties the entire 4.5 MiB image inside even the shortest precopy
    // round, so every round ships the same full diff — the dirty rate has
    // outrun the 125 MB/s drain rate and the diffs stop shrinking.
    let (mut w, n0, n1, _ch, zone, c) = zone_world_with(WorldConfig {
        seed: 0x0b01,
        overload_guard: OverloadGuard {
            deadline_us: None,
            max_stagnant_rounds: Some(2),
            escalate_nonconverging: false,
        },
        ..WorldConfig::default()
    });
    w.inject_fault(Fault::Overload {
        host: n0,
        factor: 32,
        for_us: 0,
    });
    assert_eq!(w.resource_usage().surged_hosts, 1);

    let mig = w.begin_migration(zone, n1, Strategy::Collective).unwrap();
    w.run_for(4 * SECOND);

    match w.migration_outcome(mig) {
        Some(MigrationOutcome::Aborted {
            reason, recovery, ..
        }) => {
            assert_eq!(reason, AbortReason::NonConverging);
            assert_eq!(
                recovery,
                Recovery::SourceKeptRunning,
                "the convergence guard fires before the freeze: nothing to roll back"
            );
        }
        other => panic!("expected a NonConverging abort, got {other:?}"),
    }
    assert_eq!(w.active_migrations(), 0);
    assert_eq!(w.host_of(zone), Some(n0));

    // Clean rollback: zero downtime, and the admission slot was released.
    let report = w.reports.last().expect("abort produces a report");
    assert!(report.is_aborted());
    assert_eq!(report.freeze_us(), 0, "precopy abort must not freeze");
    assert_eq!(w.admission().active_count(), 0);

    assert_stream_alive(&mut w, &c.updates_sent, "zone under surge after abort");
}

#[test]
fn fault_migration_deadline_aborts_overloaded() {
    // 4 MiB at 125 MB/s needs ~33 ms of precopy alone; a 10 ms wall-clock
    // budget cannot be met, so the second round refuses to start.
    let (mut w, n0, n1, _ch, zone, c) = zone_world_with(WorldConfig {
        seed: 0x0b02,
        overload_guard: OverloadGuard {
            deadline_us: Some(10_000),
            max_stagnant_rounds: None,
            escalate_nonconverging: false,
        },
        ..WorldConfig::default()
    });

    let mig = w
        .begin_migration(zone, n1, Strategy::IncrementalCollective)
        .unwrap();
    w.run_for(2 * SECOND);

    match w.migration_outcome(mig) {
        Some(MigrationOutcome::Aborted {
            reason, recovery, ..
        }) => {
            assert_eq!(reason, AbortReason::Overloaded);
            assert_eq!(recovery, Recovery::SourceKeptRunning);
        }
        other => panic!("expected an Overloaded abort, got {other:?}"),
    }
    assert_eq!(w.host_of(zone), Some(n0));
    assert_eq!(w.reports.last().unwrap().freeze_us(), 0);
    assert_stream_alive(&mut w, &c.updates_sent, "zone after deadline abort");
}

// ---------------------------------------------------------------------
// escalation: a non-converging precopy degrades into hybrid switch-over
// ---------------------------------------------------------------------

#[test]
fn surge_escalates_nonconverging_precopy_into_hybrid_switchover() {
    // Baseline: the identical surge scenario with the guard disabled. The
    // precopy loop still terminates (the loop timeout shrinks to the final
    // checkpoint threshold) but the freeze ships the whole re-dirtied
    // set — the unbounded-payload cost the convergence guard exists to
    // avoid paying.
    let freeze_baseline = {
        let (mut w, n0, n1, _ch, zone, _c) = zone_world_with(WorldConfig {
            seed: 0x0b01,
            ..WorldConfig::default()
        });
        w.inject_fault(Fault::Overload {
            host: n0,
            factor: 32,
            for_us: 0,
        });
        let mig = w.begin_migration(zone, n1, Strategy::Collective).unwrap();
        w.run_for(4 * SECOND);
        assert!(
            w.migration_outcome(mig).is_some_and(|o| o.is_completed()),
            "unguarded run must push through: {:?}",
            w.migration_outcome(mig)
        );
        w.reports.last().unwrap().freeze_us()
    };
    assert!(freeze_baseline > 0, "the baseline pays a real freeze");

    // Escalated: same seed, same surge, but the guard degrades the
    // non-converging precopy into a hybrid switch-over instead of
    // aborting (`fault_surge_during_precopy_aborts_nonconverging` is the
    // escalation-off sibling). The migration that used to be abandoned now
    // completes, and its freeze undercuts the push-through baseline
    // because only metadata + sockets cross the freeze window.
    let (mut w, n0, n1, _ch, zone, c) = zone_world_with(WorldConfig {
        seed: 0x0b01,
        overload_guard: OverloadGuard {
            deadline_us: None,
            max_stagnant_rounds: Some(2),
            escalate_nonconverging: true,
        },
        ..WorldConfig::default()
    });
    w.inject_fault(Fault::Overload {
        host: n0,
        factor: 32,
        for_us: 0,
    });
    let mig = w.begin_migration(zone, n1, Strategy::Collective).unwrap();
    w.run_for(4 * SECOND);

    assert!(
        w.migration_outcome(mig).is_some_and(|o| o.is_completed()),
        "escalation must turn the NonConverging abort into a completion: {:?}",
        w.migration_outcome(mig)
    );
    assert_eq!(w.host_of(zone), Some(n1), "the zone actually moved");
    let report = w.reports.last().expect("completion produces a report");
    assert!(
        report
            .phase_log
            .iter()
            .any(|(p, _)| *p == PhaseId::DemandResolve.label()),
        "the completion went through demand-resolve: {:?}",
        report.phase_log
    );
    assert!(
        report.demand_fetch_pages + report.writeback_pages > 0,
        "the residual ledger was actually drained"
    );
    assert!(
        report.freeze_us() < freeze_baseline,
        "switch-over freeze {} must undercut the push-through freeze {}",
        report.freeze_us(),
        freeze_baseline
    );

    // The swarm keeps receiving updates from the new host under the
    // still-active surge.
    assert_stream_alive(
        &mut w,
        &c.updates_received,
        "swarm after hybrid switch-over",
    );
}

// ---------------------------------------------------------------------
// deadline audit: a stalled post-detach transfer still hits the budget
// ---------------------------------------------------------------------

#[test]
fn fault_stalled_postdetach_transfer_exceeds_deadline() {
    // Regression (ISSUE 8 satellite): the wall-clock budget used to be
    // checked only between precopy rounds, so a migration parked *after*
    // detach (here by a partition) could overshoot the deadline by an
    // unbounded amount and still commit. The audit enforces the budget at
    // the restore boundary too: when the partition heals, the restore step
    // finds the deadline blown and compensates with restore-on-source.
    let (mut w, n0, n1, _ch, zone, c) = zone_world_with(WorldConfig {
        seed: 0x0b0b,
        overload_guard: OverloadGuard {
            // Roomy enough for the unstalled migration (~630 ms end to
            // end), far too tight for a 2 s mid-transfer park.
            deadline_us: Some(700 * MILLISECOND),
            max_stagnant_rounds: None,
            escalate_nonconverging: false,
        },
        ..WorldConfig::default()
    });
    // Collective's freeze transfer (final delta + full socket records,
    // ~6 ms) is the post-detach interval the partition will park.
    let mig = w.begin_migration(zone, n1, Strategy::Collective).unwrap();
    // Step an absolute deadline until the sockets have left the source.
    let mut t = w.now();
    while w.migration_past_detach(mig) == Some(false) {
        t += 200;
        w.run_until(t);
    }
    assert_eq!(
        w.migration_past_detach(mig),
        Some(true),
        "migration finished before the stall window opened: {:?}",
        w.migration_outcome(mig)
    );

    // Park the in-flight transfer well past the whole budget.
    w.inject_fault(Fault::Partition {
        groups: [HostSet::of(&[n0]), HostSet::of(&[n1])],
        for_us: 2 * SECOND,
    });
    w.run_for(3 * SECOND);

    match w.migration_outcome(mig) {
        Some(MigrationOutcome::Aborted {
            phase,
            reason,
            recovery,
        }) => {
            assert_eq!(phase, PhaseId::FreezeDetach, "the abort is post-detach");
            assert_eq!(reason, AbortReason::Overloaded, "the deadline guard fired");
            assert_eq!(
                recovery,
                Recovery::RestoredOnSource,
                "past detach the compensation is restore-on-source"
            );
        }
        other => panic!("expected the blown deadline to abort, got {other:?}"),
    }
    assert_eq!(w.host_of(zone), Some(n0));
    assert_stream_alive(&mut w, &c.updates_sent, "zone after deadline restore");
}

// ---------------------------------------------------------------------
// bounded capture queue: shed is always recoverable
// ---------------------------------------------------------------------

#[test]
fn fault_capture_shed_never_loses_a_tcp_byte() {
    // Two packets per capture entry is far below what four surged clients
    // produce across the freeze window, so the hook must refuse segments.
    // Under CoalesceBySeq a refusal is wire loss: retransmission re-offers
    // the segment and the stream stays gap-free.
    let (mut w, _n0, n1, ch, zone, c) = zone_world_with(WorldConfig {
        seed: 0x0b03,
        capture_budget: CaptureBudget::bounded(2, 64 * 1024),
        ..WorldConfig::default()
    });
    // Flash crowd: the swarm ticks 32× faster (one 64-byte command per
    // connection every ~1.6 ms) for the whole migration.
    w.inject_fault(Fault::Overload {
        host: ch,
        factor: 32,
        for_us: 0,
    });

    let cmds_before = *c.cmds_received.borrow();
    let mig = w
        .begin_migration(zone, n1, Strategy::IncrementalCollective)
        .unwrap();
    w.run_for(4 * SECOND);

    assert!(
        w.migration_outcome(mig).is_some_and(|o| o.is_completed()),
        "recoverable shedding must not kill the migration: {:?}",
        w.migration_outcome(mig)
    );
    assert_eq!(w.host_of(zone), Some(n1));

    // The budget actually bit, and it was never exceeded.
    let stats = w.hosts[n1].stack.capture.stats();
    assert!(
        stats.shed_tcp_refused > 0,
        "the surge must overflow a 2-packet queue: {stats:?}"
    );
    assert_eq!(stats.hard_failures, 0, "{stats:?}");
    assert!(stats.peak_queued_packets <= 2, "budget exceeded: {stats:?}");

    // No TCP byte was lost: commands sent during the freeze (including
    // every refused segment) reach the app on the new host, and the
    // downstream update flow never gaps either.
    assert_stream_alive(&mut w, &c.cmds_received, "upstream commands after shed");
    assert!(*c.cmds_received.borrow() > cmds_before);
    assert_stream_alive(&mut w, &c.updates_received, "downstream updates after shed");
}

#[test]
fn fault_capture_hardfail_escalates_to_typed_abort() {
    // Same pressure, but the operator forbade shedding: the first refused
    // segment must surface as a HardFail pressure event, which the world
    // routes into an `Overloaded` abort — the source copy takes over and
    // ACKs the retransmissions.
    let (mut w, n0, n1, ch, zone, c) = zone_world_with(WorldConfig {
        seed: 0x0b04,
        capture_budget: CaptureBudget {
            max_packets: 2,
            max_bytes: 64 * 1024,
            tcp_policy: TcpShedPolicy::HardFail,
        },
        ..WorldConfig::default()
    });
    w.inject_fault(Fault::Overload {
        host: ch,
        factor: 32,
        for_us: 0,
    });

    let mig = w
        .begin_migration(zone, n1, Strategy::IncrementalCollective)
        .unwrap();
    w.run_for(4 * SECOND);

    match w.migration_outcome(mig) {
        Some(MigrationOutcome::Aborted { reason, .. }) => {
            assert_eq!(reason, AbortReason::Overloaded);
        }
        other => panic!("expected queue pressure to abort the migration, got {other:?}"),
    }
    assert_eq!(w.active_migrations(), 0);
    assert_eq!(
        w.host_of(zone),
        Some(n0),
        "rollback must leave the zone on its source"
    );
    assert!(w.hosts[n1].stack.capture.stats().hard_failures > 0);

    assert_stream_alive(&mut w, &c.updates_sent, "zone after hard-fail abort");
}

// ---------------------------------------------------------------------
// admission control under a thundering herd
// ---------------------------------------------------------------------

struct Hog {
    share: f64,
}

impl App for Hog {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.set_cpu_share(self.share);
        ctx.touch_memory(1);
    }
    fn tick_period_us(&self) -> u64 {
        200 * MILLISECOND
    }
}

#[test]
fn admission_caps_thundering_herd() {
    const CAP: usize = 2;
    let mut w = World::new(WorldConfig {
        seed: 0x0b05,
        admission: AdmissionConfig {
            max_cluster_migrations: CAP,
            max_node_migrations: 1,
            max_inflight_image_bytes: u64::MAX,
        },
        ..WorldConfig::default()
    });

    // Six overloaded nodes all wake up wanting to migrate at once, toward
    // four light receivers. The hogs carry ~34 MiB images (~300 ms on the
    // wire) so transfers overlap and the cluster semaphore actually
    // arbitrates.
    let mut heavy = Vec::new();
    let mut first_hog = Vec::new();
    for n in 0..6 {
        let node = w.add_server_node();
        for i in 0..6 {
            let pid = w.spawn_process(
                node,
                &format!("hog{n}-{i}"),
                64,
                8192,
                Box::new(Hog { share: 15.0 }),
            );
            if i == 0 {
                first_hog.push(pid);
            }
        }
        heavy.push(node);
    }
    let mut light = Vec::new();
    for n in 0..4 {
        let node = w.add_server_node();
        w.spawn_process(
            node,
            &format!("small{n}"),
            8,
            32,
            Box::new(Hog { share: 8.0 }),
        );
        light.push(node);
    }

    w.run_for(300 * MILLISECOND);

    // Phase 1 — the herd proper: every overloaded node tries to push a hog
    // out in the same instant. The cluster semaphore admits exactly CAP of
    // the six and turns the rest away at the gate.
    let mut admitted = Vec::new();
    let mut turned_away = 0;
    for (i, pid) in first_hog.iter().enumerate() {
        match w.begin_migration(
            *pid,
            light[i % light.len()],
            Strategy::IncrementalCollective,
        ) {
            Some(mig) => admitted.push(mig),
            None => turned_away += 1,
        }
    }
    assert_eq!(admitted.len(), CAP, "exactly CAP admitted");
    assert_eq!(turned_away, first_hog.len() - CAP);
    assert_eq!(w.admission().stats().denied_cluster as usize, turned_away);
    assert_eq!(w.admission().active_count(), CAP);

    w.run_for(4 * SECOND);
    for mig in &admitted {
        assert!(
            w.migration_outcome(*mig).is_some_and(|o| o.is_completed()),
            "admitted migrations complete: {:?}",
            w.migration_outcome(*mig)
        );
    }
    assert_eq!(
        w.admission().active_count(),
        0,
        "slots released on completion"
    );

    // Phase 2 — organic load balancing on top: the conductors keep pushing
    // load off the heavy nodes while the budget invariant is sampled.
    w.enable_load_balancing();

    // The invariant the budgets exist for: sampled every 5 ms across the
    // whole herd, concurrency never exceeds the cap. Step an *absolute*
    // deadline (a relative `run_for` spins in place when the next event
    // lies beyond the slice).
    let mut deadline = w.now();
    for _ in 0..8_000 {
        deadline += 5 * MILLISECOND;
        w.run_until(deadline);
        let usage = w.resource_usage();
        assert!(
            usage.active_migrations <= CAP,
            "admission cap violated: {usage:?}"
        );
        assert_eq!(usage.active_migrations, w.admission().active_count());
    }

    let stats = w.admission().stats();
    assert!(stats.peak_active <= CAP, "{stats:?}");
    assert!(
        stats.admitted >= 2,
        "the herd must make progress through the gate: {stats:?}"
    );
    assert!(
        w.reports.iter().any(|r| !r.is_aborted()),
        "at least one migration completed"
    );
    // Everything admitted was eventually released.
    assert_eq!(w.admission().active_count(), w.active_migrations());
    let landed: usize = light.iter().map(|n| w.hosts[*n].procs.len()).sum();
    assert!(
        landed > 4,
        "hogs must have landed on the light nodes: {landed}"
    );
}

// ---------------------------------------------------------------------
// translation-rule TTL garbage collection
// ---------------------------------------------------------------------

#[test]
fn xlate_gc_spares_actively_used_outbound_rule() {
    // An outbound-only flow (this host sends to a migrated peer but the
    // peer never talks back) must keep its translation rule alive: every
    // LOCAL_OUT match refreshes the rule's TTL via the threaded clock.
    // Regression: a clockless outgoing() left last_hit at ZERO, so the GC
    // evicted the rule mid-use and packets silently went to the old IP.
    let ttl = 500 * MILLISECOND;
    let mut w = World::new(WorldConfig {
        seed: 0x0b08,
        xlate_gc_ttl_us: Some(ttl),
        ..WorldConfig::default()
    });
    let n0 = w.add_server_node();
    let _n1 = w.add_server_node();

    let local = SockAddr::new(Ip::local_of(NodeId(0)), 4000);
    let sid = w.hosts[n0].stack.udp_bind(local).unwrap();
    let old_remote = SockAddr::new(Ip::local_of(NodeId(1)), 9000);
    let rule = XlateRule::new(
        local,
        old_remote.ip,
        Ip::local_of(NodeId(2)),
        old_remote.port,
    );
    let now = w.now();
    w.hosts[n0].stack.xlate.install_at(rule, now);

    // Send through the rule every 200 ms — well inside the 500 ms TTL —
    // while the GC sweeps every 500 ms.
    for _ in 0..15 {
        let now = w.now();
        let _ =
            w.hosts[n0]
                .stack
                .udp_send_to(sid, old_remote, bytes::Bytes::from_static(b"pos"), now);
        w.run_for(200 * MILLISECOND);
    }
    assert_eq!(
        w.hosts[n0].stack.xlate.len(),
        1,
        "an actively used outbound rule must survive TTL GC"
    );
    assert_eq!(w.hosts[n0].stack.xlate.stats().gc_evicted, 0);

    // Once the flow stops, the rule ages out as designed.
    w.run_for(2 * SECOND);
    assert_eq!(w.hosts[n0].stack.xlate.len(), 0);
}

#[test]
fn overlapping_surges_newer_one_survives_stale_restore() {
    // A short timed surge schedules its own restore; a second, longer
    // surge installed before the first expires must not be ended early by
    // the first surge's (now stale) restore.
    let mut w = World::new(WorldConfig {
        seed: 0x0b09,
        ..WorldConfig::default()
    });
    let n0 = w.add_server_node();
    w.inject_fault(Fault::Overload {
        host: n0,
        factor: 8,
        for_us: 500 * MILLISECOND,
    });
    assert_eq!(w.resource_usage().surged_hosts, 1);
    w.run_for(200 * MILLISECOND);
    w.inject_fault(Fault::Overload {
        host: n0,
        factor: 16,
        for_us: 2 * SECOND,
    });

    // Past the first surge's restore instant (t = 500 ms): the newer surge
    // must still be in force.
    w.run_for(600 * MILLISECOND);
    assert_eq!(
        w.resource_usage().surged_hosts,
        1,
        "the stale restore ended the newer surge early"
    );

    // The second surge's own restore (t = 2.2 s) does end it.
    w.run_for(2 * SECOND);
    assert_eq!(w.resource_usage().surged_hosts, 0);
}

#[test]
fn capture_pressure_charges_the_owning_migration() {
    // Two concurrent migrations into the same destination: queue pressure
    // from migration B's capture entries must abort B, not A (the
    // lowest-id migration), even though A is still in flight.
    let mut w = World::new(WorldConfig {
        seed: 0x0b0a,
        capture_budget: CaptureBudget {
            max_packets: 2,
            max_bytes: 64 * 1024,
            tcp_policy: TcpShedPolicy::HardFail,
        },
        ..WorldConfig::default()
    });
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let n2 = w.add_server_node();
    let ch_a = w.add_client_host();
    let ch_b = w.add_client_host();

    // Zone A: large image (long transfer, still in flight when B's queue
    // overflows), calm clients.
    let zone_a = w.spawn_process(n0, "zoneA", 64, 4096, Box::new(ZoneServer::new()));
    let addr_a = SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT);
    w.app_tcp_listen(n0, zone_a, addr_a);
    let swarm_a = w.spawn_process(ch_a, "swarmA", 64, 256, Box::new(SwarmClient::new()));
    for _ in 0..2 {
        w.app_tcp_connect(ch_a, swarm_a, addr_a, false);
    }

    // Zone B: small image, clients about to stampede.
    let zone_b = w.spawn_process(n1, "zoneB", 64, 1024, Box::new(ZoneServer::new()));
    let addr_b = SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT + 1);
    w.app_tcp_listen(n1, zone_b, addr_b);
    let swarm_b = w.spawn_process(ch_b, "swarmB", 64, 256, Box::new(SwarmClient::new()));
    for _ in 0..4 {
        w.app_tcp_connect(ch_b, swarm_b, addr_b, false);
    }

    w.run_for(SECOND);
    w.inject_fault(Fault::Overload {
        host: ch_b,
        factor: 32,
        for_us: 0,
    });

    let mig_a = w
        .begin_migration(zone_a, n2, Strategy::IncrementalCollective)
        .unwrap();
    let mig_b = w
        .begin_migration(zone_b, n2, Strategy::IncrementalCollective)
        .unwrap();
    assert!(mig_a < mig_b, "A must be the lower-id migration");
    w.run_for(4 * SECOND);

    match w.migration_outcome(mig_b) {
        Some(MigrationOutcome::Aborted { reason, .. }) => {
            assert_eq!(reason, AbortReason::Overloaded);
        }
        other => panic!("expected B's surge to abort B, got {other:?}"),
    }
    assert!(
        w.migration_outcome(mig_a).is_some_and(|o| o.is_completed()),
        "pressure from B's queue must not be charged to A: {:?}",
        w.migration_outcome(mig_a)
    );
    assert_eq!(w.host_of(zone_a), Some(n2));
    assert_eq!(w.host_of(zone_b), Some(n1), "B rolled back to its source");
}

#[test]
fn shared_capture_key_pressure_charges_the_installer() {
    // The harder attribution case: two concurrent migrations into `n2`
    // whose processes listen on the *same* public port on different source
    // hosts. Both engines then carry the identical wildcard capture key
    // `any_remote(ZONE_BASE_PORT)`, and because `CaptureTable::enable` is
    // idempotent they silently share one queue on the destination stack.
    // A SYN burst overflowing that shared queue must abort the migration
    // that *installed* the entry (B, which froze first), not whichever
    // sibling sorts first by id (A, which started earlier and is still
    // mid-freeze holding the very same key).
    let mut w = World::new(WorldConfig {
        seed: 0x0b0b,
        capture_budget: CaptureBudget {
            max_packets: 2,
            max_bytes: 64 * 1024,
            tcp_policy: TcpShedPolicy::HardFail,
        },
        ..WorldConfig::default()
    });
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let n2 = w.add_server_node();
    let ch = w.add_client_host();

    // Both servers are idle (no established connections), so the shared
    // wildcard listener key is the only capture entry either migration
    // installs — every byte of queue pressure lands on the shared queue.
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT);
    let zone_a = w.spawn_process(n0, "zoneA", 64, 16384, Box::new(ZoneServer::new()));
    w.app_tcp_listen(n0, zone_a, addr);
    let zone_b = w.spawn_process(n1, "zoneB", 64, 512, Box::new(ZoneServer::new()));
    w.app_tcp_listen(n1, zone_b, addr);
    w.run_for(SECOND);

    // A starts first (lower id) but carries a 64 MiB image; B's 2 MiB
    // image freezes within tens of milliseconds, so B reaches the capture
    // step — and claims the shared entry — long before A does.
    let mig_a = w
        .begin_migration(zone_a, n2, Strategy::IncrementalCollective)
        .unwrap();
    let mig_b = w
        .begin_migration(zone_b, n2, Strategy::IncrementalCollective)
        .unwrap();
    assert!(mig_a < mig_b, "A must be the lower-id migration");

    // Step an *absolute* deadline forward (the clock only advances when
    // events are popped, so a relative slice can spin in place).
    let stop = w.now() + 4 * SECOND;
    let mut deadline = w.now();
    while w.migration_past_detach(mig_b) == Some(false) {
        assert!(deadline < stop, "B never reached its detach");
        deadline += 200;
        w.run_until(deadline);
    }
    assert_eq!(
        w.migration_past_detach(mig_b),
        Some(true),
        "B finished before it could be parked"
    );
    // Park B mid-transfer so its capture entry outlives A's freeze.
    w.inject_fault(Fault::Partition {
        groups: [HostSet::of(&[n1]), HostSet::of(&[n0, n2, ch])],
        for_us: 10 * SECOND,
    });

    let stop = w.now() + 4 * SECOND;
    let mut deadline = w.now();
    while w.migration_past_detach(mig_a) == Some(false) {
        assert!(deadline < stop, "A never reached its detach");
        deadline += 200;
        w.run_until(deadline);
    }
    // Park A as well (partitions compose: n0 and n1 are now each cut off,
    // while `ch` can still reach `n2`). Both engines now hold the shared
    // key, and neither can finish and tear the entry down under us.
    w.inject_fault(Fault::Partition {
        groups: [HostSet::of(&[n0]), HostSet::of(&[n1, n2, ch])],
        for_us: 10 * SECOND,
    });
    assert!(
        w.migration_outcome(mig_a).is_none(),
        "A must still be in flight when the burst lands: {:?}",
        w.migration_outcome(mig_a)
    );
    assert!(
        w.migration_outcome(mig_b).is_none(),
        "B must still be parked when A freezes: {:?}",
        w.migration_outcome(mig_b)
    );

    // Eight fresh SYNs into the shared wildcard queue (budget: 2 packets).
    let swarm = w.spawn_process(ch, "burst", 64, 256, Box::new(SwarmClient::new()));
    for _ in 0..8 {
        w.app_tcp_connect(ch, swarm, addr, false);
    }
    w.run_for(200 * MILLISECOND);

    match w.migration_outcome(mig_b) {
        Some(MigrationOutcome::Aborted { reason, .. }) => {
            assert_eq!(reason, AbortReason::Overloaded);
        }
        other => panic!("expected the shared-queue overflow to abort B, got {other:?}"),
    }
    assert!(w.hosts[n2].stack.capture.stats().hard_failures > 0);

    // A held the same key the whole time and must be unharmed: after the
    // partitions heal, it completes and both zones end up where the
    // attribution says they should.
    assert!(
        w.migration_outcome(mig_a).is_none(),
        "the abort must not have touched parked A: {:?}",
        w.migration_outcome(mig_a)
    );
    w.run_for(15 * SECOND);
    assert!(
        w.migration_outcome(mig_a).is_some_and(|o| o.is_completed()),
        "pressure on the shared key must not be charged to A: {:?}",
        w.migration_outcome(mig_a)
    );
    assert_eq!(w.active_migrations(), 0);
    assert_eq!(w.host_of(zone_a), Some(n2));
    assert_eq!(w.host_of(zone_b), Some(n1), "B rolled back to its source");
}

#[test]
fn xlate_gc_reclaims_idle_rules() {
    let mut w = World::new(WorldConfig {
        seed: 0x0b06,
        xlate_gc_ttl_us: Some(500 * MILLISECOND),
        ..WorldConfig::default()
    });
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();

    // A rule left behind by a peer that will never send again (its
    // connection owner was migrated away and later exited).
    let rule = XlateRule::new(
        SockAddr::new(Ip::local_of(NodeId(0)), 4000),
        Ip::local_of(NodeId(1)),
        Ip::local_of(NodeId(2)),
        Port(9000),
    );
    let now = w.now();
    w.hosts[n0].stack.xlate.install_at(rule, now);
    assert_eq!(w.hosts[n0].stack.xlate.len(), 1);
    let _ = n1;

    // The GC event chain is the only activity; it must keep itself alive
    // and evict the rule once it ages past the TTL.
    w.run_for(3 * SECOND);
    assert_eq!(
        w.hosts[n0].stack.xlate.len(),
        0,
        "idle rule must be evicted after the TTL"
    );
    assert!(w.hosts[n0].stack.xlate.stats().gc_evicted >= 1);
}
