//! The partition matrix (ISSUE 7): cut the network between sender and
//! receiver at every conductor phase, heal before or after the ownership
//! lease expires, and require the three safety properties the epoch-fenced
//! control plane guarantees:
//!
//! * **exactly one live owner** — after the heal settles, the migrating
//!   process exists on exactly one alive host, never zero, never two;
//! * **zero TCP payload bytes lost** — every update byte the zone server
//!   wrote before the measurement point eventually reaches the clients
//!   (the paper's packet-loss-prevention property, held across partitions);
//! * **a clean invariant monitor** — the always-on `dvelm-monitor`
//!   reconciliation sees no split brain, no lost process, no epoch
//!   regression at any point.
//!
//! The final test removes the fence (`WorldConfig::fence_enabled = false`)
//! and replays the nastiest cell — partition after the detach point, heal
//! after lease expiry — to show the monitor *catches* the split brain the
//! fence otherwise prevents: both sides end up running a copy, and the
//! monitor says so. The fence is not decorative.

use dvelm::dve::apps::UPDATE_BYTES;
use dvelm::dve::{SwarmClient, ZoneServer, ZONE_BASE_PORT};
use dvelm::lb::ConductorPhase;
use dvelm::migrate::AbortReason;
use dvelm::monitor::InvariantViolation;
use dvelm::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Heal delay that beats the 15 s ownership lease.
const HEAL_BEFORE_LEASE: u64 = 5 * SECOND;
/// Heal delay that outlives both the 10 s migration timeout and the lease:
/// the sender force-cancels and the receiver's reservation expires while
/// the cut is still up.
const HEAL_AFTER_LEASE: u64 = 20 * SECOND;

struct Scenario {
    w: World,
    n0: usize,
    n1: usize,
    zone: Pid,
    updates_sent: Rc<RefCell<u64>>,
    bytes_received: Rc<RefCell<u64>>,
}

/// Two server nodes and a client host outside the cut: a hot zone server
/// on `n0` (its CPU share alone trips the imbalance trigger) streaming
/// 20 Hz updates to a 4-connection swarm, so the conductor's chosen
/// migration target is exactly the process whose TCP bytes we audit.
fn build(seed: u64, fence_enabled: bool) -> Scenario {
    let mut w = World::new(WorldConfig {
        seed,
        fence_enabled,
        // Stretch control latency so short-lived phases (AwaitingAccept is
        // one request/accept round trip) are wide enough to partition.
        ctrl_latency_us: 20 * MILLISECOND,
        lb: PolicyConfig {
            // Shortened so a healed destination becomes eligible again —
            // and an aborted migration retried — inside the test window.
            blacklist_us: 5 * SECOND,
            calm_down_us: 3 * SECOND,
            retry_backoff_base_us: SECOND,
            ..PolicyConfig::default()
        },
        ..WorldConfig::default()
    });
    w.enable_monitor();

    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let ch = w.add_client_host();

    let mut server = ZoneServer::new();
    server.cpu_base = 40.0; // the obvious (and only worthwhile) candidate
    let updates_sent = server.updates_sent.clone();
    let zone = w.spawn_process(n0, "zone", 64, 1024, Box::new(server));
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT);
    w.app_tcp_listen(n0, zone, addr);

    let client = SwarmClient::new();
    let bytes_received = client.bytes_received.clone();
    let swarm = w.spawn_process(ch, "swarm", 64, 256, Box::new(client));
    for _ in 0..4 {
        w.app_tcp_connect(ch, swarm, addr, false);
    }

    w.run_for(SECOND);
    w.enable_load_balancing();
    Scenario {
        w,
        n0,
        n1,
        zone,
        updates_sent,
        bytes_received,
    }
}

/// Step in 2 ms slices until `host`'s conductor satisfies `pred` (the
/// phase to cut at), failing loudly if 60 s pass without it.
fn run_until_phase(w: &mut World, host: usize, what: &str, pred: impl Fn(&ConductorPhase) -> bool) {
    let give_up = w.now() + 60 * SECOND;
    let mut deadline = w.now();
    loop {
        let phase = w.hosts[host].conductor.as_ref().expect("conductor").phase();
        if pred(&phase) {
            return;
        }
        assert!(
            deadline <= give_up,
            "{what}: conductor never reached the target phase (stuck at {phase:?})"
        );
        deadline += 2 * MILLISECOND;
        w.run_until(deadline);
    }
}

/// The post-heal acceptance shared by every cell: one owner, clean
/// monitor, and not a byte of the update stream missing.
fn assert_cell_safe(s: &mut Scenario, what: &str) {
    // Exactly one live copy of the zone process, anywhere.
    let owners =
        s.w.hosts
            .iter()
            .filter(|h| h.alive && h.procs.contains_key(&s.zone))
            .count();
    assert_eq!(owners, 1, "{what}: expected exactly one live owner");

    // The invariant monitor's reconciliation agrees nothing drifted.
    s.w.monitor_sweep();
    assert!(
        s.w.violations().is_empty(),
        "{what}: invariant violations after heal: {:?}",
        s.w.violations()
    );

    // Zero TCP payload bytes lost: everything the server wrote up to this
    // instant must eventually arrive (TCP + capture re-injection carry it
    // across freeze, abort and partition alike).
    let target = *s.updates_sent.borrow() * UPDATE_BYTES as u64;
    let mut waited = 0u64;
    while *s.bytes_received.borrow() < target {
        assert!(
            waited < 20 * SECOND,
            "{what}: update stream is missing bytes: sent {target}, \
             received {} after 20 s of settling",
            *s.bytes_received.borrow()
        );
        s.w.run_for(100 * MILLISECOND);
        waited += 100 * MILLISECOND;
    }
}

/// One matrix cell: drive to the phase, cut sender from receiver, heal
/// after `heal_us`, settle, and check the safety properties.
fn run_cell(
    seed: u64,
    heal_us: u64,
    what: &str,
    phase_host: impl Fn(&Scenario) -> usize,
    pred: impl Fn(&ConductorPhase) -> bool,
) {
    let mut s = build(seed, true);
    let host = phase_host(&s);
    run_until_phase(&mut s.w, host, what, pred);
    let (a, b) = (s.n0, s.n1);
    s.w.inject_fault(Fault::Partition {
        groups: [HostSet::of(&[a]), HostSet::of(&[b])],
        for_us: heal_us,
    });
    // Heal (≤ 20 s) + lease expiry + shortened blacklist/backoff + a full
    // retried transfer all fit comfortably in 40 s.
    s.w.run_for(40 * SECOND);
    assert_cell_safe(&mut s, what);
}

#[test]
fn partition_in_idle() {
    for (i, heal) in [HEAL_BEFORE_LEASE, HEAL_AFTER_LEASE]
        .into_iter()
        .enumerate()
    {
        run_cell(
            0x9a70 + i as u64,
            heal,
            "idle",
            |s| s.n0,
            |p| matches!(p, ConductorPhase::Idle),
        );
    }
}

#[test]
fn partition_in_awaiting_accept() {
    for (i, heal) in [HEAL_BEFORE_LEASE, HEAL_AFTER_LEASE]
        .into_iter()
        .enumerate()
    {
        let mut s = build(0x9a80 + i as u64, true);
        // Conductor messages ride the switch (µs-scale), so AwaitingAccept
        // is normally far narrower than any polling slice. Widen the accept
        // path — everything switched toward the sender — to 10 ms so the
        // 2 ms sampling loop can land inside the phase.
        let sender = NodeId(s.n0 as u32);
        s.w.switch
            .downlink_mut(sender)
            .expect("sender attached")
            .latency_us = 10 * MILLISECOND;
        run_until_phase(&mut s.w, s.n0, "awaiting-accept", |p| {
            matches!(p, ConductorPhase::AwaitingAccept { .. })
        });
        let (a, b) = (s.n0, s.n1);
        s.w.inject_fault(Fault::Partition {
            groups: [HostSet::of(&[a]), HostSet::of(&[b])],
            for_us: heal,
        });
        s.w.run_for(40 * SECOND);
        assert_cell_safe(&mut s, "awaiting-accept");
    }
}

#[test]
fn partition_in_sending() {
    for (i, heal) in [HEAL_BEFORE_LEASE, HEAL_AFTER_LEASE]
        .into_iter()
        .enumerate()
    {
        run_cell(
            0x9a90 + i as u64,
            heal,
            "sending",
            |s| s.n0,
            |p| matches!(p, ConductorPhase::Sending { .. }),
        );
    }
}

#[test]
fn partition_in_receiving() {
    for (i, heal) in [HEAL_BEFORE_LEASE, HEAL_AFTER_LEASE]
        .into_iter()
        .enumerate()
    {
        run_cell(
            0x9aa0 + i as u64,
            heal,
            "receiving",
            |s| s.n1,
            |p| matches!(p, ConductorPhase::Receiving { .. }),
        );
    }
}

#[test]
fn partition_in_calm_down() {
    for (i, heal) in [HEAL_BEFORE_LEASE, HEAL_AFTER_LEASE]
        .into_iter()
        .enumerate()
    {
        run_cell(
            0x9ab0 + i as u64,
            heal,
            "calm-down",
            |s| s.n0,
            |p| matches!(p, ConductorPhase::CalmDown { .. }),
        );
    }
}

// ---------------------------------------------------------------------
// post-copy family: partition mid-resolve (ISSUE 8)
// ---------------------------------------------------------------------

/// The residual strategies under test.
const RESIDUAL: [Strategy; 2] = [Strategy::PostCopy, Strategy::Hybrid { precopy_rounds: 2 }];

/// The zone scenario without the load balancer: residual cells drive the
/// migration by hand so the cut lands exactly mid-resolve, with the
/// invariant monitor armed throughout.
fn build_manual(seed: u64, fence_enabled: bool) -> Scenario {
    let mut w = World::new(WorldConfig {
        seed,
        fence_enabled,
        ..WorldConfig::default()
    });
    w.enable_monitor();

    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let ch = w.add_client_host();

    let server = ZoneServer::new();
    let updates_sent = server.updates_sent.clone();
    let zone = w.spawn_process(n0, "zone", 64, 1024, Box::new(server));
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT);
    w.app_tcp_listen(n0, zone, addr);

    let client = SwarmClient::new();
    let bytes_received = client.bytes_received.clone();
    let swarm = w.spawn_process(ch, "swarm", 64, 256, Box::new(client));
    for _ in 0..4 {
        w.app_tcp_connect(ch, swarm, addr, false);
    }

    w.run_for(SECOND);
    Scenario {
        w,
        n0,
        n1,
        zone,
        updates_sent,
        bytes_received,
    }
}

/// Step until the migration enters demand-resolve, failing loudly if it
/// finishes first.
fn run_until_demand_resolve(w: &mut World, mig: dvelm::cluster::MigId) {
    let mut deadline = w.now();
    while w.migration_in_demand_resolve(mig) == Some(false) {
        deadline += 200;
        w.run_until(deadline);
    }
    assert_eq!(
        w.migration_in_demand_resolve(mig),
        Some(true),
        "migration finished before the cut could land mid-resolve"
    );
}

#[test]
fn partition_mid_resolve_heals_and_completes() {
    // Cut the residual stream mid-resolve. Two heal instants per strategy:
    // while the write-back is still outstanding (50 ms — resolution picks
    // up exactly where the cut parked it) and long after the drain would
    // have finished unstalled (2 s — the parked ledger survives arbitrary
    // delay). Either way the migration must complete, the ledger drain to
    // zero, and not a byte of the update stream go missing.
    let mut seed = 0x9ae0u64;
    for strategy in RESIDUAL {
        for heal in [50 * MILLISECOND, 2 * SECOND] {
            let what = format!("{strategy} mid-resolve heal@{heal}");
            let mut s = build_manual(seed, true);
            seed += 1;
            let mig = s.w.begin_migration(s.zone, s.n1, strategy).unwrap();
            run_until_demand_resolve(&mut s.w, mig);
            assert!(
                s.w.migration_residual_pages(mig).unwrap_or(0) > 0,
                "{what}: the ledger must be mid-drain when the cut lands"
            );
            let (a, b) = (s.n0, s.n1);
            s.w.inject_fault(Fault::Partition {
                groups: [HostSet::of(&[a]), HostSet::of(&[b])],
                for_us: heal,
            });
            s.w.run_for(heal + 5 * SECOND);

            assert!(
                s.w.migration_outcome(mig).is_some_and(|o| o.is_completed()),
                "{what}: a healed cut must not kill the resolution: {:?}",
                s.w.migration_outcome(mig)
            );
            assert_eq!(s.w.host_of(s.zone), Some(b), "{what}");
            let report = s.w.reports.last().expect("completion produces a report");
            assert!(
                report.demand_fetch_pages + report.writeback_pages > 0,
                "{what}: the ledger was actually drained"
            );
            assert_cell_safe(&mut s, &what);
        }
    }
}

#[test]
fn monitor_catches_residual_leak_when_fence_disabled() {
    // The stale-source hazard realized (ISSUE 8): with the fence off, an
    // abort mid-resolve across an active partition leaves the destination
    // copy running — still owed `residual_pages` nobody will ever serve
    // (ResidualDependencyLeak) — while the source restores its own copy,
    // whose first write makes it the stale survivor (StaleSourceWrite).
    // With the fence armed, the identical cut + cancel stays single-owner
    // and the monitor stays silent.
    let mut seed = 0x9af0u64;
    for strategy in RESIDUAL {
        // Unfenced: the monitor must name both hazards.
        let mut s = build_manual(seed, false);
        seed += 1;
        let mig = s.w.begin_migration(s.zone, s.n1, strategy).unwrap();
        run_until_demand_resolve(&mut s.w, mig);
        let owed = s.w.migration_residual_pages(mig).unwrap_or(0);
        assert!(owed > 0, "{strategy}: pages must still be owed");
        let (a, b) = (s.n0, s.n1);
        s.w.inject_fault(Fault::Partition {
            groups: [HostSet::of(&[a]), HostSet::of(&[b])],
            for_us: 0, // never heals: the orphan keeps running
        });
        s.w.inject_fault(Fault::TransferStall { pid: s.zone });
        s.w.run_for(SECOND);

        let owners =
            s.w.hosts
                .iter()
                .filter(|h| h.alive && h.procs.contains_key(&s.zone))
                .count();
        assert_eq!(
            owners, 2,
            "{strategy}: without the fence both sides keep a copy"
        );
        let leak = s.w.violations().iter().any(|v| {
            matches!(
                v,
                InvariantViolation::ResidualDependencyLeak { pid, pages, .. }
                    if *pid == s.zone && *pages > 0
            )
        });
        assert!(
            leak,
            "{strategy}: the monitor must flag the leaked ledger: {:?}",
            s.w.violations()
        );
        let stale = s.w.violations().iter().any(|v| {
            matches!(
                v,
                InvariantViolation::StaleSourceWrite { pid, .. } if *pid == s.zone
            )
        });
        assert!(
            stale,
            "{strategy}: the monitor must flag the stale source write: {:?}",
            s.w.violations()
        );

        // Fenced control: the same cut + cancel leaves exactly one live
        // copy and a clean monitor — the fence closes the window the
        // monitor just proved real.
        let mut s = build_manual(seed, true);
        seed += 1;
        let mig = s.w.begin_migration(s.zone, s.n1, strategy).unwrap();
        run_until_demand_resolve(&mut s.w, mig);
        let (a, b) = (s.n0, s.n1);
        s.w.inject_fault(Fault::Partition {
            groups: [HostSet::of(&[a]), HostSet::of(&[b])],
            for_us: 0,
        });
        s.w.inject_fault(Fault::TransferStall { pid: s.zone });
        s.w.run_for(SECOND);
        let owners =
            s.w.hosts
                .iter()
                .filter(|h| h.alive && h.procs.contains_key(&s.zone))
                .count();
        assert_eq!(owners, 1, "{strategy}: the fence keeps a single owner");
        s.w.monitor_sweep();
        assert!(
            s.w.violations().is_empty(),
            "{strategy}: fenced run must stay clean: {:?}",
            s.w.violations()
        );
    }
}

/// The nastiest cell with the fence armed: the cut opens *after* the
/// detach point — the destination already holds the complete image — and
/// stays up past lease expiry, so the sender force-cancels and restores
/// on the source. The fence refuses the destination's stale restore, and
/// the world stays single-owner.
#[test]
fn fence_prevents_split_brain_past_detach() {
    let mut s = build(0x9ac0, true);
    run_until_phase(&mut s.w, s.n0, "fenced post-detach", |p| {
        matches!(p, ConductorPhase::Sending { .. })
    });
    let mig = s.w.migration_of(s.zone).expect("transfer in flight");
    let mut deadline = s.w.now();
    while s.w.migration_past_detach(mig) == Some(false) {
        deadline += 200;
        s.w.run_until(deadline);
    }
    assert_eq!(
        s.w.migration_past_detach(mig),
        Some(true),
        "the transfer completed before the cut could open"
    );
    let (a, b) = (s.n0, s.n1);
    s.w.inject_fault(Fault::Partition {
        groups: [HostSet::of(&[a]), HostSet::of(&[b])],
        for_us: HEAL_AFTER_LEASE,
    });
    s.w.run_for(40 * SECOND);
    assert_cell_safe(&mut s, "fenced post-detach");
}

/// The abort row for the fence itself: `AbortReason::FencedStaleEpoch` by
/// name, not merely a safe cell. The 20 s heal above never reaches the
/// fence — the sender's force-cancel ticks at ~15 s mid-partition and wins
/// with `TransferStalled`. Here the heal is aimed *into the fence window*:
/// the cut opens past detach and closes 1 µs after the destination's lease
/// expires, before the sender's next 500 ms conductor tick can cancel. The
/// woken transfer steps first, the destination refuses the stale-epoch
/// resume, and the fence is the component that reports the abort.
#[test]
fn fence_reports_stale_epoch_abort_by_name() {
    let mut s = build(0x9ae0, true);
    run_until_phase(&mut s.w, s.n0, "fence window", |p| {
        matches!(p, ConductorPhase::Sending { .. })
    });
    let mig = s.w.migration_of(s.zone).expect("transfer in flight");
    let mut deadline = s.w.now();
    while s.w.migration_past_detach(mig) == Some(false) {
        deadline += 200;
        s.w.run_until(deadline);
    }
    let phase = s.w.hosts[s.n0]
        .conductor
        .as_ref()
        .expect("conductor")
        .phase();
    let ConductorPhase::Sending { lease_until, .. } = phase else {
        panic!("sender must still be mid-transfer, got {phase:?}");
    };
    let (a, b) = (s.n0, s.n1);
    s.w.inject_fault(Fault::Partition {
        groups: [HostSet::of(&[a]), HostSet::of(&[b])],
        for_us: lease_until.saturating_since(s.w.now()) + 1,
    });
    s.w.run_for(40 * SECOND);
    match s.w.migration_outcome(mig) {
        Some(MigrationOutcome::Aborted { reason, .. }) => assert_eq!(
            reason,
            AbortReason::FencedStaleEpoch,
            "the fence, not the stall timeout, must be what stopped the resume"
        ),
        other => panic!("fenced transfer must abort at the fence, got {other:?}"),
    }
    assert_cell_safe(&mut s, "fence window");
}

/// The same scenario with the fence *disabled* is the control experiment:
/// the destination commits the image it already holds while the source
/// restores its own copy — a split brain — and the invariant monitor is
/// the component that catches it. This is the demonstration that the
/// epoch fence is load-bearing and the monitor is sharp enough to see
/// the failure the fence exists to prevent.
#[test]
fn monitor_catches_split_brain_when_fence_disabled() {
    let mut s = build(0x9ad0, false);
    run_until_phase(&mut s.w, s.n0, "unfenced post-detach", |p| {
        matches!(p, ConductorPhase::Sending { .. })
    });
    let mig = s.w.migration_of(s.zone).expect("transfer in flight");
    let mut deadline = s.w.now();
    while s.w.migration_past_detach(mig) == Some(false) {
        deadline += 200;
        s.w.run_until(deadline);
    }
    let (a, b) = (s.n0, s.n1);
    s.w.inject_fault(Fault::Partition {
        groups: [HostSet::of(&[a]), HostSet::of(&[b])],
        for_us: HEAL_AFTER_LEASE,
    });
    // Long enough for the sender's cancel (15 s: migration timeout and
    // lease both expired) to abort the stalled transfer mid-partition.
    s.w.run_for(18 * SECOND);

    let owners =
        s.w.hosts
            .iter()
            .filter(|h| h.alive && h.procs.contains_key(&s.zone))
            .count();
    assert_eq!(
        owners, 2,
        "without the fence, both sides must end up holding a copy"
    );
    let split = s.w.violations().iter().any(|v| {
        matches!(
            v,
            InvariantViolation::SplitBrain { pid, .. } if *pid == s.zone
        )
    });
    assert!(
        split,
        "the monitor must flag the duplicated process: {:?}",
        s.w.violations()
    );
}
