//! The fault matrix: every migration must be survivable (ISSUE 2).
//!
//! World-level acceptance tests for the fault-injection + abort/rollback
//! subsystem, exercised per socket-migration strategy where the recovery
//! path differs:
//!
//! * destination crash **before** detach → the source copy never stopped
//!   (zero downtime, nothing to roll back);
//! * destination crash **after** detach → the process is restored on the
//!   source from the captured image, captured packets drained back;
//! * destination kernel refusals (capture hook, socket rehash) → freeze
//!   rollback / restore fallback, the client stream keeps flowing;
//! * source crash after detach → only the captured image survives
//!   (`World::lost_images`, BLCR cold-restart fodder);
//! * conductor-level recovery: failed migrations are retried with
//!   exponential backoff, failed destinations are blacklisted, and the
//!   migration eventually completes;
//! * control blackouts stall negotiation without wedging the sender;
//! * correlated (burst) WAN loss across the freeze window neither kills
//!   the migration nor the stream.

use dvelm::dve::{SwarmClient, ZoneServer, ZONE_BASE_PORT};
use dvelm::migrate::{AbortReason, PhaseId};
use dvelm::net::LossModel;
use dvelm::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// The reference scenario: a zone server on `n0` with a 4-connection TCP
/// swarm behind the WAN router, warmed up for a second. Returns
/// `(world, n0, n1, client_host, zone_pid, updates_sent, updates_received)`
/// — the two counters are live handles into the running apps.
#[allow(clippy::type_complexity)]
fn zone_world(
    seed: u64,
) -> (
    World,
    usize,
    usize,
    usize,
    Pid,
    Rc<RefCell<u64>>,
    Rc<RefCell<u64>>,
) {
    let mut w = World::new(WorldConfig {
        seed,
        ..WorldConfig::default()
    });
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let ch = w.add_client_host();

    let server = ZoneServer::new();
    let updates_sent = server.updates_sent.clone();
    let zone = w.spawn_process(n0, "zone", 64, 1024, Box::new(server));
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT);
    w.app_tcp_listen(n0, zone, addr);

    let client = SwarmClient::new();
    let updates_received = client.updates_received.clone();
    let swarm = w.spawn_process(ch, "swarm", 64, 256, Box::new(client));
    for _ in 0..4 {
        w.app_tcp_connect(ch, swarm, addr, false);
    }

    w.run_for(SECOND);
    (w, n0, n1, ch, zone, updates_sent, updates_received)
}

/// Drive the world until the migration crosses its detach point, then
/// assert it actually did (rather than completing under us).
fn run_until_past_detach(w: &mut World, mig: dvelm::cluster::MigId, strategy: Strategy) {
    // Step an *absolute* deadline forward: the world clock only advances
    // when events are popped, so a relative `run_for(200)` would spin in
    // place whenever the next event is further out than the slice.
    let mut deadline = w.now();
    while w.migration_past_detach(mig) == Some(false) {
        deadline += 200;
        w.run_until(deadline);
    }
    assert_eq!(
        w.migration_past_detach(mig),
        Some(true),
        "{strategy:?}: migration finished before the crash window opened"
    );
}

/// Assert that `counter` keeps advancing over the next two seconds — the
/// app-level liveness probe used after every recovery.
fn assert_stream_alive(w: &mut World, counter: &Rc<RefCell<u64>>, what: &str) {
    let before = *counter.borrow();
    w.run_for(2 * SECOND);
    let after = *counter.borrow();
    assert!(
        after > before + 20,
        "{what}: counter stuck at {before} -> {after}"
    );
}

// ---------------------------------------------------------------------
// destination crash, pre-detach: zero downtime
// ---------------------------------------------------------------------

#[test]
fn fault_predetach_dst_crash_keeps_source_running() {
    for strategy in Strategy::ALL {
        let (mut w, n0, n1, _ch, zone, updates_sent, _) = zone_world(0xfa01);
        let mig = w.begin_migration(zone, n1, strategy).unwrap();
        w.run_for(5 * MILLISECOND);
        assert_eq!(
            w.migration_past_detach(mig),
            Some(false),
            "{strategy:?}: 4 MiB of precopy cannot have finished in 5 ms"
        );

        w.inject_fault(Fault::NodeCrash { host: n1 });

        match w.migration_outcome(mig) {
            Some(MigrationOutcome::Aborted {
                reason, recovery, ..
            }) => {
                assert_eq!(reason, AbortReason::DestinationCrashed, "{strategy:?}");
                assert_eq!(
                    recovery,
                    Recovery::SourceKeptRunning,
                    "{strategy:?}: precopy abort must not have frozen the app"
                );
            }
            other => panic!("{strategy:?}: expected an aborted outcome, got {other:?}"),
        }
        assert_eq!(w.active_migrations(), 0);
        assert_eq!(w.host_of(zone), Some(n0), "{strategy:?}");

        // Zero downtime: the report shows no freeze window at all.
        let report = w.reports.last().expect("abort produces a report");
        assert!(report.is_aborted(), "{strategy:?}");
        assert_eq!(report.freeze_us(), 0, "{strategy:?}: downtime must be zero");

        assert_stream_alive(&mut w, &updates_sent, "zone server after precopy abort");
    }
}

// ---------------------------------------------------------------------
// destination crash, post-detach: restore on source
// ---------------------------------------------------------------------

#[test]
fn fault_postdetach_dst_crash_restores_on_source() {
    for strategy in Strategy::ALL {
        let (mut w, n0, n1, _ch, zone, _, updates_received) = zone_world(0xfa02);
        let mig = w.begin_migration(zone, n1, strategy).unwrap();
        run_until_past_detach(&mut w, mig, strategy);

        w.inject_fault(Fault::NodeCrash { host: n1 });

        match w.migration_outcome(mig) {
            Some(MigrationOutcome::Aborted {
                phase,
                reason,
                recovery,
            }) => {
                assert_eq!(phase, PhaseId::FreezeDetach, "{strategy:?}");
                assert_eq!(reason, AbortReason::DestinationCrashed, "{strategy:?}");
                assert_eq!(recovery, Recovery::RestoredOnSource, "{strategy:?}");
            }
            other => panic!("{strategy:?}: expected an aborted outcome, got {other:?}"),
        }
        assert_eq!(w.active_migrations(), 0);
        assert_eq!(w.host_of(zone), Some(n0), "{strategy:?}");
        assert!(w.lost_images.is_empty(), "{strategy:?}: nothing was lost");

        // The restored copy serves the same (retransmitting) connections:
        // the clients see updates again without reconnecting.
        assert_stream_alive(
            &mut w,
            &updates_received,
            "swarm clients after restore-on-source",
        );
    }
}

// ---------------------------------------------------------------------
// post-copy family: faults during demand-resolve
// ---------------------------------------------------------------------

/// Drive the world until the migration enters its demand-resolve phase,
/// then assert it actually did (rather than completing under us).
fn run_until_demand_resolve(w: &mut World, mig: dvelm::cluster::MigId, strategy: Strategy) {
    let mut deadline = w.now();
    while w.migration_in_demand_resolve(mig) == Some(false) {
        deadline += 200;
        w.run_until(deadline);
    }
    assert_eq!(
        w.migration_in_demand_resolve(mig),
        Some(true),
        "{strategy:?}: migration finished before entering demand-resolve"
    );
}

/// The residual strategies under test, with enough precopy rounds for the
/// hybrid variant to still carry a ledger at switch-over.
const RESIDUAL: [Strategy; 2] = [Strategy::PostCopy, Strategy::Hybrid { precopy_rounds: 2 }];

#[test]
fn fault_dst_crash_during_demand_resolve_restores_on_source() {
    // The hardest post-copy cell: the destination copy is already running
    // when its host dies. The source's residual-dependency ledger is
    // intact, so the outcome must be RestoredOnSource — never Lost.
    for strategy in RESIDUAL {
        let (mut w, n0, n1, _ch, zone, _, updates_received) = zone_world(0xfa0c);
        let mig = w.begin_migration(zone, n1, strategy).unwrap();
        run_until_demand_resolve(&mut w, mig, strategy);
        assert!(
            w.migration_residual_pages(mig).unwrap_or(0) > 0,
            "{strategy:?}: the ledger must still hold pages when the crash lands"
        );

        w.inject_fault(Fault::NodeCrash { host: n1 });

        match w.migration_outcome(mig) {
            Some(MigrationOutcome::Aborted {
                phase,
                reason,
                recovery,
            }) => {
                assert_eq!(phase, PhaseId::DemandResolve, "{strategy:?}");
                assert_eq!(reason, AbortReason::DestinationCrashed, "{strategy:?}");
                assert_eq!(
                    recovery,
                    Recovery::RestoredOnSource,
                    "{strategy:?}: ledger intact ⇒ never Lost"
                );
            }
            other => panic!("{strategy:?}: expected an aborted outcome, got {other:?}"),
        }
        assert_eq!(w.active_migrations(), 0, "{strategy:?}");
        assert_eq!(w.host_of(zone), Some(n0), "{strategy:?}");
        assert!(w.lost_images.is_empty(), "{strategy:?}: nothing was lost");

        // Unlike pre-switch-over aborts, the connections do NOT survive:
        // socket state lived on the destination since switch-over and died
        // with it (BLCR semantics, DESIGN.md §12 abort-row table). The
        // restored source copy runs, but clients must reconnect — the
        // update stream stays parked rather than resuming.
        let before = *updates_received.borrow();
        w.run_for(2 * SECOND);
        let after = *updates_received.borrow();
        assert!(
            after <= before + 20,
            "{strategy:?}: a demand-resolve abort cannot keep the old \
             connections streaming ({before} -> {after})"
        );
    }
}

#[test]
fn fault_src_crash_during_demand_resolve_loses_the_ledger() {
    // The dual cell: the *source* dies mid-resolve. The ledger — the only
    // authoritative copy of the unfetched pages — dies with it, and the
    // partially-fetched destination copy is unrecoverable: this is the one
    // cell where `Lost` is the honest outcome (and exactly why the
    // `Lost`-avoidance theorem is conditioned on ledger intactness).
    for strategy in RESIDUAL {
        let (mut w, n0, n1, _ch, zone, _, _) = zone_world(0xfa0d);
        let mig = w.begin_migration(zone, n1, strategy).unwrap();
        run_until_demand_resolve(&mut w, mig, strategy);
        assert!(
            w.migration_residual_pages(mig).unwrap_or(0) > 0,
            "{strategy:?}"
        );

        w.inject_fault(Fault::NodeCrash { host: n0 });

        match w.migration_outcome(mig) {
            Some(MigrationOutcome::Aborted {
                phase,
                reason,
                recovery,
            }) => {
                assert_eq!(phase, PhaseId::DemandResolve, "{strategy:?}");
                assert_eq!(reason, AbortReason::SourceCrashed, "{strategy:?}");
                assert_eq!(
                    recovery,
                    Recovery::Lost,
                    "{strategy:?}: the ledger died with the source"
                );
            }
            other => panic!("{strategy:?}: expected an aborted outcome, got {other:?}"),
        }
        assert_eq!(w.host_of(zone), None, "{strategy:?}");
        assert!(
            w.lost_images.is_empty(),
            "{strategy:?}: a partial image is not cold-restartable"
        );
        w.run_for(SECOND);
    }
}

#[test]
fn fault_fetch_stall_defers_resolution_without_killing_it() {
    // A stalled residual stream mid-resolve delays completion but must not
    // abort: the destination copy keeps running (it is already resumed)
    // and resolution picks up where it left off once the stall lifts.
    for strategy in RESIDUAL {
        let (mut w, _n0, n1, _ch, zone, _, updates_received) = zone_world(0xfa0e);
        let mig = w.begin_migration(zone, n1, strategy).unwrap();
        run_until_demand_resolve(&mut w, mig, strategy);

        w.inject_fault(Fault::FetchStall {
            pid: zone,
            for_us: 500 * MILLISECOND,
        });
        w.run_for(2 * SECOND);

        assert!(
            w.migration_outcome(mig).is_some_and(|o| o.is_completed()),
            "{strategy:?}: a fetch stall must defer, not kill: {:?}",
            w.migration_outcome(mig)
        );
        assert_eq!(w.host_of(zone), Some(n1), "{strategy:?}");
        let report = w.reports.last().expect("completion produces a report");
        assert!(
            report.demand_fetch_pages + report.writeback_pages > 0,
            "{strategy:?}: resolution resumed after the stall"
        );
        assert_stream_alive(&mut w, &updates_received, "swarm clients after fetch stall");
    }
}

// ---------------------------------------------------------------------
// destination kernel refusals: freeze rollback and restore fallback
// ---------------------------------------------------------------------

#[test]
fn fault_capture_install_failure_resumes_frozen_source() {
    for strategy in Strategy::ALL {
        let (mut w, n0, n1, _ch, zone, updates_sent, _) = zone_world(0xfa03);
        w.inject_fault(Fault::CaptureInstallFail { host: n1 });
        let mig = w.begin_migration(zone, n1, strategy).unwrap();
        w.run_for(2 * SECOND);

        match w.migration_outcome(mig) {
            Some(MigrationOutcome::Aborted {
                phase,
                reason,
                recovery,
            }) => {
                assert_eq!(phase, PhaseId::FreezeCapture, "{strategy:?}");
                assert_eq!(reason, AbortReason::CaptureInstallFailed, "{strategy:?}");
                assert_eq!(recovery, Recovery::ResumedOnSource, "{strategy:?}");
            }
            other => panic!("{strategy:?}: expected an aborted outcome, got {other:?}"),
        }
        assert_eq!(w.host_of(zone), Some(n0), "{strategy:?}");
        assert_stream_alive(&mut w, &updates_sent, "zone server after capture rollback");
    }
}

#[test]
fn fault_restore_failure_falls_back_without_losing_packets() {
    for strategy in Strategy::ALL {
        let (mut w, n0, n1, _ch, zone, _, updates_received) = zone_world(0xfa04);
        w.inject_fault(Fault::RestoreFail { host: n1 });
        let mig = w.begin_migration(zone, n1, strategy).unwrap();
        w.run_for(2 * SECOND);

        match w.migration_outcome(mig) {
            Some(MigrationOutcome::Aborted {
                phase,
                reason,
                recovery,
            }) => {
                assert_eq!(phase, PhaseId::Restore, "{strategy:?}");
                assert_eq!(reason, AbortReason::RestoreFailed, "{strategy:?}");
                assert_eq!(recovery, Recovery::RestoredOnSource, "{strategy:?}");
            }
            other => panic!("{strategy:?}: expected an aborted outcome, got {other:?}"),
        }
        assert_eq!(w.host_of(zone), Some(n0), "{strategy:?}");

        // The destination stayed alive, so every packet captured during the
        // freeze was drained back into the source's reinstalled sockets —
        // the clients' TCP streams continue without resets.
        assert_stream_alive(
            &mut w,
            &updates_received,
            "swarm clients after restore fallback",
        );
    }
}

// ---------------------------------------------------------------------
// source crash post-detach: the image is all that survives
// ---------------------------------------------------------------------

#[test]
fn fault_postdetach_src_crash_leaves_cold_restartable_image() {
    let strategy = Strategy::IncrementalCollective;
    let (mut w, n0, n1, _ch, zone, _, _) = zone_world(0xfa05);
    let mig = w.begin_migration(zone, n1, strategy).unwrap();
    run_until_past_detach(&mut w, mig, strategy);

    w.inject_fault(Fault::NodeCrash { host: n0 });

    match w.migration_outcome(mig) {
        Some(MigrationOutcome::Aborted {
            phase,
            reason,
            recovery,
        }) => {
            assert_eq!(phase, PhaseId::FreezeDetach);
            assert_eq!(reason, AbortReason::SourceCrashed);
            assert_eq!(recovery, Recovery::ImageOnly);
        }
        other => panic!("expected an aborted outcome, got {other:?}"),
    }
    assert_eq!(w.host_of(zone), None, "the live copy died with its source");
    assert_eq!(w.lost_images.len(), 1, "the captured image survived");
    assert_eq!(w.lost_images[0].pid, zone);

    // The destination is intact and keeps running.
    assert_eq!(w.active_migrations(), 0);
    w.run_for(SECOND);
}

// ---------------------------------------------------------------------
// orchestration-level aborts: stalls, kills, drains
// ---------------------------------------------------------------------

#[test]
fn fault_transfer_stall_aborts_via_fault_plan() {
    let (mut w, n0, n1, _ch, zone, updates_sent, _) = zone_world(0xfa06);
    // Scripted injection: the stall deadline fires 5 ms into the transfer.
    let at = w.now() + 5 * MILLISECOND;
    w.install_fault_plan(FaultPlan::new().at(at, Fault::TransferStall { pid: zone }));
    let mig = w.begin_migration(zone, n1, Strategy::Collective).unwrap();
    w.run_for(2 * SECOND);

    match w.migration_outcome(mig) {
        Some(MigrationOutcome::Aborted {
            reason, recovery, ..
        }) => {
            assert_eq!(reason, AbortReason::TransferStalled);
            assert_eq!(recovery, Recovery::SourceKeptRunning);
        }
        other => panic!("expected an aborted outcome, got {other:?}"),
    }
    assert_eq!(w.host_of(zone), Some(n0));
    assert_stream_alive(&mut w, &updates_sent, "zone server after stall abort");
}

#[test]
fn fault_kill_process_mid_migration_aborts_first() {
    for (strategy, past_detach) in [
        (Strategy::Iterative, false),
        (Strategy::IncrementalCollective, true),
    ] {
        let (mut w, _n0, n1, _ch, zone, _, _) = zone_world(0xfa07);
        let mig = w.begin_migration(zone, n1, strategy).unwrap();
        if past_detach {
            run_until_past_detach(&mut w, mig, strategy);
        } else {
            w.run_for(5 * MILLISECOND);
        }

        assert!(w.kill_process(zone), "{strategy:?}: the process exists");

        match w.migration_outcome(mig) {
            Some(MigrationOutcome::Aborted { reason, .. }) => {
                assert_eq!(reason, AbortReason::ProcessKilled, "{strategy:?}")
            }
            other => panic!("{strategy:?}: expected an aborted outcome, got {other:?}"),
        }
        assert_eq!(w.active_migrations(), 0, "{strategy:?}");
        assert_eq!(w.host_of(zone), None, "{strategy:?}: the kill still lands");
        // The world keeps running cleanly with no stale migration events.
        w.run_for(2 * SECOND);
        assert!(w.lost_images.is_empty(), "{strategy:?}");
    }
}

#[test]
fn fault_detach_node_aborts_inbound_migration() {
    let (mut w, n0, n1, _ch, zone, updates_sent, _) = zone_world(0xfa08);
    let mig = w.begin_migration(zone, n1, Strategy::Iterative).unwrap();
    w.run_for(5 * MILLISECOND);

    // Administratively detaching the destination must first abort the
    // migration headed there (satellite: detach_node guards in-flight
    // migrations), then leave a healthy one-node world.
    w.detach_node(n1);

    match w.migration_outcome(mig) {
        Some(MigrationOutcome::Aborted {
            reason, recovery, ..
        }) => {
            assert_eq!(reason, AbortReason::NodeDetached);
            assert_eq!(recovery, Recovery::SourceKeptRunning);
        }
        other => panic!("expected an aborted outcome, got {other:?}"),
    }
    assert_eq!(w.active_migrations(), 0);
    assert_eq!(w.host_of(zone), Some(n0));
    assert_stream_alive(
        &mut w,
        &updates_sent,
        "zone server after destination detach",
    );
}

// ---------------------------------------------------------------------
// conductor recovery: retry with backoff, blacklist, completion
// ---------------------------------------------------------------------

/// A synthetic CPU hog for load-balancing tests.
struct Hog {
    share: f64,
}

impl App for Hog {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.set_cpu_share(self.share);
        ctx.touch_memory(1);
    }
    fn tick_period_us(&self) -> u64 {
        200 * MILLISECOND
    }
}

#[test]
fn fault_conductor_retries_with_backoff_until_complete() {
    let mut w = World::new(WorldConfig {
        seed: 0xfa09,
        ..WorldConfig::default()
    });
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();

    let mut pids = Vec::new();
    for i in 0..6 {
        pids.push(w.spawn_process(n0, &format!("hog{i}"), 8, 32, Box::new(Hog { share: 15.0 })));
    }
    w.spawn_process(n1, "small", 8, 32, Box::new(Hog { share: 10.0 }));

    w.run_for(300 * MILLISECOND);
    w.enable_load_balancing();

    // Wait for the conductor on the overloaded node to start a migration,
    // then stall it: the orchestration deadline aborts the transfer.
    let mut started = None;
    for _ in 0..200 {
        w.run_for(100 * MILLISECOND);
        if let Some((pid, mig)) = pids
            .iter()
            .find_map(|p| w.migration_of(*p).map(|m| (*p, m)))
        {
            started = Some((pid, mig));
            break;
        }
    }
    let (pid, mig) = started.expect("the conductor migrates a hog within 20 s");
    w.inject_fault(Fault::TransferStall { pid });
    assert!(
        matches!(
            w.migration_outcome(mig),
            Some(MigrationOutcome::Aborted {
                reason: AbortReason::TransferStalled,
                ..
            })
        ),
        "the stall aborted attempt #1"
    );

    // Recovery: the destination is blacklisted (30 s), the retry backs off
    // (base 2 s), waits out the embargo — n1 is the only other node — and
    // the re-attempt completes.
    w.run_for(45 * SECOND);

    let stats = w.hosts[n0].conductor.as_ref().expect("conductor").stats();
    assert!(
        stats.migrations_failed >= 1,
        "the abort was reported: {stats:?}"
    );
    assert!(stats.retries >= 1, "a retry fired: {stats:?}");
    assert!(
        stats.migrations_completed >= 1,
        "the retry eventually completed: {stats:?}"
    );
    assert_eq!(stats.migrations_abandoned, 0, "{stats:?}");
    assert!(w.reports.iter().any(|r| r.is_aborted()));
    assert!(w.reports.iter().any(|r| !r.is_aborted()));
    assert!(
        w.hosts[n1].procs.len() >= 2,
        "a hog landed on the spare node"
    );
}

#[test]
fn fault_ctrl_blackout_stalls_negotiation_without_wedging() {
    let mut w = World::new(WorldConfig {
        seed: 0xfa0a,
        ..WorldConfig::default()
    });
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    for i in 0..6 {
        w.spawn_process(n0, &format!("hog{i}"), 8, 32, Box::new(Hog { share: 15.0 }));
    }
    w.spawn_process(n1, "small", 8, 32, Box::new(Hog { share: 10.0 }));

    w.run_for(300 * MILLISECOND);
    w.enable_load_balancing();
    // The receiver goes deaf for 10 s: requests are swallowed, the sender's
    // negotiation timeout (500 ms) keeps releasing it to try again.
    w.inject_fault(Fault::CtrlBlackout {
        host: n1,
        dir: CtrlDir::Both,
        for_us: 10 * SECOND,
    });

    w.run_for(8 * SECOND);
    let stats = w.hosts[n0].conductor.as_ref().expect("conductor").stats();
    assert!(
        stats.requests_sent >= 1,
        "the sender kept negotiating: {stats:?}"
    );
    assert!(
        w.reports.is_empty(),
        "no migration can start while the receiver is dark"
    );

    // Blackout lifts; the next request is heard and the migration runs.
    w.run_for(40 * SECOND);
    assert!(
        w.reports.iter().any(|r| !r.is_aborted()),
        "a migration completed after the blackout"
    );
}

/// Directional blackout (ISSUE 7 satellite): the receiver can *hear* but
/// not *speak*. It accepts the sender's request and reserves the slot, but
/// the accept never leaves the host — the sender's negotiation timeout
/// keeps it retrying, the receiver's reservation lease expires on its own,
/// and once the blackout lifts the handshake completes. Asymmetric
/// control-plane failure must wedge neither side.
#[test]
fn fault_ctrl_blackout_outbound_only_mutes_the_receiver() {
    let mut w = World::new(WorldConfig {
        seed: 0xfa0a,
        ..WorldConfig::default()
    });
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    for i in 0..6 {
        w.spawn_process(n0, &format!("hog{i}"), 8, 32, Box::new(Hog { share: 15.0 }));
    }
    w.spawn_process(n1, "small", 8, 32, Box::new(Hog { share: 10.0 }));

    w.run_for(300 * MILLISECOND);
    w.enable_load_balancing();
    w.inject_fault(Fault::CtrlBlackout {
        host: n1,
        dir: CtrlDir::Outbound,
        for_us: 20 * SECOND,
    });

    w.run_for(18 * SECOND);
    let sender = w.hosts[n0].conductor.as_ref().expect("conductor").stats();
    assert!(
        sender.requests_sent >= 2,
        "the sender kept retrying into the silence: {sender:?}"
    );
    assert!(
        w.reports.is_empty(),
        "no transfer can start while every accept is swallowed"
    );
    let receiver = w.hosts[n1].conductor.as_ref().expect("conductor").stats();
    assert!(
        receiver.requests_accepted >= 1,
        "the receiver heard and accepted (inbound stayed open): {receiver:?}"
    );
    assert!(
        receiver.leases_expired >= 1,
        "unclaimed reservations must expire on their own: {receiver:?}"
    );

    // Voice restored: the next accept gets through and the migration runs.
    w.run_for(60 * SECOND);
    assert!(
        w.reports.iter().any(|r| !r.is_aborted()),
        "a migration completed once the receiver could speak again"
    );
}

// ---------------------------------------------------------------------
// correlated WAN loss across the freeze window
// ---------------------------------------------------------------------

#[test]
fn fault_burst_loss_during_migration_keeps_stream_and_migration_alive() {
    let (mut w, _n0, n1, ch, zone, _, updates_received) = zone_world(0xfa0b);
    // Correlated loss on the WAN access links for the whole transfer: each
    // client frame has a 2% chance of opening an 8-frame drop burst.
    w.inject_fault(Fault::DownlinkLoss {
        host: ch,
        model: LossModel::Burst { p: 0.02, burst: 8 },
        for_us: 3 * SECOND,
    });
    let mig = w
        .begin_migration(zone, n1, Strategy::IncrementalCollective)
        .unwrap();
    w.run_for(4 * SECOND);

    assert!(
        w.migration_outcome(mig).is_some_and(|o| o.is_completed()),
        "burst loss on the WAN must not kill the migration"
    );
    assert_eq!(w.host_of(zone), Some(n1));
    let report = w.reports.last().unwrap();
    assert!(!report.is_aborted());

    // The loss window is over; the swarm's streams recover on the new host.
    assert_stream_alive(&mut w, &updates_received, "swarm clients after burst loss");
}
