//! Tests of the extensions the paper names as future work (§VI-C, §VIII):
//! zone-to-zone connection migration with both endpoints moving, node
//! join during operation, and the fault-tolerance use of checkpoint/restart.

use bytes::Bytes;
use dvelm::prelude::*;
use dvelm_cluster::{App, AppCtx};
use dvelm_stack::Skb;
use std::cell::RefCell;
use std::rc::Rc;

/// A zone-server stand-in that chats with a neighbor zone over one TCP
/// connection: sends a counter every tick, records what it receives.
struct NeighborZone {
    fd: Option<Fd>,
    counter: u64,
    received: Rc<RefCell<Vec<u64>>>,
}

impl NeighborZone {
    fn new(received: Rc<RefCell<Vec<u64>>>) -> NeighborZone {
        NeighborZone {
            fd: None,
            counter: 0,
            received,
        }
    }
}

impl App for NeighborZone {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.touch_memory(8);
        if let Some(fd) = self.fd {
            self.counter += 1;
            ctx.send(fd, Bytes::from(format!("{:08}|", self.counter)));
        }
    }
    fn on_connected(&mut self, _ctx: &mut AppCtx<'_>, fd: Fd) {
        self.fd = Some(fd); // active opener
    }
    fn on_new_connection(&mut self, _ctx: &mut AppCtx<'_>, _listener: Fd, child: Fd) {
        self.fd = Some(child); // passive opener
    }
    fn on_tcp_data(&mut self, _ctx: &mut AppCtx<'_>, _fd: Fd, data: &[Skb]) {
        let mut recv = self.received.borrow_mut();
        for skb in data {
            for part in std::str::from_utf8(&skb.payload)
                .unwrap()
                .split_terminator('|')
            {
                recv.push(part.parse().unwrap());
            }
        }
    }
}

fn assert_contiguous(label: &str, seen: &[u64]) {
    assert!(!seen.is_empty(), "{label}: nothing received");
    for (i, v) in seen.iter().enumerate() {
        assert_eq!(*v, i as u64 + 1, "{label}: gap or duplicate in the stream");
    }
}

/// §VI-C future work: "local socket migration could be performed for such
/// [zone server ↔ zone server] connections as well" — including when BOTH
/// endpoints migrate, which requires the translation rules of the moving
/// process to travel with it.
#[test]
fn zone_to_zone_connection_survives_when_both_ends_migrate() {
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let n2 = w.add_server_node();
    let n3 = w.add_server_node();

    let recv_a = Rc::new(RefCell::new(Vec::new()));
    let recv_b = Rc::new(RefCell::new(Vec::new()));
    let zone_a = w.spawn_process(
        n0,
        "zone_a",
        32,
        256,
        Box::new(NeighborZone::new(recv_a.clone())),
    );
    let zone_b = w.spawn_process(
        n1,
        "zone_b",
        32,
        256,
        Box::new(NeighborZone::new(recv_b.clone())),
    );

    // B listens on its local interface; A connects in-cluster.
    let b_addr = SockAddr::new(w.hosts[n1].stack.local_ip, 7100);
    w.app_tcp_listen(n1, zone_b, b_addr);
    w.app_tcp_connect(n0, zone_a, b_addr, true);

    w.run_for(SECOND);
    let before_a = recv_a.borrow().len();
    let before_b = recv_b.borrow().len();
    assert!(before_a > 10 && before_b > 10, "neighbors are chatting");

    // Move A: node0 → node2 (B's host gets a translation rule).
    w.begin_migration(zone_a, n2, Strategy::IncrementalCollective)
        .expect("A moves");
    w.run_for(2 * SECOND);
    assert_eq!(w.host_of(zone_a), Some(n2));
    let mid_b = recv_b.borrow().len();
    assert!(mid_b > before_b + 10, "B keeps hearing A after A moved");

    // Move B too: node1 → node3. B carries its peer rule for A along, and
    // A's current host (node2, not the address-derived node0) receives the
    // rule for B.
    w.begin_migration(zone_b, n3, Strategy::IncrementalCollective)
        .expect("B moves");
    w.run_for(2 * SECOND);
    assert_eq!(w.host_of(zone_b), Some(n3));

    w.run_for(2 * SECOND);
    let after_a = recv_a.borrow().len();
    let after_b = recv_b.borrow().len();
    assert!(
        after_a > before_a + 20,
        "A keeps hearing B after both moved ({before_a} → {after_a})"
    );
    assert!(
        after_b > mid_b + 20,
        "B keeps hearing A after both moved ({mid_b} → {after_b})"
    );

    // The streams are still exactly-once, in-order counters.
    assert_contiguous("A", &recv_a.borrow());
    assert_contiguous("B", &recv_b.borrow());

    // Rule bookkeeping: each endpoint's current host holds a rule toward
    // the other; abandoned hosts hold nothing.
    assert_eq!(w.hosts[n0].stack.xlate.self_rule_count(), 0);
    assert_eq!(w.hosts[n0].stack.socket_count(), 0);
    assert_eq!(w.hosts[n1].stack.socket_count(), 0);
    assert!(
        w.hosts[n2].stack.xlate.self_rule_count() >= 1,
        "A keeps its identity on n2"
    );
    assert!(
        w.hosts[n3].stack.xlate.self_rule_count() >= 1,
        "B keeps its identity on n3"
    );
}

/// §IV: "Machines may join and leave at any time" — a node added while the
/// system runs is discovered by the conductors and used as a migration
/// target.
#[test]
fn late_joining_node_receives_load() {
    struct Hog(f64);
    impl App for Hog {
        fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.set_cpu_share(self.0);
            ctx.touch_memory(1);
        }
        fn tick_period_us(&self) -> u64 {
            200 * MILLISECOND
        }
    }

    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    // Both nodes loaded to ~95%: nobody can accept anything.
    for i in 0..6 {
        w.spawn_process(n0, &format!("hog0_{i}"), 8, 32, Box::new(Hog(15.0)));
        w.spawn_process(n1, &format!("hog1_{i}"), 8, 32, Box::new(Hog(15.0)));
    }
    w.run_for(300 * MILLISECOND);
    w.enable_load_balancing();
    w.run_for(20 * SECOND);
    assert!(w.reports.is_empty(), "no valid destination exists yet");

    // A fresh node joins mid-run.
    let n2 = w.add_server_node();
    let node2 = w.hosts[n2].stack.node;
    let mut cond = dvelm::lb::Conductor::new(node2, w.cfg.lb);
    let li = dvelm::lb::LoadInfo::new(node2, 5.0, 0, w.now());
    let effects = cond.on_start(li);
    w.hosts[n2].conductor = Some(cond);
    // Route the discovery broadcast by hand (the world API wires conductors
    // at enable time; a late join replays the same steps).
    for h in [n0, n1] {
        let from = node2;
        let msg = match effects[0] {
            dvelm::lb::LbEffect::Broadcast(m) => m,
            _ => panic!("discovery broadcasts"),
        };
        w.sched
            .schedule_after(100, dvelm_cluster::Event::LbMessage { host: h, from, msg });
    }
    w.sched
        .schedule_after(200, dvelm_cluster::Event::ConductorTick { host: n2 });

    w.run_for(30 * SECOND);
    assert!(
        !w.reports.is_empty(),
        "the joiner became a migration target"
    );
    assert!(
        !w.hosts[n2].procs.is_empty(),
        "processes moved onto the new node"
    );
}

/// §VIII: the same machinery addresses fault tolerance — checkpoint, crash,
/// cold restart elsewhere. Memory survives; sockets do not (that gap is
/// what live migration closes).
#[test]
fn checkpoint_crash_cold_restart() {
    struct Worker;
    impl App for Worker {
        fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.touch_memory(16);
            ctx.set_cpu_share(4.0);
        }
    }

    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let pid = w.spawn_process(n0, "worker", 64, 512, Box::new(Worker));
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 9000);
    w.app_udp_bind(n0, pid, addr);

    w.run_for(SECOND);
    let img = w.checkpoint_process(pid).expect("checkpointable");
    let hash_at_ckpt = {
        let h = w.host_of(pid).unwrap();
        w.hosts[h].procs[&pid].process.addr_space.content_hash()
    };

    // Crash: the process and its socket disappear.
    assert!(w.kill_process(pid));
    assert_eq!(w.host_of(pid), None);
    assert!(
        !w.hosts[n0].stack.is_bound(addr.ip, addr.port),
        "socket released"
    );

    // Cold restart on another node from the image.
    let pid2 = w.cold_restart(&img, n1, Box::new(Worker));
    assert_eq!(pid2, pid, "identity preserved");
    assert_eq!(w.host_of(pid), Some(n1));
    let restored_hash = w.hosts[n1].procs[&pid].process.addr_space.content_hash();
    assert_eq!(restored_hash, hash_at_ckpt, "memory restored exactly");

    // But the socket is gone — BLCR semantics; the service must rebind.
    assert_eq!(w.hosts[n1].procs[&pid].process.fds.socket_count(), 0);
    w.app_udp_bind(n1, pid, addr);
    w.run_for(SECOND);
    assert!(w.hosts[n1].stack.is_bound(addr.ip, addr.port));
}

/// §IV "machines may join and leave": drain a node gracefully and detach it;
/// every service stays up.
#[test]
fn node_drain_and_leave() {
    struct Svc;
    impl App for Svc {
        fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
            ctx.set_cpu_share(8.0);
            ctx.touch_memory(4);
        }
    }

    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let n2 = w.add_server_node();
    let mut pids = Vec::new();
    for i in 0..4 {
        let pid = w.spawn_process(n0, &format!("svc{i}"), 16, 128, Box::new(Svc));
        let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 8100 + i as u16);
        w.app_udp_bind(n0, pid, addr);
        pids.push(pid);
    }
    w.run_for(SECOND);

    let migs = w.drain_node(n0, Strategy::IncrementalCollective);
    assert_eq!(migs.len(), 4, "every process gets a migration");
    w.run_for(5 * SECOND);
    for mig in &migs {
        let outcome = w
            .migration_outcome(*mig)
            .expect("drain migration reached a terminal state");
        assert!(outcome.is_completed(), "drain must not abort: {outcome:?}");
    }
    assert!(w.hosts[n0].procs.is_empty(), "node drained");
    assert_eq!(w.hosts[n0].stack.socket_count(), 0);
    for pid in &pids {
        let h = w.host_of(*pid).expect("still alive");
        assert!(h == n1 || h == n2, "moved to a live node");
    }
    // Spread over both targets, not piled on one.
    assert!(!w.hosts[n1].procs.is_empty() && !w.hosts[n2].procs.is_empty());

    w.detach_node(n0);
    w.run_for(SECOND);
    // Broadcasts no longer reach the detached node: its rx counters freeze.
    let rx_before = w.hosts[n0].stack.stats().rx_total;
    w.run_for(2 * SECOND);
    assert_eq!(
        w.hosts[n0].stack.stats().rx_total,
        rx_before,
        "detached node hears nothing"
    );
}

/// netstat-style introspection shows migrated sockets on the new host.
#[test]
fn netstat_reflects_migration() {
    use dvelm::dve::{DbServer, ZoneServer, DB_PORT, ZONE_BASE_PORT};
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let db_host = w.add_database_host();
    let db_pid = w.spawn_process(db_host, "mysqld", 32, 64, Box::new(DbServer::new()));
    let db_addr = SockAddr::new(w.hosts[db_host].stack.local_ip, DB_PORT);
    w.app_tcp_listen(db_host, db_pid, db_addr);
    let zone = w.spawn_process(n0, "zone", 32, 256, Box::new(ZoneServer::new()));
    w.app_tcp_listen(n0, zone, SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT));
    w.app_tcp_connect(n0, zone, db_addr, true);
    w.run_for(SECOND);

    let before = w.hosts[n0].stack.netstat();
    assert!(before.contains("Listen"), "listener visible:\n{before}");
    assert!(
        before.contains("Established"),
        "db session visible:\n{before}"
    );

    w.begin_migration(zone, n1, Strategy::Collective)
        .expect("starts");
    w.run_for(2 * SECOND);
    let src_after = w.hosts[n0].stack.netstat();
    let dst_after = w.hosts[n1].stack.netstat();
    assert_eq!(
        src_after.lines().count(),
        1,
        "only the header remains on the source"
    );
    assert!(dst_after.contains("Listen") && dst_after.contains("Established"));
}
