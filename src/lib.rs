//! # dvelm — OS-level process live migration for load-balanced DVEs
//!
//! A full reproduction, as a Rust library, of *"An Efficient Process Live
//! Migration Mechanism for Load Balanced Distributed Virtual Environments"*
//! (Gerofi, Fujita, Ishikawa — IEEE CLUSTER 2010), including every substrate
//! the paper's kernel prototype relied on, rebuilt as a deterministic
//! simulation:
//!
//! | crate | role |
//! |---|---|
//! | [`dvelm_sim`] | discrete-event core: clock, events, jiffies, RNG |
//! | [`dvelm_net`] | single-IP broadcast router, in-cluster switch, links |
//! | [`dvelm_stack`] | TCP/UDP stack: ehash/bhash, 5 skb queues, netfilter, capture, translation |
//! | [`dvelm_proc`] | processes: VMAs + dirty bits, threads, fd table |
//! | [`dvelm_ckpt`] | BLCR-style checkpoint/restart + incremental updates |
//! | [`dvelm_migrate`] | **the contribution**: precopy live migration with iterative / collective / incremental-collective socket migration and packet-loss prevention |
//! | [`dvelm_lb`] | decentralized conductor middleware (4 policies, 2-phase commit) |
//! | [`dvelm_faults`] | scripted fault injection: crashes, loss bursts, partitions, control-plane chaos |
//! | [`dvelm_monitor`] | always-on invariant monitor: single ownership, no lost processes, capture budgets, epoch monotonicity |
//! | [`dvelm_cluster`] | the runtime world wiring everything together |
//! | [`dvelm_dve`] | the 10×10-zone, 10 000-client DVE workload |
//! | [`dvelm_openarena`] | the OpenArena-like FPS workload (Fig. 4) |
//! | [`dvelm_metrics`] | stats, time series, tables, ASCII charts |
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results. The
//! [`prelude`] re-exports what examples and downstream users typically need.

pub use dvelm_ckpt as ckpt;
pub use dvelm_cluster as cluster;
pub use dvelm_dve as dve;
pub use dvelm_faults as faults;
pub use dvelm_lb as lb;
pub use dvelm_metrics as metrics;
pub use dvelm_migrate as migrate;
pub use dvelm_monitor as monitor;
pub use dvelm_net as net;
pub use dvelm_openarena as openarena;
pub use dvelm_proc as proc;
pub use dvelm_sim as sim;
pub use dvelm_stack as stack;

/// The commonly used surface of the library in one import.
pub mod prelude {
    pub use dvelm_cluster::{App, AppCtx, MigrationOutcome, Recovery, World, WorldConfig};
    pub use dvelm_faults::{CtrlDir, Fault, FaultPlan, HostSet};
    pub use dvelm_lb::{Conductor, LoadInfo, PolicyConfig};
    pub use dvelm_migrate::{CostModel, MigrationReport, Strategy};
    pub use dvelm_net::{Ip, NodeId, Port, SockAddr};
    pub use dvelm_proc::{Fd, Pid, Process};
    pub use dvelm_sim::{DetRng, SimTime, JIFFY, MILLISECOND, SECOND};
    pub use dvelm_stack::udp::Datagram;
    pub use dvelm_stack::{HostStack, Segment, Skb, SockId};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let w = World::new(WorldConfig::default());
        assert_eq!(w.now(), SimTime::ZERO);
        let _ = Strategy::ALL;
    }
}
