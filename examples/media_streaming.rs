//! The paper's closing future-work perspective: multimedia streaming. A
//! streaming server pushes a continuous TCP byte stream to subscribers; we
//! live-migrate it mid-stream and measure the largest stall each subscriber
//! observes — which should be on the order of the process freeze time, not a
//! reconnect.
//!
//! ```sh
//! cargo run --release --example media_streaming
//! ```

use bytes::Bytes;
use dvelm::prelude::*;
use dvelm_stack::Skb;
use std::cell::RefCell;
use std::rc::Rc;

/// Pushes `chunk` bytes to every subscriber every tick (≈25 fps video).
struct StreamServer {
    subscribers: Vec<Fd>,
    chunk: usize,
}

impl App for StreamServer {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.touch_memory(64); // encode buffers
        let chunk = Bytes::from(vec![0xEEu8; self.chunk]);
        let subs = self.subscribers.clone();
        for fd in subs {
            ctx.send(fd, chunk.clone());
        }
    }
    fn on_new_connection(&mut self, _ctx: &mut AppCtx<'_>, _l: Fd, child: Fd) {
        self.subscribers.push(child);
    }
    fn tick_period_us(&self) -> u64 {
        40 * MILLISECOND // 25 chunks/s
    }
}

/// Records the arrival time of every chunk.
struct Viewer {
    arrivals: Rc<RefCell<Vec<SimTime>>>,
}

impl App for Viewer {
    fn on_tick(&mut self, _ctx: &mut AppCtx<'_>) {}
    fn on_tcp_data(&mut self, ctx: &mut AppCtx<'_>, _fd: Fd, _data: &[Skb]) {
        self.arrivals.borrow_mut().push(ctx.now);
    }
}

fn main() {
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();

    let server = w.spawn_process(
        n0,
        "streamd",
        128,
        2048,
        Box::new(StreamServer {
            subscribers: Vec::new(),
            chunk: 4096,
        }),
    );
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 8554);
    w.app_tcp_listen(n0, server, addr);

    let mut viewers = Vec::new();
    for _ in 0..6 {
        let ch = w.add_client_host();
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        viewers.push(arrivals.clone());
        let pid = w.spawn_process(ch, "viewer", 16, 64, Box::new(Viewer { arrivals }));
        w.app_tcp_connect(ch, pid, addr, false);
    }

    w.run_for(4 * SECOND);
    println!("streaming 4096 B chunks at 25/s to 6 viewers; migrating the server…");
    w.begin_migration(server, n1, Strategy::IncrementalCollective)
        .expect("starts");
    w.run_for(4 * SECOND);

    let report = &w.reports[0];
    println!(
        "server freeze time: {:.1} ms\n",
        report.freeze_us() as f64 / 1000.0
    );

    println!(
        "{:<9}{:>9}{:>18}{:>16}",
        "viewer", "chunks", "median gap (ms)", "worst gap (ms)"
    );
    for (i, arr) in viewers.iter().enumerate() {
        let arr = arr.borrow();
        let mut gaps: Vec<f64> = arr
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64 / 1000.0)
            .collect();
        gaps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = gaps[gaps.len() / 2];
        let worst = gaps.last().copied().unwrap_or(0.0);
        println!(
            "{:<9}{:>9}{:>18.1}{:>16.1}",
            format!("#{i}"),
            arr.len(),
            median,
            worst
        );
    }
    println!(
        "\nthe stream never reconnects: the worst inter-chunk gap is the migration freeze\n\
         plus one cadence, not a session teardown."
    );
}
