//! Compare the three socket-migration strategies (§III-C) on one workload:
//! a zone server with many live TCP connections. Prints freeze time, bytes
//! moved in each phase, and the resulting per-strategy profile (the
//! Fig. 5b/5c story in miniature).
//!
//! ```sh
//! cargo run --release --example socket_strategies [connections]
//! ```

use dvelm::dve::{run_freeze_bench, FreezeBenchConfig};
use dvelm::prelude::*;

fn main() {
    let connections: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    println!("zone server with {connections} live TCP client connections + 1 MySQL session\n");
    println!(
        "{:<24}{:>12}{:>14}{:>16}{:>14}",
        "strategy", "freeze (ms)", "precopy (KB)", "freeze socks(KB)", "reinjected"
    );
    for strategy in Strategy::ALL {
        let r = run_freeze_bench(&FreezeBenchConfig {
            connections,
            strategy,
            repetitions: 3,
            seed: 99,
            monitored: false,
        });
        let rep = r
            .reports
            .iter()
            .max_by_key(|r| r.freeze_us())
            .expect("repetitions ran");
        println!(
            "{:<24}{:>12.1}{:>14}{:>16}{:>14}",
            strategy.to_string(),
            r.worst_freeze_us as f64 / 1000.0,
            rep.precopy_bytes / 1024,
            rep.freeze_socket_bytes / 1024,
            rep.packets_reinjected,
        );
    }
    println!(
        "\niterative pays a capture round-trip and a transfer per socket; collective\n\
         aggregates them; incremental collective additionally ships socket deltas during\n\
         precopy so the freeze phase carries only what changed in the last ~20 ms."
    );
}
