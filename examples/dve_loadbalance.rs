//! The §VI-C/D experiment as an example: the 900-second DVE simulation with
//! 10 000 clients drifting toward the corners of the 10×10 zone grid, run
//! once without and once with the load-balancing middleware (Fig. 5d/5e/5f).
//!
//! ```sh
//! cargo run --release --example dve_loadbalance
//! ```

use dvelm::dve::{run_flow_sim, FlowSimConfig};

fn main() {
    println!("running the 900 s DVE simulation twice (LB off / LB on)…\n");
    let off = run_flow_sim(&FlowSimConfig {
        lb_enabled: false,
        ..FlowSimConfig::default()
    });
    let on = run_flow_sim(&FlowSimConfig {
        lb_enabled: true,
        ..FlowSimConfig::default()
    });

    println!("per-node CPU (%) at the end of the run:");
    println!("{:<8}{:>10}{:>10}", "node", "LB off", "LB on");
    for i in 0..5 {
        println!(
            "{:<8}{:>10.1}{:>10.1}",
            format!("node{}", i + 1),
            off.cpu[i].at(899.0).unwrap(),
            on.cpu[i].at(899.0).unwrap()
        );
    }

    println!("\nmean max-min CPU spread over the last 300 s:");
    println!(
        "  LB off: {:>5.1}%   (paper: node1/node5 >95%, node3/node4 <65%)",
        off.mean_spread(600.0, 900.0)
    );
    println!(
        "  LB on:  {:>5.1}%   (paper: all nodes in a narrow band)",
        on.mean_spread(600.0, 900.0)
    );

    println!("\nzone-server processes per node at the end (Fig. 5d):");
    for i in 0..5 {
        println!("  node{}: {:>3.0}", i + 1, on.procs[i].at(899.0).unwrap());
    }

    println!("\n{} live migrations were performed:", on.migrations.len());
    for m in &on.migrations {
        println!(
            "  t={:>4.0}s  zone({},{})  node{} → node{}",
            m.at_s,
            m.zone.row(),
            m.zone.col(),
            m.from + 1,
            m.to + 1
        );
    }
}
