//! The §VI-B experiment as an example: live-migrate an OpenArena-like
//! server with 24 connected clients and show that the transition is
//! transparent at the packet level (Fig. 4).
//!
//! ```sh
//! cargo run --release --example openarena_migration
//! ```

use dvelm::openarena::{migration_delay_us, run_scenario, snapshot_gaps_ms, OaScenario};
use dvelm::prelude::*;

fn main() {
    let scenario = OaScenario::default(); // 24 clients, migrate at t=5 s
    println!(
        "running: OpenArena server, {} clients, 20 snapshots/s, migration at {}…\n",
        scenario.n_clients, scenario.migrate_at
    );
    let r = run_scenario(&scenario);
    let report = r.report.expect("migration ran");

    println!("strategy:              {}", report.strategy);
    println!(
        "server freeze time:    {:.1} ms (paper: ≈20 ms)",
        report.freeze_us() as f64 / 1000.0
    );
    println!("precopy iterations:    {}", report.precopy_iterations);
    println!(
        "total migration time:  {:.0} ms",
        report.total_us() as f64 / 1000.0
    );
    println!("sockets migrated:      {}", report.sockets_migrated);
    println!("packets re-injected:   {}", report.packets_reinjected);
    println!("usercmds processed:    {}", r.server_usercmds);

    let port = Port(dvelm::openarena::apps::OA_PORT);
    if let Some(gap) = migration_delay_us(&r.packet_log, port, r.src_host, r.dst_host) {
        println!(
            "\npacket-level gap across the migration: {:.1} ms ({:.1} ms over the 50 ms cadence)",
            gap as f64 / 1000.0,
            gap as f64 / 1000.0 - 50.0
        );
    }
    let gaps = snapshot_gaps_ms(&r.packet_log, port, 10_000);
    let regular = gaps.iter().filter(|g| (**g - 50.0).abs() < 5.0).count();
    println!(
        "snapshot bursts at the regular 50 ms cadence: {regular}/{}",
        gaps.len()
    );

    // Per-client view: nobody starved.
    let migrate_s = scenario.migrate_at;
    for (i, arr) in r.client_arrivals.iter().enumerate().take(5) {
        let before = arr.iter().filter(|t| **t <= migrate_s).count();
        let after = arr.iter().filter(|t| **t > migrate_s).count();
        println!("client {i:>2}: {before} snapshots before migration, {after} after");
    }
    println!(
        "(… and {} more clients)",
        r.client_arrivals.len().saturating_sub(5)
    );
}
