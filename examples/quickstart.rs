//! Quickstart: build a two-node single-IP cluster, run a UDP game-style
//! service with a client, live-migrate the server process and print the
//! migration report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bytes::Bytes;
use dvelm::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// A tiny game server: answers every datagram with a 256-byte state update.
struct MiniServer {
    served: Rc<RefCell<u64>>,
}

impl App for MiniServer {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.touch_memory(32); // simulate world-state churn
    }
    fn on_udp_data(&mut self, ctx: &mut AppCtx<'_>, fd: Fd, dgrams: &[Datagram]) {
        for d in dgrams {
            *self.served.borrow_mut() += 1;
            ctx.send_udp_to(fd, d.from, Bytes::from(vec![0u8; 256]));
        }
    }
}

/// A client pinging the service 20 times a second.
struct MiniClient {
    server: SockAddr,
    got: Rc<RefCell<u64>>,
}

impl App for MiniClient {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        let fd = ctx.socket_fds()[0];
        ctx.send_udp_to(fd, self.server, Bytes::from_static(b"ping"));
    }
    fn on_udp_data(&mut self, _ctx: &mut AppCtx<'_>, _fd: Fd, dgrams: &[Datagram]) {
        *self.got.borrow_mut() += dgrams.len() as u64;
    }
}

fn main() {
    // A cluster of two server nodes behind the broadcast router, plus one
    // client host on the WAN side.
    let mut world = World::new(WorldConfig::default());
    let node0 = world.add_server_node();
    let node1 = world.add_server_node();
    let client_host = world.add_client_host();

    // The service: one process, one UDP socket on the shared public IP.
    let served = Rc::new(RefCell::new(0u64));
    let server_pid = world.spawn_process(
        node0,
        "mini_server",
        64,
        1024,
        Box::new(MiniServer {
            served: served.clone(),
        }),
    );
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 27960);
    world.app_udp_bind(node0, server_pid, addr);

    // The client.
    let got = Rc::new(RefCell::new(0u64));
    let client_pid = world.spawn_process(
        client_host,
        "mini_client",
        8,
        16,
        Box::new(MiniClient {
            server: addr,
            got: got.clone(),
        }),
    );
    world.app_udp_socket(client_host, client_pid, Some(addr));

    // Play for two seconds, then live-migrate the server to node1 while the
    // client keeps hammering it.
    world.run_for(2 * SECOND);
    println!("t={}  responses so far: {}", world.now(), got.borrow());

    world
        .begin_migration(server_pid, node1, Strategy::IncrementalCollective)
        .expect("migration starts");
    world.run_for(3 * SECOND);

    let report = &world.reports[0];
    println!("\nmigration report:");
    println!("  strategy            {}", report.strategy);
    println!("  precopy iterations  {}", report.precopy_iterations);
    println!("  precopy bytes       {} KB", report.precopy_bytes / 1024);
    println!("  freeze bytes        {} KB", report.freeze_bytes / 1024);
    println!("  sockets migrated    {}", report.sockets_migrated);
    println!("  packets re-injected {}", report.packets_reinjected);
    println!(
        "  process freeze time {:.1} ms",
        report.freeze_us() as f64 / 1000.0
    );

    assert_eq!(world.host_of(server_pid), Some(node1));
    println!("\nprocess now runs on node1; source node keeps no residue:");
    println!(
        "  node0 sockets: {}",
        world.hosts[node0].stack.socket_count()
    );

    world.run_for(2 * SECOND);
    println!(
        "\nt={}  responses total: {} (service never stopped)",
        world.now(),
        got.borrow()
    );
}
