//! In-cluster connection migration (§III-C, §V-D): a zone server holds a
//! MySQL session to the database host; when the zone server migrates, the
//! database host gets a translation filter and never notices the move —
//! queries keep flowing over the *same* TCP connection.
//!
//! ```sh
//! cargo run --release --example incluster_db_session
//! ```

use dvelm::dve::{DbServer, SwarmClient, ZoneServer, DB_PORT, ZONE_BASE_PORT};
use dvelm::prelude::*;

fn main() {
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let db_host = w.add_database_host();
    let client_host = w.add_client_host();

    // Database server on the local network.
    let db = DbServer::new();
    let queries = db.queries.clone();
    let db_pid = w.spawn_process(db_host, "mysqld", 256, 1024, Box::new(db));
    let db_addr = SockAddr::new(w.hosts[db_host].stack.local_ip, DB_PORT);
    w.app_tcp_listen(db_host, db_pid, db_addr);

    // Zone server on node0 with 8 clients and its database session.
    let zone_addr = SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT);
    let zone_pid = w.spawn_process(n0, "zone_serv", 128, 2048, Box::new(ZoneServer::new()));
    w.app_tcp_listen(n0, zone_pid, zone_addr);
    w.app_tcp_connect(n0, zone_pid, db_addr, true);

    let swarm_pid = w.spawn_process(
        client_host,
        "players",
        32,
        128,
        Box::new(SwarmClient::new()),
    );
    for _ in 0..8 {
        w.app_tcp_connect(client_host, swarm_pid, zone_addr, false);
    }

    w.run_for(2 * SECOND);
    let q_before = *queries.borrow();
    println!("t=2s   database queries served: {q_before}");
    assert!(q_before > 0, "the session is live");

    println!("\nmigrating zone server node0 → node1 (db session comes along)…");
    w.begin_migration(zone_pid, n1, Strategy::IncrementalCollective)
        .expect("starts");
    w.run_for(2 * SECOND);

    let report = &w.reports[0];
    println!("freeze time: {:.1} ms", report.freeze_us() as f64 / 1000.0);
    println!(
        "translation rules installed on the db host: {}",
        w.hosts[db_host].stack.xlate.len()
    );
    println!(
        "destination-side (self) rules on node1: {}",
        w.hosts[n1].stack.xlate.self_rule_count()
    );
    println!(
        "frames rewritten by the db host so far: out={} in={}",
        w.hosts[db_host].stack.xlate.stats().rewritten_out,
        w.hosts[db_host].stack.xlate.stats().rewritten_in
    );

    w.run_for(3 * SECOND);
    let q_after = *queries.borrow();
    println!("\nt≈9s   database queries served: {q_after}");
    assert!(
        q_after > q_before,
        "the same TCP session kept working after the migration"
    );
    println!("the database never noticed: same socket, same 4-tuple, zero reconnects.");
}
