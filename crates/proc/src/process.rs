//! The process: address space + threads + descriptors + signal handlers.

use crate::fdtable::FdTable;
use crate::mem::{AddressSpace, VmaKind};
use crate::thread::{Thread, ThreadState};
use dvelm_sim::DetRng;
use std::collections::BTreeMap;

/// A cluster-wide process identifier (stable across migrations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u64);

impl std::fmt::Display for Pid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Encoded size of one signal-handler record, bytes.
pub const SIGHANDLER_RECORD_LEN: u64 = 16;

/// A simulated process.
#[derive(Debug, Clone)]
pub struct Process {
    pub pid: Pid,
    pub name: String,
    pub addr_space: AddressSpace,
    pub threads: Vec<Thread>,
    pub fds: FdTable,
    /// signal number → handler address.
    pub sig_handlers: BTreeMap<u32, u64>,
    /// CPU share this process currently consumes on its node, percent of one
    /// core — the quantity the selection policy reasons about.
    pub cpu_share: f64,
}

impl Process {
    /// A process with one thread and the standard text/data/stack layout.
    pub fn new(pid: Pid, name: impl Into<String>, text_pages: usize, data_pages: usize) -> Process {
        let mut addr_space = AddressSpace::new();
        addr_space.mmap(VmaKind::Text, text_pages, pid.0 ^ 0x7e87);
        addr_space.mmap(VmaKind::Data, data_pages, pid.0 ^ 0xda7a);
        addr_space.mmap(VmaKind::Stack, 64, pid.0 ^ 0x57ac);
        let mut sig_handlers = BTreeMap::new();
        sig_handlers.insert(15, 0x4000_1000); // SIGTERM
        sig_handlers.insert(10, 0x4000_2000); // SIGUSR1: BLCR checkpoint signal
        Process {
            pid,
            name: name.into(),
            addr_space,
            threads: vec![Thread::new(1)],
            fds: FdTable::new(),
            sig_handlers,
            cpu_share: 0.0,
        }
    }

    /// Spawn an additional thread.
    pub fn spawn_thread(&mut self) -> u64 {
        let tid = self.threads.iter().map(|t| t.tid).max().unwrap_or(0) + 1;
        self.threads.push(Thread::new(tid));
        tid
    }

    /// Deliver the live-checkpoint signal to every thread (§III-A): all
    /// threads return to userspace; returns how many were pulled out of a
    /// system call.
    pub fn signal_checkpoint(&mut self) -> usize {
        let mut pulled = 0;
        for t in &mut self.threads {
            if t.state == ThreadState::InSyscall {
                pulled += 1;
            }
            t.deliver_checkpoint_signal();
        }
        pulled
    }

    /// Freeze every thread (final checkpoint step).
    pub fn freeze_all(&mut self) {
        for t in &mut self.threads {
            t.freeze();
        }
    }

    /// Resume every thread (restore, or continue-after-checkpoint).
    pub fn resume_all(&mut self) {
        for t in &mut self.threads {
            t.resume();
        }
    }

    /// Whether every thread is frozen.
    pub fn is_frozen(&self) -> bool {
        self.threads.iter().all(|t| t.state == ThreadState::Frozen)
    }

    /// Simulate one slice of application work: dirty some pages.
    pub fn do_work(&mut self, rng: &mut DetRng, pages_dirtied: usize) {
        self.addr_space.dirty_random(rng, pages_dirtied);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_process_layout() {
        let p = Process::new(Pid(1), "zone_serv0", 256, 1024);
        assert_eq!(p.addr_space.vma_count(), 3);
        assert_eq!(p.threads.len(), 1);
        assert_eq!(p.addr_space.total_pages(), 256 + 1024 + 64);
        assert!(
            p.sig_handlers.contains_key(&10),
            "checkpoint signal handler"
        );
    }

    #[test]
    fn spawn_thread_allocates_fresh_tids() {
        let mut p = Process::new(Pid(1), "p", 1, 1);
        let t2 = p.spawn_thread();
        let t3 = p.spawn_thread();
        assert_eq!((t2, t3), (2, 3));
        assert_eq!(p.threads.len(), 3);
    }

    #[test]
    fn checkpoint_signal_returns_threads_to_userspace() {
        let mut p = Process::new(Pid(1), "p", 1, 1);
        p.spawn_thread();
        p.threads[0].state = ThreadState::InSyscall;
        let pulled = p.signal_checkpoint();
        assert_eq!(pulled, 1);
        assert!(p.threads.iter().all(|t| t.state == ThreadState::Running));
    }

    #[test]
    fn freeze_and_resume_all() {
        let mut p = Process::new(Pid(1), "p", 1, 1);
        p.spawn_thread();
        p.freeze_all();
        assert!(p.is_frozen());
        p.resume_all();
        assert!(!p.is_frozen());
        assert!(p.threads.iter().all(|t| t.state == ThreadState::Running));
    }

    #[test]
    fn work_dirties_pages() {
        let mut p = Process::new(Pid(1), "p", 16, 128);
        p.addr_space.collect_dirty();
        let mut rng = DetRng::new(5);
        p.do_work(&mut rng, 50);
        assert!(p.addr_space.dirty_count() > 0);
    }
}
