//! The file-descriptor table.
//!
//! Socket migration is driven by iterating this table (§III-C): regular files
//! are re-opened on the destination (their contents are replicated or on a
//! distributed file system, §II-A), sockets go through the socket-migration
//! machinery. BLCR's original implementation simply *omitted* sockets — the
//! iterative/collective/incremental strategies are the paper's extension.

use dvelm_stack::SockId;

/// A file descriptor number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fd(pub u32);

/// What a descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdEntry {
    /// A regular file: re-opened by path and seeked on restart.
    File { path: String, offset: u64 },
    /// A socket, identified by its host-stack id (rewritten on migration).
    Socket(SockId),
}

impl FdEntry {
    /// Encoded checkpoint size of this entry, bytes (sockets are accounted
    /// separately by the socket-migration machinery).
    pub fn record_len(&self) -> u64 {
        match self {
            FdEntry::File { path, .. } => 48 + path.len() as u64,
            FdEntry::Socket(_) => 16,
        }
    }
}

/// A process's descriptor table.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    entries: Vec<Option<FdEntry>>,
}

impl FdTable {
    /// An empty table.
    pub fn new() -> FdTable {
        FdTable::default()
    }

    /// Install an entry at the lowest free descriptor.
    pub fn insert(&mut self, entry: FdEntry) -> Fd {
        for (i, slot) in self.entries.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(entry);
                return Fd(i as u32);
            }
        }
        self.entries.push(Some(entry));
        Fd((self.entries.len() - 1) as u32)
    }

    /// Install an entry at a specific descriptor number (restore path: a
    /// migrated socket is reattached "to the right file descriptor").
    /// Panics if the slot is already occupied.
    pub fn insert_at(&mut self, fd: Fd, entry: FdEntry) {
        let idx = fd.0 as usize;
        if self.entries.len() <= idx {
            self.entries.resize(idx + 1, None);
        }
        assert!(
            self.entries[idx].is_none(),
            "descriptor {fd:?} already occupied during restore"
        );
        self.entries[idx] = Some(entry);
    }

    /// Close a descriptor, returning its entry.
    pub fn close(&mut self, fd: Fd) -> Option<FdEntry> {
        self.entries.get_mut(fd.0 as usize)?.take()
    }

    /// Look up a descriptor.
    pub fn get(&self, fd: Fd) -> Option<&FdEntry> {
        self.entries.get(fd.0 as usize)?.as_ref()
    }

    /// Replace the socket id behind a descriptor (migration reattaches the
    /// restored socket "to the right file descriptor of the process").
    pub fn rewrite_socket(&mut self, fd: Fd, sock: SockId) {
        match self.entries.get_mut(fd.0 as usize) {
            Some(slot @ Some(FdEntry::Socket(_))) => *slot = Some(FdEntry::Socket(sock)),
            other => panic!("rewrite_socket on non-socket fd {fd:?}: {other:?}"),
        }
    }

    /// All open descriptors, in fd order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, &FdEntry)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|e| (Fd(i as u32), e)))
    }

    /// All socket descriptors, in fd order — the iteration order of
    /// *iterative* socket migration.
    pub fn sockets(&self) -> impl Iterator<Item = (Fd, SockId)> + '_ {
        self.iter().filter_map(|(fd, e)| match e {
            FdEntry::Socket(s) => Some((fd, *s)),
            FdEntry::File { .. } => None,
        })
    }

    /// The descriptor currently mapping to `sock`, if any.
    pub fn fd_of_socket(&self, sock: SockId) -> Option<Fd> {
        self.sockets().find(|(_, s)| *s == sock).map(|(fd, _)| fd)
    }

    /// Number of open descriptors.
    pub fn open_count(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Number of open socket descriptors.
    pub fn socket_count(&self) -> usize {
        self.sockets().count()
    }

    /// Encoded checkpoint size of the whole table (open-file records; socket
    /// payload accounted separately).
    pub fn record_len(&self) -> u64 {
        16 + self.iter().map(|(_, e)| e.record_len()).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_reuses_lowest_free_fd() {
        let mut t = FdTable::new();
        let a = t.insert(FdEntry::File {
            path: "/var/log/a".into(),
            offset: 0,
        });
        let b = t.insert(FdEntry::Socket(SockId(1)));
        assert_eq!((a, b), (Fd(0), Fd(1)));
        t.close(a);
        let c = t.insert(FdEntry::Socket(SockId(2)));
        assert_eq!(c, Fd(0), "lowest free fd reused");
        assert_eq!(t.open_count(), 2);
    }

    #[test]
    fn sockets_iterates_in_fd_order() {
        let mut t = FdTable::new();
        t.insert(FdEntry::Socket(SockId(10)));
        t.insert(FdEntry::File {
            path: "f".into(),
            offset: 0,
        });
        t.insert(FdEntry::Socket(SockId(20)));
        let socks: Vec<u64> = t.sockets().map(|(_, s)| s.0).collect();
        assert_eq!(socks, vec![10, 20]);
        assert_eq!(t.socket_count(), 2);
    }

    #[test]
    fn rewrite_socket_changes_mapping() {
        let mut t = FdTable::new();
        let fd = t.insert(FdEntry::Socket(SockId(10)));
        t.rewrite_socket(fd, SockId(99));
        assert_eq!(t.get(fd), Some(&FdEntry::Socket(SockId(99))));
        assert_eq!(t.fd_of_socket(SockId(99)), Some(fd));
        assert_eq!(t.fd_of_socket(SockId(10)), None);
    }

    #[test]
    #[should_panic(expected = "non-socket fd")]
    fn rewrite_file_fd_panics() {
        let mut t = FdTable::new();
        let fd = t.insert(FdEntry::File {
            path: "f".into(),
            offset: 0,
        });
        t.rewrite_socket(fd, SockId(1));
    }

    #[test]
    fn record_len_counts_paths() {
        let mut t = FdTable::new();
        t.insert(FdEntry::File {
            path: "abcd".into(),
            offset: 0,
        });
        t.insert(FdEntry::Socket(SockId(1)));
        assert_eq!(t.record_len(), 16 + (48 + 4) + 16);
    }
}
