//! Threads: registers, signal state and the in-syscall flag.
//!
//! The paper's live checkpoint is signal-driven (§III-A): every application
//! thread receives the checkpoint signal, returns from whatever system call
//! it was executing (releasing kernel locks, in particular the socket lock),
//! runs the handler, and synchronizes on a barrier where a leader is chosen.
//! The in-syscall flag here lets the migration engine reproduce — and, for
//! the kernel-initiated ablation, *not* reproduce — that guarantee.

/// Register file snapshot (program counter, stack pointer, GPRs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Registers {
    pub pc: u64,
    pub sp: u64,
    pub gp: [u64; 14],
}

/// Encoded size of a per-thread checkpoint record (registers, signal state,
/// tid and thread relations), bytes.
pub const THREAD_RECORD_LEN: u64 = 192;

/// Scheduling state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    Running,
    /// Blocked inside a system call.
    InSyscall,
    /// Suspended by the freeze phase.
    Frozen,
}

/// One thread of a process.
#[derive(Debug, Clone)]
pub struct Thread {
    pub tid: u64,
    pub regs: Registers,
    /// Blocked-signal mask.
    pub sigmask: u64,
    pub state: ThreadState,
}

impl Thread {
    /// A new runnable thread.
    pub fn new(tid: u64) -> Thread {
        Thread {
            tid,
            regs: Registers::default(),
            sigmask: 0,
            state: ThreadState::Running,
        }
    }

    /// Deliver the checkpoint signal: a thread blocked in a system call
    /// abandons the call and returns to userspace (§III-A's "convenient
    /// property").
    pub fn deliver_checkpoint_signal(&mut self) {
        if self.state == ThreadState::InSyscall {
            self.state = ThreadState::Running;
        }
    }

    /// Freeze for the final checkpoint step.
    pub fn freeze(&mut self) {
        self.state = ThreadState::Frozen;
    }

    /// Resume after restore (or after a checkpoint taken with
    /// `continue` semantics).
    pub fn resume(&mut self) {
        self.state = ThreadState::Running;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_pulls_thread_out_of_syscall() {
        let mut t = Thread::new(1);
        t.state = ThreadState::InSyscall;
        t.deliver_checkpoint_signal();
        assert_eq!(t.state, ThreadState::Running);
    }

    #[test]
    fn signal_leaves_running_thread_alone() {
        let mut t = Thread::new(1);
        t.deliver_checkpoint_signal();
        assert_eq!(t.state, ThreadState::Running);
    }

    #[test]
    fn freeze_resume_cycle() {
        let mut t = Thread::new(2);
        t.freeze();
        assert_eq!(t.state, ThreadState::Frozen);
        t.resume();
        assert_eq!(t.state, ThreadState::Running);
    }
}
