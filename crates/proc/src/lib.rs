//! The simulated process model.
//!
//! Provides what BLCR-style checkpoint/restart operates on (§III-A, §V-A):
//!
//! * an **address space** of `vm_area_struct`-like regions whose pages carry
//!   dirty bits — the paper tracks dirty pages via the PTE dirty bit, with
//!   the swap facility relaxed, so the tracker lives entirely "in a module"
//!   (here: in the data structure) without touching other code;
//! * **threads** with registers, signal masks and an in-syscall flag — the
//!   signal-based checkpoint notification forces every thread back to
//!   userspace, which is what guarantees sockets are unlocked at freeze time;
//! * a **file-descriptor table** mixing regular files (re-opened on restart;
//!   contents are shared/replicated per §II-A) and sockets (migrated by the
//!   mechanism in `dvelm-migrate`).
//!
//! Page *contents* are modelled as 64-bit fingerprints: transfers are
//! accounted at full page size, while restore correctness is checked by
//! fingerprint equality.

pub mod fdtable;
pub mod mem;
pub mod process;
pub mod thread;

pub use fdtable::{Fd, FdEntry, FdTable};
pub use mem::{AddressSpace, PageRef, Vma, VmaId, VmaKind, PAGE_SIZE};
pub use process::{Pid, Process};
pub use thread::{Registers, Thread, ThreadState};
