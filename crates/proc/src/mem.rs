//! The address space: VMAs, pages, dirty bits.
//!
//! Mirrors what the paper's precopy implementation tracks (§V-A):
//!
//! * **dirty pages** inside existing regions, via the PTE dirty bit — here a
//!   `dirty` flag per page, cleared when the incremental checkpointer
//!   collects the page;
//! * **changes to the address space itself** — insertions (mmap),
//!   modifications (grow/shrink) and removals (munmap) of regions, which the
//!   paper detects by diffing the live `vm_area_struct` list against a
//!   tracking list (the diffing lives in `dvelm-ckpt`; this module exposes
//!   the live list).

use dvelm_sim::DetRng;
use std::collections::BTreeMap;

/// Page size in bytes (x86-64 small pages, as on the paper's Opterons).
pub const PAGE_SIZE: u64 = 4096;

/// Identifier of a mapped region, stable across its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VmaId(pub u64);

/// What a region holds (affects which regions the workload dirties).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmaKind {
    /// Program text: read-only, never dirty after load.
    Text,
    /// Initialised data / BSS.
    Data,
    /// Heap allocations.
    Heap,
    /// Thread stacks.
    Stack,
    /// Anonymous mappings (e.g. game world state).
    Anon,
}

/// One page: content fingerprint + dirty bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Page {
    /// 64-bit stand-in for the page contents.
    pub fingerprint: u64,
    /// PTE dirty bit analogue; cleared by the incremental checkpointer.
    pub dirty: bool,
}

/// A mapped region (`vm_area_struct` analogue).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vma {
    pub id: VmaId,
    pub kind: VmaKind,
    /// Virtual start address (page aligned).
    pub start: u64,
    pub pages: Vec<Page>,
}

impl Vma {
    /// Region length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// One-past-the-end virtual address.
    pub fn end(&self) -> u64 {
        self.start + self.len_bytes()
    }
}

/// A reference to a (possibly dirty) page, as collected by the checkpointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRef {
    pub vma: VmaId,
    pub index: usize,
    pub fingerprint: u64,
}

/// A process address space.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    vmas: BTreeMap<VmaId, Vma>,
    /// Dirty pages per live region (same key set as `vmas`). Lets the
    /// checkpointer skip clean regions — and stop scanning a region once its
    /// last dirty page is found — instead of sweeping every page of every
    /// region per precopy iteration.
    dirty_counts: BTreeMap<VmaId, usize>,
    next_vma: u64,
    next_addr: u64,
    /// Total pages ever dirtied (statistics).
    pub dirtied_total: u64,
}

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace {
            vmas: BTreeMap::new(),
            dirty_counts: BTreeMap::new(),
            next_vma: 1,
            next_addr: 0x0000_5555_0000_0000,
            dirtied_total: 0,
        }
    }

    /// Map a new region of `pages` pages; contents initialised from `seed`.
    /// All pages start dirty (they have never been checkpointed).
    pub fn mmap(&mut self, kind: VmaKind, pages: usize, seed: u64) -> VmaId {
        let id = VmaId(self.next_vma);
        self.next_vma += 1;
        let start = self.next_addr;
        self.next_addr += (pages as u64 + 16) * PAGE_SIZE; // guard gap
        self.dirty_counts.insert(id, pages);
        let pages = (0..pages)
            .map(|i| Page {
                fingerprint: mix(seed, i as u64),
                dirty: true,
            })
            .collect();
        self.vmas.insert(
            id,
            Vma {
                id,
                kind,
                start,
                pages,
            },
        );
        id
    }

    /// Unmap a region.
    pub fn munmap(&mut self, id: VmaId) -> bool {
        self.dirty_counts.remove(&id);
        self.vmas.remove(&id).is_some()
    }

    /// Grow or shrink a region to `pages` pages (heap growth, stack growth).
    /// New pages start dirty.
    pub fn resize(&mut self, id: VmaId, pages: usize, seed: u64) {
        let vma = self.vmas.get_mut(&id).expect("resize of unmapped VMA");
        let count = self
            .dirty_counts
            .get_mut(&id)
            .expect("dirty count of mapped VMA");
        let old = vma.pages.len();
        if pages > old {
            vma.pages.extend((old..pages).map(|i| Page {
                fingerprint: mix(seed, i as u64),
                dirty: true,
            }));
            *count += pages - old;
        } else {
            *count -= vma.pages[pages..].iter().filter(|p| p.dirty).count();
            vma.pages.truncate(pages);
        }
    }

    /// Write to a page: new fingerprint, dirty bit set.
    pub fn write_page(&mut self, id: VmaId, index: usize) {
        let vma = self.vmas.get_mut(&id).expect("write to unmapped VMA");
        let page = &mut vma.pages[index];
        page.fingerprint = mix(page.fingerprint, 0x9E37_79B9);
        if !page.dirty {
            page.dirty = true;
            *self
                .dirty_counts
                .get_mut(&id)
                .expect("dirty count of mapped VMA") += 1;
        }
        self.dirtied_total += 1;
    }

    /// Dirty `count` randomly chosen pages of writable regions — the
    /// workload's memory activity between precopy iterations.
    pub fn dirty_random(&mut self, rng: &mut DetRng, count: usize) {
        let writable: Vec<(VmaId, usize)> = self
            .vmas
            .values()
            .filter(|v| v.kind != VmaKind::Text && !v.pages.is_empty())
            .map(|v| (v.id, v.pages.len()))
            .collect();
        if writable.is_empty() {
            return;
        }
        for _ in 0..count {
            let (id, len) = writable[rng.index(writable.len())];
            let idx = rng.index(len);
            self.write_page(id, idx);
        }
    }

    /// Collect and clear every dirty page (one precopy iteration's payload).
    /// Clean regions are skipped wholesale via the per-region dirty counts,
    /// and a region's scan stops at its last dirty page — steady-state
    /// iterations over a mostly-clean space touch almost nothing.
    pub fn collect_dirty(&mut self) -> Vec<PageRef> {
        let mut out = Vec::with_capacity(self.dirty_counts.values().sum());
        for (&id, count) in self.dirty_counts.iter_mut() {
            let mut remaining = *count;
            if remaining == 0 {
                continue;
            }
            *count = 0;
            let vma = self.vmas.get_mut(&id).expect("dirty count of mapped VMA");
            for (i, page) in vma.pages.iter_mut().enumerate() {
                if page.dirty {
                    page.dirty = false;
                    out.push(PageRef {
                        vma: id,
                        index: i,
                        fingerprint: page.fingerprint,
                    });
                    remaining -= 1;
                    if remaining == 0 {
                        break; // the rest of the region is clean
                    }
                }
            }
        }
        out
    }

    /// Count dirty pages without clearing.
    pub fn dirty_count(&self) -> usize {
        self.dirty_counts.values().sum()
    }

    /// Live regions, in id order.
    pub fn vmas(&self) -> impl Iterator<Item = &Vma> {
        self.vmas.values()
    }

    /// Look up one region.
    pub fn vma(&self, id: VmaId) -> Option<&Vma> {
        self.vmas.get(&id)
    }

    /// Number of regions.
    pub fn vma_count(&self) -> usize {
        self.vmas.len()
    }

    /// Resident size in bytes.
    pub fn rss_bytes(&self) -> u64 {
        self.vmas.values().map(Vma::len_bytes).sum()
    }

    /// Total pages mapped.
    pub fn total_pages(&self) -> usize {
        self.vmas.values().map(|v| v.pages.len()).sum()
    }

    /// Order- and content-sensitive hash of the full address space, used to
    /// verify restore fidelity.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for vma in self.vmas.values() {
            h = mix(h, vma.id.0);
            h = mix(h, vma.start);
            for p in &vma.pages {
                h = mix(h, p.fingerprint);
            }
        }
        h
    }

    /// Apply a page write received from a checkpoint stream (restore path).
    pub fn apply_page(&mut self, r: PageRef) {
        let vma = self
            .vmas
            .get_mut(&r.vma)
            .expect("apply_page to unmapped VMA");
        let page = &mut vma.pages[r.index];
        page.fingerprint = r.fingerprint;
        if page.dirty {
            page.dirty = false;
            *self
                .dirty_counts
                .get_mut(&r.vma)
                .expect("dirty count of mapped VMA") -= 1;
        }
    }

    /// Recreate a region from checkpoint metadata (restore path). Pages start
    /// zeroed and clean; contents arrive via [`apply_page`](Self::apply_page).
    pub fn install_vma(&mut self, id: VmaId, kind: VmaKind, start: u64, pages: usize) {
        self.next_vma = self.next_vma.max(id.0 + 1);
        self.dirty_counts.insert(id, 0);
        self.vmas.insert(
            id,
            Vma {
                id,
                kind,
                start,
                pages: vec![
                    Page {
                        fingerprint: 0,
                        dirty: false
                    };
                    pages
                ],
            },
        );
    }

    /// Resize during restore (VMA-diff modification record).
    pub fn restore_resize(&mut self, id: VmaId, pages: usize) {
        let vma = self
            .vmas
            .get_mut(&id)
            .expect("restore_resize of unmapped VMA");
        if pages < vma.pages.len() {
            // A shrink can discard pages that were dirty.
            *self
                .dirty_counts
                .get_mut(&id)
                .expect("dirty count of mapped VMA") -=
                vma.pages[pages..].iter().filter(|p| p.dirty).count();
        }
        vma.pages.resize(
            pages,
            Page {
                fingerprint: 0,
                dirty: false,
            },
        );
    }
}

#[inline]
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmap_pages_start_dirty() {
        let mut a = AddressSpace::new();
        let id = a.mmap(VmaKind::Heap, 10, 1);
        assert_eq!(a.dirty_count(), 10);
        assert_eq!(a.total_pages(), 10);
        assert_eq!(a.rss_bytes(), 10 * PAGE_SIZE);
        assert_eq!(a.vma(id).unwrap().pages.len(), 10);
    }

    #[test]
    fn collect_dirty_clears_bits() {
        let mut a = AddressSpace::new();
        a.mmap(VmaKind::Heap, 5, 1);
        let d = a.collect_dirty();
        assert_eq!(d.len(), 5);
        assert_eq!(a.dirty_count(), 0);
        assert!(a.collect_dirty().is_empty(), "second collect finds nothing");
    }

    #[test]
    fn write_page_sets_dirty_and_changes_fingerprint() {
        let mut a = AddressSpace::new();
        let id = a.mmap(VmaKind::Data, 3, 1);
        a.collect_dirty();
        let before = a.vma(id).unwrap().pages[1].fingerprint;
        a.write_page(id, 1);
        assert_eq!(a.dirty_count(), 1);
        assert_ne!(a.vma(id).unwrap().pages[1].fingerprint, before);
        let d = a.collect_dirty();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].index, 1);
    }

    #[test]
    fn dirty_random_skips_text() {
        let mut a = AddressSpace::new();
        let text = a.mmap(VmaKind::Text, 100, 1);
        a.mmap(VmaKind::Heap, 100, 2);
        a.collect_dirty();
        let mut rng = DetRng::new(1);
        a.dirty_random(&mut rng, 500);
        let text_dirty = a
            .vma(text)
            .unwrap()
            .pages
            .iter()
            .filter(|p| p.dirty)
            .count();
        assert_eq!(text_dirty, 0, "text pages never dirtied");
        assert!(a.dirty_count() > 0);
    }

    #[test]
    fn resize_grow_and_shrink() {
        let mut a = AddressSpace::new();
        let id = a.mmap(VmaKind::Heap, 4, 1);
        a.collect_dirty();
        a.resize(id, 8, 2);
        assert_eq!(a.vma(id).unwrap().pages.len(), 8);
        assert_eq!(a.dirty_count(), 4, "only the new pages are dirty");
        a.resize(id, 2, 0);
        assert_eq!(a.vma(id).unwrap().pages.len(), 2);
    }

    #[test]
    fn munmap_removes_region() {
        let mut a = AddressSpace::new();
        let id = a.mmap(VmaKind::Anon, 7, 1);
        assert!(a.munmap(id));
        assert!(!a.munmap(id));
        assert_eq!(a.total_pages(), 0);
    }

    #[test]
    fn vma_addresses_do_not_overlap() {
        let mut a = AddressSpace::new();
        let ids: Vec<VmaId> = (0..10).map(|i| a.mmap(VmaKind::Anon, 16, i)).collect();
        let mut ranges: Vec<(u64, u64)> = ids
            .iter()
            .map(|id| {
                let v = a.vma(*id).unwrap();
                (v.start, v.end())
            })
            .collect();
        ranges.sort_unstable();
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "overlapping VMAs: {w:?}");
        }
    }

    #[test]
    fn restore_reproduces_content_hash() {
        let mut rng = DetRng::new(9);
        let mut src = AddressSpace::new();
        for i in 0..5 {
            src.mmap(
                if i == 0 { VmaKind::Text } else { VmaKind::Heap },
                20 + i as usize,
                i,
            );
        }
        src.dirty_random(&mut rng, 200);

        // Restore: recreate regions, apply all pages.
        let mut dst = AddressSpace::new();
        for vma in src.vmas() {
            dst.install_vma(vma.id, vma.kind, vma.start, vma.pages.len());
        }
        let mut src2 = src.clone();
        for page in src2.collect_dirty() {
            dst.apply_page(page);
        }
        // Pages that were clean in src still need their content; a full
        // checkpoint ships everything:
        for vma in src.vmas() {
            for (i, p) in vma.pages.iter().enumerate() {
                dst.apply_page(PageRef {
                    vma: vma.id,
                    index: i,
                    fingerprint: p.fingerprint,
                });
            }
        }
        assert_eq!(dst.content_hash(), src.content_hash());
    }

    #[test]
    fn content_hash_detects_single_page_difference() {
        let mut a = AddressSpace::new();
        let id = a.mmap(VmaKind::Heap, 50, 3);
        let b = a.clone();
        a.write_page(id, 49);
        assert_ne!(a.content_hash(), b.content_hash());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// collect_dirty returns exactly the pages written since last collect.
        #[test]
        fn dirty_tracking_is_exact(writes in proptest::collection::vec((0usize..4, 0usize..32), 0..100)) {
            let mut a = AddressSpace::new();
            let ids: Vec<VmaId> = (0..4).map(|i| a.mmap(VmaKind::Heap, 32, i)).collect();
            a.collect_dirty();
            let mut expect = std::collections::BTreeSet::new();
            for (v, p) in &writes {
                a.write_page(ids[*v], *p);
                expect.insert((ids[*v], *p));
            }
            let got: std::collections::BTreeSet<(VmaId, usize)> =
                a.collect_dirty().into_iter().map(|r| (r.vma, r.index)).collect();
            prop_assert_eq!(got, expect);
            prop_assert_eq!(a.dirty_count(), 0);
        }

        /// Restoring all collected pages onto a fresh space reproduces the
        /// content hash, whatever the write pattern.
        #[test]
        fn full_transfer_roundtrip(seed in 0u64..1000, dirties in 0usize..300) {
            let mut rng = DetRng::new(seed);
            let mut src = AddressSpace::new();
            src.mmap(VmaKind::Heap, 64, seed);
            src.mmap(VmaKind::Stack, 16, seed + 1);
            src.dirty_random(&mut rng, dirties);
            let mut dst = AddressSpace::new();
            for vma in src.vmas() {
                dst.install_vma(vma.id, vma.kind, vma.start, vma.pages.len());
                for (i, p) in vma.pages.iter().enumerate() {
                    dst.apply_page(PageRef { vma: vma.id, index: i, fingerprint: p.fingerprint });
                }
            }
            prop_assert_eq!(dst.content_hash(), src.content_hash());
        }
    }
}
