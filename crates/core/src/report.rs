//! Per-migration measurement record — the numbers behind Fig. 4, 5b and 5c.

use crate::effect::{AbortReason, PhaseId};
use crate::strategy::Strategy;
use dvelm_proc::Pid;
use dvelm_sim::SimTime;

/// Everything measured about one migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// The migrated process.
    pub pid: Pid,
    /// Socket-migration strategy used.
    pub strategy: Strategy,
    /// Migration initiated (precopy begins; application keeps running).
    pub started_at: SimTime,
    /// Application suspended (freeze phase begins).
    pub frozen_at: SimTime,
    /// Application resumed on the destination.
    pub resumed_at: SimTime,
    /// Precopy iterations performed (including the initial full transfer).
    pub precopy_iterations: u32,
    /// Bytes shipped while the application was running.
    pub precopy_bytes: u64,
    /// of which: socket state shipped during precopy (incremental strategy).
    pub precopy_socket_bytes: u64,
    /// Bytes shipped during the freeze phase (memory + freeze records +
    /// sockets).
    pub freeze_bytes: u64,
    /// of which: socket state shipped during the freeze phase — the Fig. 5c
    /// metric.
    pub freeze_socket_bytes: u64,
    /// Sockets migrated.
    pub sockets_migrated: u32,
    /// Packets captured on the destination while the sockets were in
    /// transit, then re-injected.
    pub packets_reinjected: u64,
    /// Sockets whose backlog/prequeue were non-empty at detach. Always zero
    /// with signal-based checkpoint notification (§V-C1: every thread
    /// returns to userspace first); kernel-initiated checkpointing can catch
    /// sockets locked, forcing their parked queues into the image.
    pub parked_nonempty_sockets: u32,
    /// Protocol-phase entry instants, in order — the Fig. 3 timeline of this
    /// particular migration.
    pub phase_log: Vec<(&'static str, SimTime)>,
    /// Pages fetched on demand from the source's residual-dependency ledger
    /// after switch-over (post-copy family; zero for the paper strategies).
    pub demand_fetch_pages: u64,
    /// Bytes moved by demand fetches during `DemandResolve`.
    pub demand_fetch_bytes: u64,
    /// Pages pushed by the source's background write-back stream.
    pub writeback_pages: u64,
    /// Bytes moved by the background write-back stream.
    pub writeback_bytes: u64,
    /// `Some((phase, reason))` if the migration was aborted rather than
    /// completed; `resumed_at` then records the rollback instant, and every
    /// shipped byte counts as [`wasted_bytes`](Self::wasted_bytes).
    pub aborted: Option<(PhaseId, AbortReason)>,
}

impl MigrationReport {
    /// A zeroed report (filled in by the engine).
    pub fn new(pid: Pid, strategy: Strategy, started_at: SimTime) -> MigrationReport {
        MigrationReport {
            pid,
            strategy,
            started_at,
            frozen_at: started_at,
            resumed_at: started_at,
            precopy_iterations: 0,
            precopy_bytes: 0,
            precopy_socket_bytes: 0,
            freeze_bytes: 0,
            freeze_socket_bytes: 0,
            sockets_migrated: 0,
            packets_reinjected: 0,
            parked_nonempty_sockets: 0,
            demand_fetch_pages: 0,
            demand_fetch_bytes: 0,
            writeback_pages: 0,
            writeback_bytes: 0,
            phase_log: Vec::new(),
            aborted: None,
        }
    }

    /// Whether the migration aborted instead of completing.
    pub fn is_aborted(&self) -> bool {
        self.aborted.is_some()
    }

    /// Bytes shipped that bought nothing — the rollback cost of an aborted
    /// migration (zero for a completed one).
    pub fn wasted_bytes(&self) -> u64 {
        if self.is_aborted() {
            self.total_bytes()
        } else {
            0
        }
    }

    /// Process freeze time — the interval the application was unresponsive
    /// (the Fig. 5b metric), µs.
    pub fn freeze_us(&self) -> u64 {
        self.resumed_at.saturating_since(self.frozen_at)
    }

    /// Total migration duration (precopy + freeze), µs.
    pub fn total_us(&self) -> u64 {
        self.resumed_at.saturating_since(self.started_at)
    }

    /// All bytes moved for this migration, including post-switch-over
    /// residual traffic (zero outside the post-copy family).
    pub fn total_bytes(&self) -> u64 {
        self.precopy_bytes + self.freeze_bytes + self.residual_bytes()
    }

    /// Bytes moved after switch-over to resolve residual dependencies —
    /// demand fetches plus the background write-back stream.
    pub fn residual_bytes(&self) -> u64 {
        self.demand_fetch_bytes + self.writeback_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_intervals() {
        let mut r = MigrationReport::new(Pid(1), Strategy::Collective, SimTime::from_millis(100));
        r.frozen_at = SimTime::from_millis(700);
        r.resumed_at = SimTime::from_micros(727_500);
        assert_eq!(r.freeze_us(), 27_500);
        assert_eq!(r.total_us(), 627_500);
    }

    #[test]
    fn byte_totals() {
        let mut r = MigrationReport::new(Pid(1), Strategy::Iterative, SimTime::ZERO);
        r.precopy_bytes = 1_000;
        r.freeze_bytes = 234;
        assert_eq!(r.total_bytes(), 1_234);
    }
}
