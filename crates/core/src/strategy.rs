//! The three socket-migration strategies compared in §III-C and Fig. 5b/5c,
//! plus the restore-first family (post-copy and hybrid) that trades the
//! precopy convergence problem for residual source dependencies.

use std::fmt;

/// How sockets are checkpointed and shipped during a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The "natural way": iterate the fd table and migrate each socket
    /// one-by-one — a capture round trip and a state transfer per socket.
    /// Computation and transmission interleave, so the wire is never kept
    /// full and fixed per-message costs repeat `n` times.
    Iterative,
    /// Three-phase collective migration: (1) capture details of *all*
    /// connections in one message, (2) all socket state subtracted into one
    /// unified buffer and transferred in one go, (3) the regular fd-table
    /// iteration for everything that is not a socket.
    Collective,
    /// Collective, plus socket state is *tracked incrementally during the
    /// precopy phase*: most socket structures stop changing once the loop
    /// timeout is short, so the freeze phase ships only deltas.
    IncrementalCollective,
    /// Restore-first: switch over immediately (no precopy loop), shipping
    /// only metadata, sockets and the working set in the freeze window.
    /// Remaining pages stay authoritative on the source in a residual-
    /// dependency ledger and reach the destination via demand fetches and a
    /// background write-back stream ([`crate::PhaseId::DemandResolve`]).
    PostCopy,
    /// A bounded precopy prefix followed by a post-copy switch-over: run at
    /// most `precopy_rounds` incremental iterations (shrinking the residual
    /// set while the app runs), then detach and resolve the rest on demand.
    /// Unlike [`Strategy::PostCopy`], even `precopy_rounds = 0` ships the
    /// initial full checkpoint before switch-over, so the residual set is
    /// only the pages dirtied since that snapshot.
    Hybrid {
        /// Maximum number of incremental precopy iterations before the
        /// forced switch-over.
        precopy_rounds: u32,
    },
}

impl Strategy {
    /// All strategies, in the order the paper's figures present them.
    /// Restricted to the three paper strategies so every figure and
    /// `Strategy::ALL`-driven test keeps its byte-identical seed output;
    /// see [`Strategy::ALL_WITH_RESIDUAL`] for the full set.
    pub const ALL: [Strategy; 3] = [
        Strategy::Iterative,
        Strategy::Collective,
        Strategy::IncrementalCollective,
    ];

    /// Every strategy including the restore-first family, for matrix tests
    /// and benches that exercise residual-dependency handling.
    pub const ALL_WITH_RESIDUAL: [Strategy; 5] = [
        Strategy::Iterative,
        Strategy::Collective,
        Strategy::IncrementalCollective,
        Strategy::PostCopy,
        Strategy::Hybrid { precopy_rounds: 2 },
    ];

    /// Whether socket deltas are shipped during the precopy loop.
    pub fn tracks_sockets_in_precopy(self) -> bool {
        matches!(
            self,
            Strategy::IncrementalCollective | Strategy::Hybrid { .. }
        )
    }

    /// Whether the freeze phase ships sockets in one aggregated buffer.
    pub fn is_collective(self) -> bool {
        !matches!(self, Strategy::Iterative)
    }

    /// Whether the strategy resolves residual pages after switch-over
    /// (post-copy family): the source keeps a residual-dependency ledger and
    /// the migration passes through `DemandResolve` before completing.
    pub fn has_demand_resolve(self) -> bool {
        matches!(self, Strategy::PostCopy | Strategy::Hybrid { .. })
    }

    /// The bound on precopy iterations, if the strategy imposes one.
    /// `Some(0)` means no precopy at all (pure post-copy); `None` means the
    /// loop runs until the convergence threshold (the paper strategies).
    pub fn precopy_round_limit(self) -> Option<u32> {
        match self {
            Strategy::Iterative | Strategy::Collective | Strategy::IncrementalCollective => None,
            Strategy::PostCopy => Some(0),
            Strategy::Hybrid { precopy_rounds } => Some(precopy_rounds),
        }
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Iterative => write!(f, "iterative"),
            Strategy::Collective => write!(f, "collective"),
            Strategy::IncrementalCollective => write!(f, "incremental collective"),
            Strategy::PostCopy => write!(f, "post-copy"),
            Strategy::Hybrid { precopy_rounds } => write!(f, "hybrid({precopy_rounds})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(!Strategy::Iterative.is_collective());
        assert!(Strategy::Collective.is_collective());
        assert!(Strategy::IncrementalCollective.is_collective());
        assert!(Strategy::IncrementalCollective.tracks_sockets_in_precopy());
        assert!(!Strategy::Collective.tracks_sockets_in_precopy());
        assert!(Strategy::PostCopy.is_collective());
        assert!(Strategy::Hybrid { precopy_rounds: 2 }.is_collective());
        assert!(!Strategy::PostCopy.tracks_sockets_in_precopy());
        assert!(Strategy::Hybrid { precopy_rounds: 2 }.tracks_sockets_in_precopy());
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = Strategy::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["iterative", "collective", "incremental collective"]);
        assert_eq!(Strategy::PostCopy.to_string(), "post-copy");
        assert_eq!(
            Strategy::Hybrid { precopy_rounds: 3 }.to_string(),
            "hybrid(3)"
        );
    }

    #[test]
    fn residual_family() {
        for s in Strategy::ALL {
            assert!(!s.has_demand_resolve(), "{s} is a stop-and-copy strategy");
            assert_eq!(s.precopy_round_limit(), None);
        }
        assert!(Strategy::PostCopy.has_demand_resolve());
        assert_eq!(Strategy::PostCopy.precopy_round_limit(), Some(0));
        let hybrid = Strategy::Hybrid { precopy_rounds: 4 };
        assert!(hybrid.has_demand_resolve());
        assert_eq!(hybrid.precopy_round_limit(), Some(4));
        assert_eq!(Strategy::ALL_WITH_RESIDUAL.len(), 5);
        assert_eq!(&Strategy::ALL_WITH_RESIDUAL[..3], &Strategy::ALL[..]);
    }
}
