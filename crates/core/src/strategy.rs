//! The three socket-migration strategies compared in §III-C and Fig. 5b/5c.

use std::fmt;

/// How sockets are checkpointed and shipped during a migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// The "natural way": iterate the fd table and migrate each socket
    /// one-by-one — a capture round trip and a state transfer per socket.
    /// Computation and transmission interleave, so the wire is never kept
    /// full and fixed per-message costs repeat `n` times.
    Iterative,
    /// Three-phase collective migration: (1) capture details of *all*
    /// connections in one message, (2) all socket state subtracted into one
    /// unified buffer and transferred in one go, (3) the regular fd-table
    /// iteration for everything that is not a socket.
    Collective,
    /// Collective, plus socket state is *tracked incrementally during the
    /// precopy phase*: most socket structures stop changing once the loop
    /// timeout is short, so the freeze phase ships only deltas.
    IncrementalCollective,
}

impl Strategy {
    /// All strategies, in the order the paper's figures present them.
    pub const ALL: [Strategy; 3] = [
        Strategy::Iterative,
        Strategy::Collective,
        Strategy::IncrementalCollective,
    ];

    /// Whether socket deltas are shipped during the precopy loop.
    pub fn tracks_sockets_in_precopy(self) -> bool {
        matches!(self, Strategy::IncrementalCollective)
    }

    /// Whether the freeze phase ships sockets in one aggregated buffer.
    pub fn is_collective(self) -> bool {
        !matches!(self, Strategy::Iterative)
    }
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Strategy::Iterative => write!(f, "iterative"),
            Strategy::Collective => write!(f, "collective"),
            Strategy::IncrementalCollective => write!(f, "incremental collective"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(!Strategy::Iterative.is_collective());
        assert!(Strategy::Collective.is_collective());
        assert!(Strategy::IncrementalCollective.is_collective());
        assert!(Strategy::IncrementalCollective.tracks_sockets_in_precopy());
        assert!(!Strategy::Collective.tracks_sockets_in_precopy());
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = Strategy::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["iterative", "collective", "incremental collective"]);
    }
}
