//! Process live migration optimized for processes that maintain a massive
//! amount of network connections — the paper's contribution (§III, §V).
//!
//! The engine implements the precopy strategy on top of `dvelm-ckpt`
//! (incremental dirty-page + VMA-diff checkpointing in a helper loop with a
//! shrinking timeout, 20 ms freeze threshold) and extends it with:
//!
//! * **socket migration** in three variants (§III-C):
//!   [`Strategy::Iterative`] (one-by-one fd-table iteration, a capture
//!   round-trip and a transfer per socket),
//!   [`Strategy::Collective`] (three-phase: all capture details in one
//!   message → one unified state buffer → remaining fds) and
//!   [`Strategy::IncrementalCollective`] (socket deltas additionally shipped
//!   during the precopy loop, so the freeze phase carries only changes);
//! * **incoming packet-loss prevention** (§III-B): capture entries are
//!   enabled on the destination *before* the source sockets are disabled,
//!   and the captured queue is re-injected after restore;
//! * **in-cluster connection migration** (§III-C): translation rules for the
//!   peers of local connections, emitted as control messages;
//! * **TCP timestamp adjustment** (§V-C1): the source's jiffies are recorded
//!   at detach and the delta applied on restore.
//!
//! The engine is a deterministic state machine: the cluster runtime (or a
//! test harness) calls [`MigrationEngine::step`] at the instants the engine
//! requests, passing mutable access to the two host stacks and the migrating
//! process plus an [`EffectSink`]. Every cross-layer side effect — app
//! suspension, translation requests, stack effects on either host,
//! completion — arrives through that sink as a typed, ordered, timestamped
//! [`Effect`]; `dvelm_metrics::TraceRecorder` derives the
//! [`MigrationReport`] from the same stream (see the [`effect`] module).
//!
//! # Example: predicting freeze times
//!
//! ```
//! use dvelm_migrate::{predict_freeze_us, CostModel, Strategy, WorkloadProfile};
//!
//! let cost = CostModel::default();
//! let w = WorkloadProfile::zone_server(1024);
//! let iterative = predict_freeze_us(&cost, &w, Strategy::Iterative);
//! let incremental = predict_freeze_us(&cost, &w, Strategy::IncrementalCollective);
//! // The paper's headline: >1000 connections migrate in under 40 ms.
//! assert!(incremental < 40_000);
//! assert!(iterative > 3 * incremental);
//! ```

/// Timing and size models for transfer/freeze cost accounting.
pub mod cost;
/// The typed cross-layer effect stream ([`Effect`], [`AbortReason`]).
pub mod effect;
/// The migration state machine ([`MigrationEngine`]).
pub mod engine;
/// Process/socket staging snapshots the engine ships between nodes.
pub mod model;
/// Per-migration measurement results ([`MigrationReport`]).
pub mod report;
/// Socket-migration strategies (§IV: iterative, collective, incremental).
pub mod strategy;

pub use cost::CostModel;
pub use effect::{
    AbortReason, AbortRecovery, ByteClass, Effect, EffectBuf, EffectSink, MigrationAborted,
    PhaseId, Side,
};
pub use engine::{AbortIo, MigrationComplete, MigrationEngine, OverloadGuard, StepIo, StepPlan};
pub use model::{predict_freeze_us, predict_total_us, WorkloadProfile};
pub use report::MigrationReport;
pub use strategy::Strategy;
