//! The typed cross-layer effect pipeline.
//!
//! Every externally visible consequence of a migration step — suspending the
//! application, sending a translation rule to a peer, a stack effect on
//! either host, phase transitions, bytes shipped — is expressed as one
//! [`Effect`] value and delivered, in order and timestamped, through an
//! [`EffectSink`] passed to [`MigrationEngine::step`](crate::MigrationEngine::step).
//!
//! This replaces the previous design where `step` returned ad-hoc `Vec`s
//! (`xlate_requests`, `src_effects`, `dst_effects`, a `suspend_app` flag and
//! a `complete` slot) that every owner had to route by hand. An owner now
//! implements (or reuses) a single dispatcher over `Effect`, and a trace
//! consumer — `dvelm_metrics::TraceRecorder` — can derive the entire
//! [`MigrationReport`](crate::MigrationReport) plus a per-phase timeline from
//! the same stream, with no hand-maintained counters inside the engine.
//!
//! # Ordering contract
//!
//! The engine emits effects in the exact order the owner must act on them:
//!
//! * [`Effect::SuspendApp`] precedes any source-side [`Effect::Stack`]
//!   effects of the same step, so backlog processing triggered by the final
//!   checkpoint signal observes the process as already suspended;
//! * [`Effect::SendXlate`] requests precede source-side stack effects (the
//!   owner schedules rule installation one control latency later);
//! * [`Effect::Complete`] is always the final effect of a migration, after
//!   every destination-side stack effect of the restore step.
//!
//! On an abort ([`MigrationEngine::abort`](crate::MigrationEngine::abort) or
//! a failure detected inside a step) the compensating effects follow the
//! same discipline:
//!
//! * [`Effect::RevokeXlate`] requests precede [`Effect::ResumeApp`] so a
//!   peer rule removal is already in flight before the application can send
//!   again (the owner schedules removal one control latency later, like
//!   installation);
//! * [`Effect::ResumeApp`] precedes any source-side [`Effect::Stack`]
//!   effects of the rollback, mirroring [`Effect::SuspendApp`];
//! * [`Effect::Aborted`] is always the final effect of an aborted
//!   migration — a migration emits exactly one of `Complete` / `Aborted`,
//!   never both.
//!
//! Purely observational effects ([`Effect::PhaseEntered`],
//! [`Effect::InstallCapture`], [`Effect::RemoveCapture`],
//! [`Effect::Shipped`], [`Effect::SocketDetached`],
//! [`Effect::PacketReinjected`]) require no owner action; they exist for
//! the trace spine.

use crate::engine::MigrationComplete;
use dvelm_net::{NodeId, ZoneId};
use dvelm_proc::Process;
use dvelm_sim::SimTime;
use dvelm_stack::capture::CaptureKey;
use dvelm_stack::xlate::XlateRule;
use dvelm_stack::{SockId, StackEffect};

/// Which host a [`Effect::Stack`] effect applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The node the process is migrating away from.
    Src,
    /// The node the process is migrating to.
    Dst,
}

/// Classification of bytes shipped by a migration, for accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByteClass {
    /// Memory image + freeze-record bytes shipped while the app runs.
    PrecopyMem,
    /// Socket state shipped while the app runs (incremental strategy).
    PrecopySocket,
    /// Memory + freeze-record bytes shipped during the freeze phase.
    FreezeMem,
    /// Socket state shipped during the freeze phase (the Fig. 5c metric).
    FreezeSocket,
    /// Residual pages pulled on demand from the source ledger after the
    /// destination resumed (post-copy family). The app is running on the
    /// destination — these bytes do not count toward the freeze window.
    DemandFetch,
    /// Residual pages pushed by the source's background write-back stream
    /// after switch-over (post-copy family).
    WriteBack,
}

impl ByteClass {
    /// Whether the application was still running when these bytes moved.
    pub fn is_precopy(self) -> bool {
        matches!(self, ByteClass::PrecopyMem | ByteClass::PrecopySocket)
    }

    /// Whether these bytes are socket state (vs. memory/records).
    pub fn is_socket(self) -> bool {
        matches!(self, ByteClass::PrecopySocket | ByteClass::FreezeSocket)
    }

    /// Whether these bytes resolve residual dependencies after switch-over
    /// (post-copy family); never shipped by the three paper strategies.
    pub fn is_residual(self) -> bool {
        matches!(self, ByteClass::DemandFetch | ByteClass::WriteBack)
    }
}

/// Protocol phases of the migration state machine (Fig. 3), as observed on
/// the effect stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseId {
    /// Signal + full checkpoint; transfer while the app runs.
    PrecopyFull,
    /// One incremental precopy iteration (dirty pages + VMA diff).
    PrecopyIter,
    /// Freeze begins: final-checkpoint signal, capture setup, translation
    /// requests.
    FreezeCapture,
    /// Sockets detached; final memory increment + socket state shipped.
    FreezeDetach,
    /// Sockets rehashed, captured packets re-injected, threads resumed.
    Restore,
    /// Post-copy residual resolution: the process runs on the destination
    /// while the source ledger services demand fetches (priority) and a
    /// background write-back stream drains the rest.
    DemandResolve,
}

impl PhaseId {
    /// Human-readable label, stable across releases (the
    /// `MigrationReport::phase_log` vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            PhaseId::PrecopyFull => "precopy: full checkpoint",
            PhaseId::PrecopyIter => "precopy: incremental iteration",
            PhaseId::FreezeCapture => "freeze: signal + capture setup",
            PhaseId::FreezeDetach => "freeze: detach + transfer",
            PhaseId::Restore => "restore: rehash + reinject + resume",
            PhaseId::DemandResolve => "demand-resolve: fetch + write-back",
        }
    }

    /// Whether this phase is a precopy iteration (counts toward
    /// `precopy_iterations`).
    pub fn is_precopy(self) -> bool {
        matches!(self, PhaseId::PrecopyFull | PhaseId::PrecopyIter)
    }
}

/// Why a migration was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The destination node crashed mid-migration.
    DestinationCrashed,
    /// The source node crashed mid-migration.
    SourceCrashed,
    /// The transfer link partitioned or stalled past the deadline.
    TransferStalled,
    /// A capture entry could not be enabled on the destination stack.
    CaptureInstallFailed,
    /// A socket could not be installed on the destination during restore.
    RestoreFailed,
    /// The migrating process was killed while the migration was in flight.
    ProcessKilled,
    /// The source or destination node was administratively detached.
    NodeDetached,
    /// A resource budget was exhausted: the migration deadline expired or a
    /// capture queue hit a hard-fail budget. Backing off is cheaper than
    /// buffering further.
    Overloaded,
    /// The precopy loop stopped converging: the dirty-diff rate exceeded
    /// the drain rate for N consecutive rounds, so freezing would mean an
    /// unbounded freeze payload. The source keeps running instead.
    NonConverging,
    /// The destination refused to resume the process because the
    /// migration's ownership epoch is stale: its reservation lease expired
    /// or a newer epoch for the same pid was witnessed (e.g. after a
    /// partition heal). Fencing the restore is what guarantees at most one
    /// live copy per pid.
    FencedStaleEpoch,
}

impl AbortReason {
    /// Human-readable label, stable across releases.
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::DestinationCrashed => "destination crashed",
            AbortReason::SourceCrashed => "source crashed",
            AbortReason::TransferStalled => "transfer stalled",
            AbortReason::CaptureInstallFailed => "capture install failed",
            AbortReason::RestoreFailed => "restore failed",
            AbortReason::ProcessKilled => "process killed",
            AbortReason::NodeDetached => "node detached",
            AbortReason::Overloaded => "overloaded",
            AbortReason::NonConverging => "precopy not converging",
            AbortReason::FencedStaleEpoch => "fenced stale epoch",
        }
    }
}

/// What survives an aborted migration. The variants are ordered from
/// cheapest (nothing ever stopped) to total loss.
#[derive(Debug)]
pub enum AbortRecovery {
    /// Abort landed during precopy: the source copy never stopped running.
    /// Shipped state is discarded; nothing was installed anywhere.
    SourceKeptRunning,
    /// The application was suspended (freeze begun) but its sockets never
    /// left the source stack: the owner resumes the threads in place.
    ResumedOnSource,
    /// Sockets had already been detached; the process was rebuilt on the
    /// source from the captured image, its sockets reinstalled there, and
    /// captured packets re-injected. The owner re-adopts it on the source.
    RestoredOnSource(Process),
    /// The source is gone too: only the captured image survives. The owner
    /// may cold-restart it elsewhere (sockets are lost, BLCR semantics).
    ImageOnly(Process),
    /// Nothing survives (abort before any image was captured, source dead).
    Lost,
}

impl AbortRecovery {
    /// Human-readable label, stable across releases.
    pub fn label(&self) -> &'static str {
        match self {
            AbortRecovery::SourceKeptRunning => "source kept running",
            AbortRecovery::ResumedOnSource => "resumed on source",
            AbortRecovery::RestoredOnSource(_) => "restored on source",
            AbortRecovery::ImageOnly(_) => "image only",
            AbortRecovery::Lost => "lost",
        }
    }
}

/// Final result of an aborted migration, carried by [`Effect::Aborted`].
#[derive(Debug)]
pub struct MigrationAborted {
    /// The protocol phase the migration died in.
    pub phase: PhaseId,
    /// Why it was aborted.
    pub reason: AbortReason,
    /// What survived, and where.
    pub recovery: AbortRecovery,
}

/// One side effect of a migration step.
#[derive(Debug)]
pub enum Effect {
    /// The engine entered a protocol phase. Trace-only.
    PhaseEntered(PhaseId),
    /// The application must stop executing (freeze phase entered). Emitted
    /// exactly once per migration, before any same-step source stack
    /// effects; its timestamp is the report's `frozen_at`.
    SuspendApp,
    /// A capture entry was enabled on the destination stack. Trace-only
    /// (the engine enables it directly; it owns the destination stack for
    /// the duration of the step).
    InstallCapture { key: CaptureKey },
    /// Deliver a translation rule to the in-cluster peer currently owning
    /// the connection's other endpoint; installation should happen one
    /// control-message latency later.
    SendXlate { peer: NodeId, rule: XlateRule },
    /// A stack effect produced on `side` while stepping (backlog processing
    /// on the source when threads return to userspace; timer arming and
    /// ACKs from re-injected segments on the destination).
    Stack { side: Side, effect: StackEffect },
    /// A migratable socket was detached from the source stack. Trace-only.
    SocketDetached {
        /// Source-side socket id (no longer valid after restore).
        sock: SockId,
        /// Its backlog/prequeue were non-empty at detach (only possible
        /// with kernel-initiated checkpointing, §V-C1).
        parked_nonempty: bool,
    },
    /// Bytes moved between the hosts. Trace-only.
    Shipped { class: ByteClass, bytes: u64 },
    /// A destination capture queue hit its budget and shed or refused
    /// packets. Trace-only — the trace spine's view of pressure building.
    /// Never emitted under the default (unlimited) budget, so fault-free
    /// streams are unchanged.
    QueuePressure {
        /// The capture entry under pressure.
        key: CaptureKey,
        /// Packets queued after the incident.
        queued_packets: u64,
        /// Payload bytes queued after the incident.
        queued_bytes: u64,
        /// Packets shed or refused by the incident.
        shed_packets: u64,
    },
    /// One captured packet was re-injected on the destination. Trace-only.
    PacketReinjected,
    /// The migration finished. Always the last effect of a migration; its
    /// timestamp is the report's `resumed_at`. The owner moves the restored
    /// process (and its application state) to the destination node.
    Complete(MigrationComplete),
    /// Rollback: the suspended application must resume executing on the
    /// source (the counterpart of [`Effect::SuspendApp`]). Emitted at most
    /// once per migration, and only on an abort whose recovery is
    /// [`AbortRecovery::ResumedOnSource`].
    ResumeApp,
    /// Rollback: a capture entry was disabled on the destination stack
    /// (the counterpart of [`Effect::InstallCapture`]). Trace-only.
    RemoveCapture { key: CaptureKey },
    /// Rollback: ask the in-cluster peer to remove a previously delivered
    /// translation rule (the counterpart of [`Effect::SendXlate`]); removal
    /// should happen one control-message latency later.
    RevokeXlate { peer: NodeId, rule: XlateRule },
    /// The migration aborted. Always the last effect of an aborted
    /// migration (mutually exclusive with [`Effect::Complete`]); its
    /// timestamp closes the trace. The owner acts on
    /// [`MigrationAborted::recovery`].
    Aborted(MigrationAborted),
    /// `side`'s node must be added to `zone`'s interest set: under AOI
    /// routing the destination subscribes at capture setup, so it hears
    /// (and captures) the client's frames exactly as it did under full
    /// broadcast — the subscription is the multicast-era form of the
    /// paper's loss-prevention property. Emitted only for processes with
    /// registered zone interest; legacy streams are unchanged.
    Subscribe { zone: ZoneId, side: Side },
    /// Rollback/handover: `side`'s node must be dropped from `zone`'s
    /// interest set (the counterpart of [`Effect::Subscribe`]). The source
    /// unsubscribes at switch-over; an aborted migration unsubscribes the
    /// destination (and, when nothing survives, the source too) so no
    /// abort row can leak a subscription.
    Unsubscribe { zone: ZoneId, side: Side },
}

/// Consumer of the ordered, timestamped effect stream of one migration.
pub trait EffectSink {
    /// Deliver one effect, emitted at simulated time `at`.
    fn emit(&mut self, at: SimTime, effect: Effect);
}

/// Any `FnMut(SimTime, Effect)` is a sink — convenient for tests.
impl<F: FnMut(SimTime, Effect)> EffectSink for F {
    fn emit(&mut self, at: SimTime, effect: Effect) {
        self(at, effect)
    }
}

/// A `Vec`-backed sink: buffers one step's effects for later dispatch.
#[derive(Debug, Default)]
pub struct EffectBuf {
    events: Vec<(SimTime, Effect)>,
}

impl EffectBuf {
    /// An empty buffer.
    pub fn new() -> EffectBuf {
        EffectBuf::default()
    }

    /// An empty buffer reusing `storage`'s allocation (cleared first).
    /// Callers that step engines in a loop can pool the vectors returned by
    /// [`take`](Self::take) instead of allocating a fresh buffer per step.
    pub fn with_storage(mut storage: Vec<(SimTime, Effect)>) -> EffectBuf {
        storage.clear();
        EffectBuf { events: storage }
    }

    /// Number of buffered effects.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The buffered effects, in emission order.
    pub fn events(&self) -> &[(SimTime, Effect)] {
        &self.events
    }

    /// Take the buffered effects, leaving the buffer empty for reuse.
    pub fn take(&mut self) -> Vec<(SimTime, Effect)> {
        std::mem::take(&mut self.events)
    }
}

impl EffectSink for EffectBuf {
    fn emit(&mut self, at: SimTime, effect: Effect) {
        self.events.push((at, effect));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_labels_are_stable() {
        assert_eq!(PhaseId::PrecopyFull.label(), "precopy: full checkpoint");
        assert_eq!(
            PhaseId::PrecopyIter.label(),
            "precopy: incremental iteration"
        );
        assert_eq!(
            PhaseId::FreezeCapture.label(),
            "freeze: signal + capture setup"
        );
        assert_eq!(PhaseId::FreezeDetach.label(), "freeze: detach + transfer");
        assert_eq!(
            PhaseId::Restore.label(),
            "restore: rehash + reinject + resume"
        );
        assert_eq!(
            PhaseId::DemandResolve.label(),
            "demand-resolve: fetch + write-back"
        );
        assert!(PhaseId::PrecopyIter.is_precopy());
        assert!(!PhaseId::Restore.is_precopy());
        assert!(!PhaseId::DemandResolve.is_precopy());
    }

    #[test]
    fn byte_class_predicates() {
        assert!(ByteClass::PrecopyMem.is_precopy());
        assert!(!ByteClass::PrecopyMem.is_socket());
        assert!(ByteClass::FreezeSocket.is_socket());
        assert!(!ByteClass::FreezeSocket.is_precopy());
        assert!(ByteClass::DemandFetch.is_residual());
        assert!(ByteClass::WriteBack.is_residual());
        assert!(!ByteClass::DemandFetch.is_precopy());
        assert!(!ByteClass::WriteBack.is_socket());
        assert!(!ByteClass::FreezeMem.is_residual());
    }

    #[test]
    fn buf_orders_and_takes() {
        let mut buf = EffectBuf::new();
        assert!(buf.is_empty());
        buf.emit(SimTime::ZERO, Effect::PhaseEntered(PhaseId::PrecopyFull));
        buf.emit(SimTime::from_micros(5), Effect::SuspendApp);
        assert_eq!(buf.len(), 2);
        let taken = buf.take();
        assert!(buf.is_empty());
        assert!(matches!(
            taken[0],
            (SimTime::ZERO, Effect::PhaseEntered(PhaseId::PrecopyFull))
        ));
        assert!(matches!(taken[1].1, Effect::SuspendApp));
        assert_eq!(taken[1].0, SimTime::from_micros(5));
    }

    #[test]
    fn closures_are_sinks() {
        let mut n = 0u32;
        {
            let mut sink = |_at: SimTime, _e: Effect| n += 1;
            sink.emit(SimTime::ZERO, Effect::PacketReinjected);
            sink.emit(SimTime::ZERO, Effect::SuspendApp);
        }
        assert_eq!(n, 2);
    }
}
