//! Closed-form freeze-time model of the three socket-migration strategies.
//!
//! The simulation *measures* freeze times; this module *predicts* them from
//! workload parameters, making the structural argument of §III-C explicit:
//!
//! ```text
//! iterative:    T = T_mem + Σ_i (rtt + ser(b_i) + xfer(b_i) + rst(b_i))
//! collective:   T = T_mem + capture(n) + ser(B) + xfer(B) + rst(B)
//! incremental:  T = T_mem + capture(n) + ser(ΔB) + xfer(ΔB) + rst(ΔB)
//! ```
//!
//! where `b_i` is one socket's record, `B = Σ b_i`, and `ΔB` is the part of
//! `B` that changed during the last precopy window. The flow-level DVE
//! simulation uses this model for migration durations, and an integration
//! test checks the packet-level simulation stays within a factor of the
//! prediction — if the simulator and the model drift apart, one of them is
//! wrong.

use crate::cost::CostModel;
use crate::strategy::Strategy;

/// Workload parameters of a migration, as the model sees them.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadProfile {
    /// Live connections (sockets beyond listener bookkeeping).
    pub connections: u64,
    /// Mean full record size per socket, bytes (scalar block + queued skbs).
    pub socket_record_bytes: u64,
    /// Mean incremental record per socket at freeze, bytes.
    pub socket_delta_bytes: u64,
    /// Dirty memory shipped in the freeze phase, bytes (dirty rate × final
    /// precopy window).
    pub freeze_mem_bytes: u64,
}

impl WorkloadProfile {
    /// The zone-server workload of §VI-C at `n` connections, using the
    /// calibrated defaults of the packet-level simulation.
    pub fn zone_server(n: u64) -> WorkloadProfile {
        WorkloadProfile {
            connections: n,
            // ≈2 KB scalar block + a couple of in-flight 256 B updates.
            socket_record_bytes: 2048 + 2 * (68 + 256),
            // Delta header + changed scalars + one fresh skb on average.
            socket_delta_bytes: 24 + 96 + (68 + 256),
            // ~100 pages/10 ms frame × 2 frames in the 20 ms window.
            freeze_mem_bytes: 200 * 4096,
        }
    }

    /// Total socket bytes at freeze for a strategy.
    pub fn freeze_socket_bytes(&self, strategy: Strategy) -> u64 {
        let per_sock = match strategy {
            // Post-copy ships sockets whole in the switch-over window, like
            // collective; hybrid tracked them during its precopy prefix.
            Strategy::Iterative | Strategy::Collective | Strategy::PostCopy => {
                self.socket_record_bytes
            }
            Strategy::IncrementalCollective | Strategy::Hybrid { .. } => self.socket_delta_bytes,
        };
        self.connections * (per_sock + 16) // + attach record
    }
}

/// Predicted freeze time, µs.
pub fn predict_freeze_us(cost: &CostModel, w: &WorkloadProfile, strategy: Strategy) -> u64 {
    let base = cost.signal_us + 2 * cost.barrier_us;
    let mem = cost.bulk_us(w.freeze_mem_bytes + 2048 /* freeze records */);
    let socks = match strategy {
        Strategy::Iterative => {
            cost.rtt_us() + w.connections * cost.per_socket_iterative_us(w.socket_record_bytes + 16)
        }
        Strategy::Collective => {
            cost.capture_setup_us(w.connections)
                + cost.bulk_us(w.freeze_socket_bytes(Strategy::Collective))
        }
        Strategy::IncrementalCollective => {
            cost.capture_setup_us(w.connections)
                + cost.bulk_us(w.freeze_socket_bytes(Strategy::IncrementalCollective))
        }
        // The post-copy family defers every memory page to the residual
        // ledger: the switch-over window ships only sockets and metadata.
        // `mem` above still charges the freeze-record/metadata trickle but
        // not the dirty set, so subtract the deferred dirty bytes back out.
        Strategy::PostCopy | Strategy::Hybrid { .. } => {
            let socks = cost.capture_setup_us(w.connections)
                + cost.bulk_us(w.freeze_socket_bytes(strategy));
            let deferred = cost.bulk_us(w.freeze_mem_bytes + 2048) - cost.bulk_us(2048);
            return base + mem + socks - deferred;
        }
    };
    base + mem + socks
}

/// Predicted total migration duration (precopy schedule + freeze), µs.
pub fn predict_total_us(cost: &CostModel, w: &WorkloadProfile, strategy: Strategy) -> u64 {
    // The halving timeout schedule: 320+160+80+40+20 ms by default. The
    // post-copy family truncates the schedule at its round limit (zero
    // rounds for pure post-copy).
    let mut precopy = 0;
    let mut rounds = 0u32;
    let mut t = cost.initial_loop_timeout_us;
    loop {
        if strategy
            .precopy_round_limit()
            .is_some_and(|lim| rounds >= lim)
        {
            break;
        }
        precopy += t;
        rounds += 1;
        if t <= cost.freeze_threshold_us {
            break;
        }
        t = (t / 2).max(cost.freeze_threshold_us);
    }
    precopy + predict_freeze_us(cost, w, strategy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_reproduces_fig5b_ordering() {
        let cost = CostModel::default();
        for n in [16, 64, 256, 1024] {
            let w = WorkloadProfile::zone_server(n);
            let it = predict_freeze_us(&cost, &w, Strategy::Iterative);
            let co = predict_freeze_us(&cost, &w, Strategy::Collective);
            let inc = predict_freeze_us(&cost, &w, Strategy::IncrementalCollective);
            assert!(it > co, "n={n}");
            assert!(co > inc, "n={n}");
        }
    }

    #[test]
    fn model_matches_paper_bands_at_1024() {
        let cost = CostModel::default();
        let w = WorkloadProfile::zone_server(1024);
        let it = predict_freeze_us(&cost, &w, Strategy::Iterative);
        let inc = predict_freeze_us(&cost, &w, Strategy::IncrementalCollective);
        assert!((100_000..350_000).contains(&it), "iterative {it}µs");
        assert!(inc < 40_000, "incremental {inc}µs must stay under 40 ms");
    }

    #[test]
    fn iterative_is_asymptotically_linear() {
        let cost = CostModel::default();
        let f = |n| {
            predict_freeze_us(&cost, &WorkloadProfile::zone_server(n), Strategy::Iterative) as f64
        };
        let slope_lo = (f(512) - f(256)) / 256.0;
        let slope_hi = (f(1024) - f(512)) / 512.0;
        assert!(
            (slope_lo / slope_hi - 1.0).abs() < 0.05,
            "slopes diverge: {slope_lo} vs {slope_hi}"
        );
    }

    #[test]
    fn total_includes_the_timeout_schedule() {
        let cost = CostModel::default();
        let w = WorkloadProfile::zone_server(64);
        let total = predict_total_us(&cost, &w, Strategy::Collective);
        let freeze = predict_freeze_us(&cost, &w, Strategy::Collective);
        assert_eq!(total - freeze, (320 + 160 + 80 + 40 + 20) * 1000);
    }
}
