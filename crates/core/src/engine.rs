//! The live-migration state machine (Fig. 3 + §III-C).
//!
//! One [`MigrationEngine`] instance drives one migration. The owner (the
//! cluster runtime, or a test harness) calls [`step`](MigrationEngine::step)
//! whenever the engine asked to be called again; each step performs the work
//! of one protocol phase against the two host stacks and the migrating
//! process, and returns a [`StepPlan`] describing when to call back, whether
//! the application must be suspended, which translation rules to deliver to
//! peer hosts, and — on the final step — the restored process.
//!
//! Phase timeline:
//!
//! ```text
//! Start          signal; full checkpoint; transfer while app runs
//! PrecopyIter    (×k) dirty pages + VMA diff (+ socket deltas, incremental
//!                strategy); loop timeout halves; at 20 ms → freeze
//! CaptureRequest app suspended; capture entries enabled on the destination;
//!                translation requests sent to in-cluster peers
//! Detach         sockets unhashed & quiesced; final memory increment +
//!                freeze records + socket state shipped (per strategy)
//! Restore        sockets rehashed (timestamps shifted, timers restarted),
//!                fd table rewritten, captured packets re-injected, threads
//!                resumed — freeze ends
//! ```

use crate::cost::CostModel;
use crate::report::MigrationReport;
use crate::strategy::Strategy;
use dvelm_ckpt::{
    apply_update, full_checkpoint, incremental_update, restore_process, IncrementalTracker,
};
use dvelm_net::NodeId;
use dvelm_proc::{Fd, Pid, Process};
use dvelm_sim::{Jiffies, SimTime};
use dvelm_stack::capture::CaptureKey;
use dvelm_stack::xlate::{SelfXlateRule, XlateRule};
use dvelm_stack::{HostStack, SockId, Socket, StackEffect};
use std::collections::HashMap;

/// Per-socket attach record shipped in the freeze phase (fd binding), bytes.
const ATTACH_RECORD: u64 = 16;

/// Mutable world access for one engine step.
pub struct StepIo<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The source node's stack (where the process currently lives).
    pub src_stack: &'a mut HostStack,
    /// The destination node's stack.
    pub dst_stack: &'a mut HostStack,
    /// The migrating process (source copy; keeps running during precopy).
    pub proc: &'a mut Process,
}

/// What the owner must do after a step.
#[derive(Debug, Default)]
pub struct StepPlan {
    /// Call `step` again this many µs from now (`None` once done).
    pub next_step_after_us: Option<u64>,
    /// The application must stop executing (freeze phase entered).
    pub suspend_app: bool,
    /// Translation rules to deliver to in-cluster peer hosts (the owner
    /// routes them; installation should happen one control-latency later).
    pub xlate_requests: Vec<(NodeId, XlateRule)>,
    /// Stack effects produced on the destination host (timer arming,
    /// ACKs from re-injected segments).
    pub dst_effects: Vec<StackEffect>,
    /// Stack effects produced on the source host (backlog processing when
    /// the signal-based checkpoint forces threads back to userspace).
    pub src_effects: Vec<StackEffect>,
    /// Set on the final step: the restored process and the measurement
    /// report. The owner moves the process (and its application state) to
    /// the destination node.
    pub complete: Option<MigrationComplete>,
}

/// Final result of a migration.
#[derive(Debug)]
pub struct MigrationComplete {
    /// The process as restored on the destination (fd table rewritten to
    /// the new socket ids, threads resumed).
    pub process: Process,
    /// Measurements for Fig. 4 / 5b / 5c.
    pub report: MigrationReport,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Start,
    PrecopyIter,
    CaptureRequest,
    Detach,
    Restore,
    Done,
}

/// The live-migration engine.
#[derive(Debug)]
pub struct MigrationEngine {
    pub pid: Pid,
    pub src: NodeId,
    pub dst: NodeId,
    pub strategy: Strategy,
    pub cost: CostModel,
    /// Signal-based checkpoint notification (the paper's design). When
    /// false, checkpointing is kernel-initiated (as in the incremental-C/R
    /// systems the paper cites): threads are not pulled out of system
    /// calls, so sockets can reach the freeze phase locked, with non-empty
    /// backlogs/prequeues that must be shipped too.
    pub signal_based: bool,
    phase: Phase,
    tracker: IncrementalTracker,
    staged: Option<Process>,
    /// Last shipped mutation stamp per socket (incremental strategy).
    sock_stamps: HashMap<SockId, u64>,
    loop_timeout_us: u64,
    capture_keys: Vec<CaptureKey>,
    /// Sockets in flight between detach and restore, with their fds.
    in_flight: Vec<(Fd, Socket)>,
    /// Destination-side translation rules to install at restore.
    self_rules: Vec<SelfXlateRule>,
    /// Peer-side rules this process held on the source host (its view of
    /// *other* migrated endpoints), carried along so zone↔zone connections
    /// survive even when both ends migrate.
    carried_rules: Vec<XlateRule>,
    src_jiffies_at_detach: Jiffies,
    report: MigrationReport,
}

impl MigrationEngine {
    /// Prepare a migration of `pid` from `src` to `dst`.
    pub fn new(
        pid: Pid,
        src: NodeId,
        dst: NodeId,
        strategy: Strategy,
        cost: CostModel,
        started_at: SimTime,
    ) -> MigrationEngine {
        MigrationEngine {
            pid,
            src,
            dst,
            strategy,
            signal_based: true,
            loop_timeout_us: cost.initial_loop_timeout_us,
            cost,
            phase: Phase::Start,
            tracker: IncrementalTracker::new(),
            staged: None,
            sock_stamps: HashMap::new(),
            capture_keys: Vec::new(),
            in_flight: Vec::new(),
            self_rules: Vec::new(),
            carried_rules: Vec::new(),
            src_jiffies_at_detach: Jiffies(0),
            report: MigrationReport::new(pid, strategy, started_at),
        }
    }

    /// Whether the migration has completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// The report so far (complete once `is_done`).
    pub fn report(&self) -> &MigrationReport {
        &self.report
    }

    /// Execute the current phase. The owner must call this exactly when the
    /// previous plan's `next_step_after_us` elapses.
    pub fn step(&mut self, io: StepIo<'_>) -> StepPlan {
        match self.phase {
            Phase::Start => self.step_start(io),
            Phase::PrecopyIter => self.step_precopy(io),
            Phase::CaptureRequest => self.step_capture_request(io),
            Phase::Detach => self.step_detach(io),
            Phase::Restore => self.step_restore(io),
            Phase::Done => StepPlan::default(),
        }
    }

    // ------------------------------------------------------------------

    fn migratable_sockets<'a>(
        proc: &Process,
        stack: &'a HostStack,
    ) -> Vec<(Fd, SockId, &'a Socket)> {
        proc.fds
            .sockets()
            .filter_map(|(fd, sid)| stack.sock(sid).map(|s| (fd, sid, s)))
            .filter(|(_, _, s)| s.is_migratable())
            .collect()
    }

    fn step_start(&mut self, io: StepIo<'_>) -> StepPlan {
        self.report
            .phase_log
            .push(("precopy: full checkpoint", io.now));
        // Live checkpoint request: signal; all threads return to userspace
        // (guaranteeing empty backlogs/prequeues, §V-C1), then the helper
        // thread transfers the full image while the app continues.
        if self.signal_based {
            io.proc.signal_checkpoint();
        }
        let img = full_checkpoint(io.proc);
        let mut bytes = img.transfer_bytes();
        self.staged = Some(restore_process(&img));
        // Initialize the dirty/VMA tracking (clears dirty bits).
        let _ = incremental_update(&mut self.tracker, io.proc);

        // Incremental strategy: ship full socket records now, so the freeze
        // phase only carries deltas.
        if self.strategy.tracks_sockets_in_precopy() {
            for (_, sid, sock) in Self::migratable_sockets(io.proc, io.src_stack) {
                let b = sock.record_len();
                bytes += b;
                self.report.precopy_socket_bytes += b;
                self.sock_stamps.insert(sid, sock.mutation_stamp());
            }
        }

        self.report.precopy_bytes += bytes;
        self.report.precopy_iterations += 1;
        let delay =
            self.cost.signal_us + self.cost.serialize_us(bytes) + self.cost.transfer_us(bytes);
        self.phase = Phase::PrecopyIter;
        StepPlan {
            next_step_after_us: Some(self.loop_timeout_us.max(delay)),
            ..StepPlan::default()
        }
    }

    fn step_precopy(&mut self, io: StepIo<'_>) -> StepPlan {
        self.report
            .phase_log
            .push(("precopy: incremental iteration", io.now));
        let update = incremental_update(&mut self.tracker, io.proc);
        let staged = self
            .staged
            .as_mut()
            .expect("staged process exists after Start");
        apply_update(staged, &update);
        let mut bytes = update.transfer_bytes();

        if self.strategy.tracks_sockets_in_precopy() {
            for (_, sid, sock) in Self::migratable_sockets(io.proc, io.src_stack) {
                let since = self.sock_stamps.get(&sid).copied().unwrap_or(0);
                let b = if since == 0 {
                    sock.record_len()
                } else {
                    sock.delta_len(since)
                };
                bytes += b;
                self.report.precopy_socket_bytes += b;
                self.sock_stamps.insert(sid, sock.mutation_stamp());
            }
        }

        self.report.precopy_bytes += bytes;
        self.report.precopy_iterations += 1;
        let delay = self.cost.serialize_us(bytes) + self.cost.transfer_us(bytes);

        // "In each subsequent iteration the loop timeout is decreased. When
        // it reaches a threshold (currently 20 ms) it signals the
        // application threads for final checkpointing."
        self.loop_timeout_us = (self.loop_timeout_us / 2).max(self.cost.freeze_threshold_us);
        if self.loop_timeout_us <= self.cost.freeze_threshold_us {
            self.phase = Phase::CaptureRequest;
            StepPlan {
                next_step_after_us: Some(self.loop_timeout_us.max(delay)),
                ..StepPlan::default()
            }
        } else {
            StepPlan {
                next_step_after_us: Some(self.loop_timeout_us.max(delay)),
                ..StepPlan::default()
            }
        }
    }

    fn step_capture_request(&mut self, io: StepIo<'_>) -> StepPlan {
        self.report
            .phase_log
            .push(("freeze: signal + capture setup", io.now));
        // Freeze begins: signal for the final checkpoint, threads barrier.
        self.report.frozen_at = io.now;
        let mut src_effects = Vec::new();
        if self.signal_based {
            // Every thread abandons its system call and returns to
            // userspace: socket locks drop and the fast path is left, so
            // parked segments are processed *before* the state is dumped.
            io.proc.signal_checkpoint();
            let sids: Vec<SockId> = io.proc.fds.sockets().map(|(_, s)| s).collect();
            for sid in sids {
                if let Some(Socket::Tcp(t)) = io.src_stack.sock_mut(sid) {
                    t.user_locked = false;
                    t.fast_path_reader = false;
                }
                src_effects.extend(io.src_stack.set_user_locked(sid, false, io.now));
            }
        }
        io.proc.freeze_all();

        // Phase one of collective migration: collect capturing details of
        // all connections and enable them on the destination. (Also the
        // per-socket capture of the iterative strategy — its extra
        // round-trips are accounted in the detach phase.)
        let mut xlate_requests = Vec::new();
        self.capture_keys.clear();
        self.self_rules.clear();
        for (_, _, sock) in Self::migratable_sockets(io.proc, io.src_stack) {
            let local = sock.local();
            let key = match sock.remote() {
                Some(remote) => CaptureKey::connected(remote, local.port),
                None => CaptureKey::any_remote(local.port),
            };
            self.capture_keys.push(key);
            io.dst_stack.capture.enable(key, io.now);

            // In-cluster connection: the peer needs a translation rule and
            // the destination a self-rule (§III-C, §V-D).
            if let Some(remote) = sock.remote() {
                if let Some(peer_node) = remote.ip.local_host() {
                    xlate_requests.push((
                        peer_node,
                        XlateRule::new(remote, local.ip, io.dst_stack.local_ip, local.port),
                    ));
                    self.self_rules.push(SelfXlateRule {
                        sock_local: local,
                        peer: remote,
                        host_ip: io.dst_stack.local_ip,
                    });
                }
            }
        }

        let n = self.capture_keys.len() as u64;
        let setup = match self.strategy {
            // One aggregated capture message for all connections.
            Strategy::Collective | Strategy::IncrementalCollective => self.cost.capture_setup_us(n),
            // The first socket's handshake; the rest are inside the
            // per-socket detach loop.
            Strategy::Iterative => self.cost.rtt_us(),
        };
        self.phase = Phase::Detach;
        StepPlan {
            next_step_after_us: Some(self.cost.signal_us + self.cost.barrier_us + setup),
            suspend_app: true,
            xlate_requests,
            src_effects,
            ..StepPlan::default()
        }
    }

    fn step_detach(&mut self, io: StepIo<'_>) -> StepPlan {
        self.report
            .phase_log
            .push(("freeze: detach + transfer", io.now));
        // Record source jiffies for the timestamp adjustment (§V-C1).
        self.src_jiffies_at_detach = io.src_stack.jiffies(io.now);

        // Sockets in non-migratable states (mid-handshake, closing) are not
        // worth carrying: release them so the source keeps no residue. The
        // application sees them as closed after restore.
        let stale: Vec<SockId> = io
            .proc
            .fds
            .sockets()
            .filter(|(_, sid)| io.src_stack.sock(*sid).is_none_or(|s| !s.is_migratable()))
            .map(|(_, sid)| sid)
            .collect();
        for sid in stale {
            io.src_stack.release(sid);
        }

        // Disable and subtract every migratable socket, in fd order.
        let socks = Self::migratable_sockets(io.proc, io.src_stack)
            .into_iter()
            .map(|(fd, sid, _)| (fd, sid))
            .collect::<Vec<_>>();
        self.report.sockets_migrated = socks.len() as u32;

        let mut sock_bytes = 0u64;
        let mut sock_time = 0u64;
        for (fd, sid) in socks {
            let sock = io
                .src_stack
                .detach_socket(sid)
                .expect("socket listed in fd table exists");
            // Remove any destination-side rules this host held for it (no
            // residual dependencies on re-migration), and carry along its
            // view of other migrated peers.
            io.src_stack.xlate.remove_self(sock.local());
            self.carried_rules
                .extend(io.src_stack.xlate.take_rules_for(sock.local()));
            if let Socket::Tcp(t) = &sock {
                if !t.parked_queues_empty() {
                    self.report.parked_nonempty_sockets += 1;
                }
            }
            let b = match self.strategy {
                Strategy::Iterative | Strategy::Collective => sock.record_len(),
                Strategy::IncrementalCollective => {
                    let since = self.sock_stamps.get(&sid).copied().unwrap_or(0);
                    sock.delta_len(since)
                }
            } + ATTACH_RECORD;
            sock_bytes += b;
            if self.strategy == Strategy::Iterative {
                sock_time += self.cost.per_socket_iterative_us(b);
            }
            self.in_flight.push((fd, sock));
        }
        if self.strategy.is_collective() {
            sock_time = self.cost.bulk_us(sock_bytes);
        }

        // Final incremental memory step + the freeze records the leader
        // thread dumps (open-file table, thread registers, signal handlers).
        let update = incremental_update(&mut self.tracker, io.proc);
        let staged = self.staged.as_mut().expect("staged process exists");
        apply_update(staged, &update);
        let freeze = dvelm_ckpt::freeze_records(io.proc);
        let mem_bytes = update.transfer_bytes() + freeze.transfer_bytes();
        let mem_time = self.cost.bulk_us(mem_bytes);

        self.report.freeze_bytes += sock_bytes + mem_bytes;
        self.report.freeze_socket_bytes += sock_bytes;

        self.phase = Phase::Restore;
        StepPlan {
            next_step_after_us: Some(sock_time + mem_time + self.cost.barrier_us),
            ..StepPlan::default()
        }
    }

    fn step_restore(&mut self, io: StepIo<'_>) -> StepPlan {
        self.report
            .phase_log
            .push(("restore: rehash + reinject + resume", io.now));
        let mut staged = self.staged.take().expect("staged process exists");
        let mut effects = Vec::new();

        // Timestamp adjustment: difference between destination jiffies now
        // and source jiffies at checkpoint (§V-C1).
        let delta = io
            .dst_stack
            .jiffies(io.now)
            .delta(self.src_jiffies_at_detach);

        for (fd, mut sock) in self.in_flight.drain(..) {
            sock.apply_jiffies_delta(delta);
            let (sid, fx) = io.dst_stack.install_socket(sock, io.now);
            effects.extend(fx);
            // Reattach "to the right file descriptor of the process": the
            // BLCR-restored fd table has these slots empty (sockets were
            // omitted from the image).
            staged.fds.insert_at(fd, dvelm_proc::FdEntry::Socket(sid));
        }
        for rule in self.self_rules.drain(..) {
            io.dst_stack.xlate.install_self(rule);
        }
        for rule in self.carried_rules.drain(..) {
            io.dst_stack.xlate.install(rule);
        }

        // Re-inject captured packets through the okfn() path, then let the
        // process run.
        for key in self.capture_keys.drain(..) {
            for seg in io.dst_stack.capture.disable_and_drain(&key) {
                self.report.packets_reinjected += 1;
                effects.extend(io.dst_stack.reinject(seg, io.now));
            }
        }
        staged.resume_all();
        staged.cpu_share = io.proc.cpu_share;

        self.report.resumed_at = io.now;
        self.phase = Phase::Done;
        StepPlan {
            next_step_after_us: None,
            dst_effects: effects,
            complete: Some(MigrationComplete {
                process: staged,
                report: self.report.clone(),
            }),
            ..StepPlan::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dvelm_net::{Ip, SockAddr};
    use dvelm_proc::FdEntry;
    use dvelm_sim::{DetRng, MILLISECOND, SECOND};
    use dvelm_stack::TcpState;

    /// Multi-host test world that shuttles frames synchronously (zero
    /// latency) and drives the engine through its schedule.
    struct World {
        hosts: Vec<HostStack>,
        now: SimTime,
    }

    const SRC: usize = 0;
    const DST: usize = 1;
    const PEER: usize = 2; // database host
    const CLIENT: usize = 3;

    impl World {
        fn new() -> World {
            World {
                hosts: vec![
                    HostStack::server_node(NodeId(0), 1_000, 1),
                    HostStack::server_node(NodeId(1), 5_000_000, 2),
                    HostStack::server_node(NodeId(2), 77, 3),
                    HostStack::client_host(NodeId(100), 42, 4),
                ],
                now: SimTime::ZERO,
            }
        }

        fn route(&mut self, ip: Ip) -> Vec<usize> {
            if ip == Ip::CLUSTER_PUBLIC {
                // Broadcast configuration: all server nodes receive it.
                (0..3).collect()
            } else {
                self.hosts
                    .iter()
                    .position(|h| h.public_ip == ip || h.local_ip == ip)
                    .into_iter()
                    .collect()
            }
        }

        fn pump(&mut self, fx: Vec<StackEffect>) {
            let mut queue: Vec<StackEffect> = fx;
            while let Some(e) = queue.pop() {
                if let StackEffect::Tx { seg, route } = e {
                    for target in self.route(route) {
                        let fx = self.hosts[target].on_rx(seg.clone(), self.now);
                        queue.extend(fx);
                    }
                }
            }
        }

        fn send(&mut self, host: usize, sid: SockId, data: &[u8]) {
            let fx = self.hosts[host].send(sid, Bytes::copy_from_slice(data), self.now);
            self.pump(fx);
        }

        fn split(&mut self, a: usize, b: usize) -> (&mut HostStack, &mut HostStack) {
            assert!(a < b);
            let (left, right) = self.hosts.split_at_mut(b);
            (&mut left[a], &mut right[0])
        }
    }

    /// A server process on SRC with `n` client TCP connections (from the
    /// client host, via the public broadcast interface) and one in-cluster
    /// "MySQL" connection to PEER.
    fn setup(world: &mut World, n: usize) -> (Process, Vec<SockId>, SockId, SockId) {
        let mut proc = Process::new(Pid(1), "zone_serv", 64, 512);
        // Listener on the public interface.
        let laddr = SockAddr::new(Ip::CLUSTER_PUBLIC, 5000);
        let listener = world.hosts[SRC].tcp_listen(laddr).unwrap();
        proc.fds.insert(FdEntry::Socket(listener));

        // DB listener on the peer host.
        let db_addr = SockAddr::new(world.hosts[PEER].local_ip, 3306);
        world.hosts[PEER].tcp_listen(db_addr).unwrap();

        // Client connections.
        let mut client_sids = Vec::new();
        for _ in 0..n {
            let (cid, fx) = world.hosts[CLIENT].tcp_connect_public(laddr, world.now);
            world.pump(fx);
            client_sids.push(cid);
        }
        // Register the accepted children in the process fd table.
        let children: Vec<SockId> = world.hosts[SRC]
            .socket_ids()
            .into_iter()
            .filter(|s| *s != listener)
            .collect();
        assert_eq!(children.len(), n, "every client connection accepted");
        for c in &children {
            assert_eq!(
                world.hosts[SRC].sock(*c).unwrap().tcp().state,
                TcpState::Established
            );
            proc.fds.insert(FdEntry::Socket(*c));
        }

        // The MySQL session.
        let (db_sid, fx) = world.hosts[SRC].tcp_connect_local(db_addr, world.now);
        world.pump(fx);
        proc.fds.insert(FdEntry::Socket(db_sid));
        assert_eq!(
            world.hosts[SRC].sock(db_sid).unwrap().tcp().state,
            TcpState::Established
        );

        (proc, client_sids, db_sid, listener)
    }

    /// Drive a full migration; returns (report, restored process,
    /// xlate requests seen).
    fn run_migration(
        world: &mut World,
        proc: &mut Process,
        strategy: Strategy,
        mut between_steps: impl FnMut(&mut World, &mut Process, bool),
    ) -> (MigrationReport, Process, Vec<(NodeId, XlateRule)>) {
        let mut engine = MigrationEngine::new(
            proc.pid,
            NodeId(0),
            NodeId(1),
            strategy,
            CostModel::default(),
            world.now,
        );
        let mut xlates = Vec::new();
        let mut suspended = false;
        loop {
            let now = world.now;
            let (src, dst) = world.split(SRC, DST);
            let plan = engine.step(StepIo {
                now,
                src_stack: src,
                dst_stack: dst,
                proc,
            });
            if plan.suspend_app {
                suspended = true;
            }
            // Deliver translation rules to peers immediately (zero-latency
            // harness).
            for (node, rule) in &plan.xlate_requests {
                let idx = world.hosts.iter().position(|h| h.node == *node).unwrap();
                world.hosts[idx].xlate.install(*rule);
            }
            xlates.extend(plan.xlate_requests);
            let dst_fx = plan.dst_effects;
            world.pump(dst_fx);
            if let Some(complete) = plan.complete {
                return (complete.report, complete.process, xlates);
            }
            let wait = plan
                .next_step_after_us
                .expect("engine not done must reschedule");
            world.now += wait;
            between_steps(world, proc, suspended);
        }
    }

    #[test]
    fn migration_preserves_streams_end_to_end() {
        let mut world = World::new();
        let (mut proc, client_sids, _db, _l) = setup(&mut world, 4);

        // Pre-migration traffic.
        for &c in &client_sids {
            world.send(CLIENT, c, b"pre|");
        }

        let (report, restored, _) = run_migration(
            &mut world,
            &mut proc,
            Strategy::IncrementalCollective,
            |world, proc, suspended| {
                if !suspended {
                    // App keeps working during precopy.
                    let mut rng = DetRng::new(1);
                    proc.do_work(&mut rng, 5);
                    let sids = client_sids.clone();
                    for &c in &sids {
                        world.send(CLIENT, c, b"live|");
                    }
                }
            },
        );
        assert!(report.freeze_us() > 0);
        assert_eq!(report.sockets_migrated as usize, 4 + 1 + 1); // clients + listener + db

        // Post-migration traffic flows to the destination sockets.
        for &c in &client_sids {
            world.send(CLIENT, c, b"post");
        }
        let mut total = Vec::new();
        for (_, sid) in restored.fds.sockets() {
            if let Some(Socket::Tcp(t)) = world.hosts[DST].sock(sid) {
                if t.state == TcpState::Established
                    && t.remote.unwrap().ip != world.hosts[PEER].local_ip
                {
                    let got: Vec<u8> = world.hosts[DST]
                        .read_tcp(sid, world.now)
                        .iter()
                        .flat_map(|s| s.payload.to_vec())
                        .collect();
                    total.push(got);
                }
            }
        }
        assert_eq!(total.len(), 4);
        for got in total {
            let s = String::from_utf8(got).unwrap();
            assert!(s.ends_with("post"), "stream continuity broken: {s:?}");
            assert_eq!(s.matches("post").count(), 1, "no duplication: {s:?}");
        }
        // Source keeps no residue.
        assert_eq!(
            world.hosts[SRC].socket_count(),
            0,
            "no residual sockets on source"
        );
    }

    #[test]
    fn freeze_time_ordering_matches_fig5b() {
        // iterative > collective > incremental collective, at 128 conns.
        let mut freeze = Vec::new();
        for strategy in Strategy::ALL {
            let mut world = World::new();
            let (mut proc, client_sids, _db, _l) = setup(&mut world, 128);
            let (report, _, _) =
                run_migration(&mut world, &mut proc, strategy, |world, proc, suspended| {
                    if !suspended {
                        let mut rng = DetRng::new(2);
                        proc.do_work(&mut rng, 10);
                        for &c in client_sids.iter().take(16) {
                            world.send(CLIENT, c, b"tick");
                        }
                    }
                });
            freeze.push((strategy, report.freeze_us()));
        }
        assert!(
            freeze[0].1 > freeze[1].1,
            "iterative {} must exceed collective {}",
            freeze[0].1,
            freeze[1].1
        );
        assert!(
            freeze[1].1 > freeze[2].1,
            "collective {} must exceed incremental {}",
            freeze[1].1,
            freeze[2].1
        );
    }

    #[test]
    fn incremental_ships_fewer_freeze_bytes() {
        let mut bytes = Vec::new();
        for strategy in [Strategy::Collective, Strategy::IncrementalCollective] {
            let mut world = World::new();
            let (mut proc, _c, _db, _l) = setup(&mut world, 64);
            let (report, _, _) = run_migration(&mut world, &mut proc, strategy, |_, _, _| {});
            bytes.push(report.freeze_socket_bytes);
        }
        assert!(
            bytes[1] * 4 < bytes[0],
            "incremental freeze bytes {} should be ≪ collective {}",
            bytes[1],
            bytes[0]
        );
    }

    #[test]
    fn packets_during_freeze_are_captured_and_reinjected() {
        let mut world = World::new();
        let (mut proc, client_sids, _db, _l) = setup(&mut world, 2);
        let (report, restored, _) = run_migration(
            &mut world,
            &mut proc,
            Strategy::Collective,
            |world, _proc, suspended| {
                if suspended {
                    // Clients keep sending while the server is frozen.
                    let sids = client_sids.clone();
                    for &c in &sids {
                        world.send(CLIENT, c, b"blackout");
                    }
                }
            },
        );
        assert!(
            report.packets_reinjected > 0,
            "capture engaged during freeze"
        );
        // Every blackout byte arrives exactly once after restore.
        for (_, sid) in restored.fds.sockets() {
            if let Some(Socket::Tcp(t)) = world.hosts[DST].sock(sid) {
                if t.state == TcpState::Established
                    && t.remote.unwrap().ip != world.hosts[PEER].local_ip
                {
                    let got: Vec<u8> = world.hosts[DST]
                        .read_tcp(sid, world.now)
                        .iter()
                        .flat_map(|s| s.payload.to_vec())
                        .collect();
                    let s = String::from_utf8(got).unwrap();
                    assert!(!s.is_empty(), "blackout data lost");
                    assert!(
                        s.len().is_multiple_of(8)
                            && s.as_bytes().chunks(8).all(|c| c == b"blackout")
                    );
                }
            }
        }
    }

    #[test]
    fn in_cluster_connection_survives_via_translation() {
        let mut world = World::new();
        let (mut proc, _c, db_sid, _l) = setup(&mut world, 1);
        let db_child = world.hosts[PEER]
            .socket_ids()
            .into_iter()
            .next_back()
            .unwrap();
        let _ = db_sid;
        let (_report, restored, xlates) = run_migration(
            &mut world,
            &mut proc,
            Strategy::IncrementalCollective,
            |_, _, _| {},
        );
        assert_eq!(
            xlates.len(),
            1,
            "one translation request for the MySQL session"
        );
        assert_eq!(xlates[0].0, NodeId(2));

        // The migrated socket still talks to the DB transparently.
        let new_db_sid = restored
            .fds
            .sockets()
            .map(|(_, s)| s)
            .find(|s| {
                world.hosts[DST].sock(*s).is_some_and(|k| {
                    k.remote()
                        .is_some_and(|r| r.ip == world.hosts[PEER].local_ip)
                })
            })
            .expect("db socket restored");
        let fx = world.hosts[DST].send(new_db_sid, Bytes::from_static(b"INSERT"), world.now);
        world.pump(fx);
        let got: Vec<u8> = world.hosts[PEER]
            .read_tcp(db_child, world.now)
            .iter()
            .flat_map(|s| s.payload.to_vec())
            .collect();
        assert_eq!(got, b"INSERT");

        // And the reply comes back, translated.
        let fx = world.hosts[PEER].send(db_child, Bytes::from_static(b"ACK"), world.now);
        world.pump(fx);
        let got: Vec<u8> = world.hosts[DST]
            .read_tcp(new_db_sid, world.now)
            .iter()
            .flat_map(|s| s.payload.to_vec())
            .collect();
        assert_eq!(got, b"ACK");
    }

    #[test]
    fn listener_migrates_and_accepts_on_destination() {
        let mut world = World::new();
        let (mut proc, _c, _db, _l) = setup(&mut world, 1);
        let (_report, restored, _) =
            run_migration(&mut world, &mut proc, Strategy::Collective, |_, _, _| {});
        // A brand-new client connects after migration: only DST owns the
        // port now.
        let laddr = SockAddr::new(Ip::CLUSTER_PUBLIC, 5000);
        let before = world.hosts[DST].socket_count();
        let (_cid, fx) = world.hosts[CLIENT].tcp_connect_public(laddr, world.now);
        world.pump(fx);
        assert_eq!(
            world.hosts[DST].socket_count(),
            before + 1,
            "new child accepted on DST"
        );
        let _ = restored;
    }

    #[test]
    fn memory_contents_identical_after_restore() {
        let mut world = World::new();
        let (mut proc, _c, _db, _l) = setup(&mut world, 2);
        let mut rng = DetRng::new(33);
        proc.do_work(&mut rng, 400);
        let src_hash_cell = std::cell::Cell::new(0u64);
        let (_report, restored, _) = run_migration(
            &mut world,
            &mut proc,
            Strategy::IncrementalCollective,
            |_, p, suspended| {
                if !suspended {
                    let mut rng = DetRng::new(34);
                    p.do_work(&mut rng, 50);
                }
                src_hash_cell.set(p.addr_space.content_hash());
            },
        );
        assert_eq!(
            restored.addr_space.content_hash(),
            proc.addr_space.content_hash(),
            "restored memory differs from source"
        );
        assert!(!restored.is_frozen(), "threads resumed");
        assert_eq!(restored.threads.len(), proc.threads.len());
    }

    #[test]
    fn udp_socket_migrates() {
        let mut world = World::new();
        let mut proc = Process::new(Pid(2), "oa_server", 32, 128);
        let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 27960);
        let usid = world.hosts[SRC].udp_bind(addr).unwrap();
        proc.fds.insert(FdEntry::Socket(usid));
        let client_sid = world.hosts[CLIENT].udp_bind_ephemeral();

        let (report, restored, _) = run_migration(
            &mut world,
            &mut proc,
            Strategy::IncrementalCollective,
            |world, _p, _s| {
                let fx =
                    world.hosts[CLIENT].udp_send_to(client_sid, addr, Bytes::from_static(b"cmd"));
                world.pump(fx);
            },
        );
        assert_eq!(report.sockets_migrated, 1);
        let (_, new_sid) = restored.fds.sockets().next().unwrap();
        // Post-migration datagrams arrive at the destination.
        let fx = world.hosts[CLIENT].udp_send_to(client_sid, addr, Bytes::from_static(b"post"));
        world.pump(fx);
        let dgrams = world.hosts[DST].read_udp(new_sid);
        assert!(
            dgrams.iter().any(|d| &d.skb.payload[..] == b"post"),
            "datagram did not reach the migrated UDP socket"
        );
    }

    #[test]
    fn freeze_threshold_schedule() {
        // 320 → 160 → 80 → 40 → 20 ms: freeze begins on the 5th precopy
        // iteration after the full copy.
        let mut world = World::new();
        let (mut proc, _c, _db, _l) = setup(&mut world, 1);
        let (report, _, _) =
            run_migration(&mut world, &mut proc, Strategy::Collective, |_, _, _| {});
        assert_eq!(report.precopy_iterations, 1 + 4);
        // Total precopy duration ≈ sum of the timeout schedule.
        assert!(report.total_us() > 500 * MILLISECOND);
        assert!(report.total_us() < 2 * SECOND);
    }

    #[test]
    fn kernel_initiated_checkpoint_catches_locked_sockets() {
        // §III-A/§V-C ablation: with signal-based notification, a socket
        // that was user-locked when the migration started is unlocked (the
        // thread returns to userspace) and its backlog is processed before
        // the dump; with kernel-initiated checkpointing the parked queues
        // reach the freeze phase non-empty and must be shipped.
        for (signal_based, expect_parked) in [(true, 0u32), (false, 1u32)] {
            let mut world = World::new();
            let (mut proc, client_sids, _db, _l) = setup(&mut world, 2);

            // The app "holds the socket lock" on one connection; a segment
            // arrives and parks on the backlog.
            let target = proc
                .fds
                .sockets()
                .map(|(_, s)| s)
                .find(|s| {
                    world.hosts[SRC].sock(*s).is_some_and(|k| {
                        k.is_tcp()
                            && !k.is_listener()
                            && k.remote().is_some_and(|r| !r.ip.is_local())
                    })
                })
                .expect("a client connection");
            world.hosts[SRC]
                .sock_mut(target)
                .unwrap()
                .tcp_mut()
                .user_locked = true;
            world.send(CLIENT, client_sids[0], b"parked");
            world.send(CLIENT, client_sids[1], b"normal");

            let mut engine = MigrationEngine::new(
                proc.pid,
                NodeId(0),
                NodeId(1),
                Strategy::Collective,
                CostModel::default(),
                world.now,
            );
            engine.signal_based = signal_based;
            loop {
                let now = world.now;
                let (src, dst) = world.split(SRC, DST);
                let plan = engine.step(StepIo {
                    now,
                    src_stack: src,
                    dst_stack: dst,
                    proc: &mut proc,
                });
                world.pump(plan.src_effects);
                world.pump(plan.dst_effects);
                if plan.complete.is_some() {
                    break;
                }
                world.now += plan.next_step_after_us.expect("reschedules");
            }
            assert_eq!(
                engine.report().parked_nonempty_sockets,
                expect_parked,
                "signal_based={signal_based}"
            );
        }
    }

    #[test]
    fn closing_socket_is_released_not_migrated() {
        let mut world = World::new();
        let (mut proc, _client_sids, _db, _l) = setup(&mut world, 3);
        // Close one server-side client connection: it leaves Established
        // (FinWait) and becomes non-migratable.
        let victim = proc
            .fds
            .sockets()
            .map(|(_, s)| s)
            .find(|s| {
                world.hosts[SRC].sock(*s).is_some_and(|k| {
                    k.is_tcp() && !k.is_listener() && k.remote().is_some_and(|r| !r.ip.is_local())
                })
            })
            .expect("a client connection");
        let now = world.now;
        let fx = world.hosts[SRC].close(victim, now);
        world.pump(fx);

        let (report, restored, _) =
            run_migration(&mut world, &mut proc, Strategy::Collective, |_, _, _| {});
        // clients(3) - closing(1) + listener + db
        assert_eq!(report.sockets_migrated, 3 - 1 + 2);
        assert_eq!(
            world.hosts[SRC].socket_count(),
            0,
            "closing socket released, no residue"
        );
        assert_eq!(
            restored.fds.socket_count(),
            4,
            "the closing fd is not reattached"
        );
    }

    #[test]
    fn report_accounting_is_consistent() {
        let mut world = World::new();
        let (mut proc, _c, _db, _l) = setup(&mut world, 8);
        let (report, _, _) = run_migration(
            &mut world,
            &mut proc,
            Strategy::IncrementalCollective,
            |_, _, _| {},
        );
        assert!(report.precopy_bytes > 0);
        assert!(report.freeze_bytes >= report.freeze_socket_bytes);
        assert_eq!(
            report.total_bytes(),
            report.precopy_bytes + report.freeze_bytes
        );
        assert!(report.frozen_at > report.started_at);
        assert!(report.resumed_at > report.frozen_at);
        assert!(report.freeze_us() < 100 * MILLISECOND);
    }
}
