//! The live-migration state machine (Fig. 3 + §III-C).
//!
//! One [`MigrationEngine`] instance drives one migration. The owner (the
//! cluster runtime, or a test harness) calls [`step`](MigrationEngine::step)
//! whenever the engine asked to be called again, passing an [`EffectSink`];
//! each step performs the work of one protocol phase against the two host
//! stacks and the migrating process, emits every externally visible
//! consequence as an ordered, timestamped [`Effect`], and returns a
//! [`StepPlan`] saying when to call back.
//!
//! Phase timeline, with the effects each phase emits:
//!
//! ```text
//! phase            effects emitted (in order)
//! ─────            ──────────────────────────
//! Start            PhaseEntered(PrecopyFull), Shipped(PrecopyMem)
//!                  [, Shipped(PrecopySocket)…]   — signal; full checkpoint;
//!                  transfer while the app runs
//! PrecopyIter ×k   PhaseEntered(PrecopyIter), Shipped(PrecopyMem)
//!                  [, Shipped(PrecopySocket)…]   — dirty pages + VMA diff
//!                  (+ socket deltas, incremental strategy); the loop timeout
//!                  halves each iteration; at 20 ms → freeze
//! CaptureRequest   PhaseEntered(FreezeCapture), SuspendApp,
//!                  [InstallCapture…], [SendXlate…], [Stack(Src)…]
//!                  — app suspended; capture entries enabled on the
//!                  destination; translation requests for in-cluster peers
//! Detach           PhaseEntered(FreezeDetach), [SocketDetached,
//!                  Shipped(FreezeSocket)…], Shipped(FreezeMem)
//!                  — sockets unhashed & quiesced in fd order; final memory
//!                  increment + freeze records shipped (per strategy)
//! Restore          PhaseEntered(Restore), [Stack(Dst)…],
//!                  [PacketReinjected, Stack(Dst)……], Complete
//!                  — sockets rehashed (timestamps shifted, timers
//!                  restarted), fd table rewritten, captured packets
//!                  re-injected, threads resumed — freeze ends
//! DemandResolve ×k PhaseEntered(DemandResolve) once (at restore end,
//!                  when the destination resumes), then per round
//!                  [Shipped(DemandFetch)…], [Shipped(WriteBack)…],
//!                  finally Complete — post-copy family only: the source's
//!                  residual-dependency ledger services demand faults
//!                  (priority) and a background write-back stream until
//!                  every page has landed
//! ```
//!
//! An abort ([`MigrationEngine::abort`], or a capture/restore failure the
//! engine detects itself) replaces the remaining phases with compensating
//! effects, phase-dependent (§III's free-rollback property: until the
//! freeze-phase commit the source copy is still authoritative):
//!
//! ```text
//! aborted in       effects emitted (in order)
//! ──────────       ──────────────────────────
//! precopy          Aborted(SourceKeptRunning) — the app never stopped;
//!                  shipped state is discarded, nothing was installed
//! FreezeCapture    [RemoveCapture…], [RevokeXlate…], ResumeApp,
//!                  Aborted(ResumedOnSource) — captures disabled on the
//!                  destination, peer rules recalled, threads resumed on
//!                  the still-intact source sockets
//! FreezeDetach /   [RevokeXlate…], [Stack(Src)…], [RemoveCapture,
//! Restore          [PacketReinjected, Stack(Src)…]…],
//!                  Aborted(RestoredOnSource) — sockets reinstalled on the
//!                  source from the in-flight copies, captured packets
//!                  re-injected there, threads resumed
//! (source dead)    Aborted(Lost) pre-detach, Aborted(ImageOnly) after —
//!                  only the captured image survives (cold-restart fodder)
//! ```
//!
//! The engine keeps no measurement state of its own: a
//! `dvelm_metrics::TraceRecorder` consuming the same stream derives the
//! `MigrationReport` (freeze time, byte classes, phase log) from the effects
//! above. `SuspendApp`'s timestamp is `frozen_at`; `Complete`'s is
//! `resumed_at`; `Aborted`'s closes the trace of a failed migration.

use crate::cost::CostModel;
use crate::effect::{
    AbortReason, AbortRecovery, ByteClass, Effect, EffectSink, MigrationAborted, PhaseId, Side,
};
use crate::strategy::Strategy;
use dvelm_ckpt::{
    apply_update, full_checkpoint, incremental_update, restore_process, IncrementalTracker,
    IncrementalUpdate, PageRecord, VmaDiff, PAGE_RECORD_OVERHEAD,
};
use dvelm_net::{NodeId, ZoneId};
use dvelm_proc::{Fd, Pid, Process, PAGE_SIZE};
use dvelm_sim::{Jiffies, SimTime};
use dvelm_stack::capture::CaptureKey;
use dvelm_stack::xlate::{SelfXlateRule, XlateRule};
use dvelm_stack::{HostStack, SockId, Socket};
use std::collections::{BTreeMap, VecDeque};

/// Per-socket attach record shipped in the freeze phase (fd binding), bytes.
const ATTACH_RECORD: u64 = 16;

/// Transfer size of one residual page (record header + payload), bytes.
const RESIDUAL_PAGE_BYTES: u64 = PAGE_RECORD_OVERHEAD + PAGE_SIZE;

/// Demand faults serviced per demand-resolve round. The faulted-page queue
/// preempts the background write-back stream: every fault is a synchronous
/// round trip the destination is blocked on.
const DEMAND_FAULTS_PER_STEP: usize = 4;

/// Pages pushed per background write-back batch each demand-resolve round.
const WRITEBACK_BATCH_PAGES: usize = 32;

/// Mutable world access for one engine step.
pub struct StepIo<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The source node's stack (where the process currently lives).
    pub src_stack: &'a mut HostStack,
    /// The destination node's stack.
    pub dst_stack: &'a mut HostStack,
    /// The migrating process (source copy; keeps running during precopy).
    pub proc: &'a mut Process,
}

/// Mutable world access for an abort. Unlike [`StepIo`], either stack may
/// be gone (`None` signals a dead host) and the source process is not
/// touched directly — thread resumption travels through
/// [`Effect::ResumeApp`] so the owner controls tick rescheduling.
pub struct AbortIo<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The source node's stack, if that node is still alive.
    pub src_stack: Option<&'a mut HostStack>,
    /// The destination node's stack, if that node is still alive.
    pub dst_stack: Option<&'a mut HostStack>,
}

/// What the owner must do after a step. Everything else — suspension,
/// translation requests, stack effects, completion — arrives through the
/// [`EffectSink`] passed to [`MigrationEngine::step`].
#[derive(Debug, Default)]
pub struct StepPlan {
    /// Call `step` again this many µs from now (`None` once done).
    pub next_step_after_us: Option<u64>,
}

/// Overload-protection knobs for one migration. The default disables both
/// guards, reproducing the paper's (unguarded) behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadGuard {
    /// Wall-clock budget: when a precopy round begins more than this many
    /// µs after the migration started, abort with
    /// [`AbortReason::Overloaded`] instead of starting the round.
    pub deadline_us: Option<u64>,
    /// Convergence guard: abort with [`AbortReason::NonConverging`] after
    /// this many *consecutive* precopy rounds whose dirty diff failed to
    /// shrink — the dirty rate has caught up with the drain rate, so
    /// freezing would ship an ever-growing payload.
    pub max_stagnant_rounds: Option<u32>,
    /// Escalation policy: when the convergence guard fires, degrade the
    /// non-converging precopy into a hybrid switch-over (freeze now, ship
    /// metadata + sockets only, resolve the residual pages on demand —
    /// [`PhaseId::DemandResolve`]) instead of aborting. Off by default so
    /// fault-free figures stay byte-identical to the unguarded runs.
    pub escalate_nonconverging: bool,
}

impl OverloadGuard {
    /// Both guards off (the default).
    pub const DISABLED: OverloadGuard = OverloadGuard {
        deadline_us: None,
        max_stagnant_rounds: None,
        escalate_nonconverging: false,
    };
}

/// Final result of a migration, carried by [`Effect::Complete`].
#[derive(Debug)]
pub struct MigrationComplete {
    /// The process as restored on the destination (fd table rewritten to
    /// the new socket ids, threads resumed).
    pub process: Process,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Start,
    PrecopyIter,
    CaptureRequest,
    Detach,
    Restore,
    DemandResolve,
    Done,
    Aborted,
}

/// The live-migration engine.
#[derive(Debug)]
pub struct MigrationEngine {
    /// The process being migrated.
    pub pid: Pid,
    /// Source node (where the process runs when migration starts).
    pub src: NodeId,
    /// Destination node (where the process resumes).
    pub dst: NodeId,
    /// Socket-migration strategy (§IV).
    pub strategy: Strategy,
    /// Timing/size model for transfer and freeze costs.
    pub cost: CostModel,
    /// Signal-based checkpoint notification (the paper's design). When
    /// false, checkpointing is kernel-initiated (as in the incremental-C/R
    /// systems the paper cites): threads are not pulled out of system
    /// calls, so sockets can reach the freeze phase locked, with non-empty
    /// backlogs/prequeues that must be shipped too.
    pub signal_based: bool,
    phase: Phase,
    tracker: IncrementalTracker,
    staged: Option<Process>,
    /// Last shipped mutation stamp per socket (incremental strategy).
    sock_stamps: BTreeMap<SockId, u64>,
    loop_timeout_us: u64,
    capture_keys: Vec<CaptureKey>,
    /// Sockets in flight between detach and restore, with their fds.
    in_flight: Vec<(Fd, Socket)>,
    /// Destination-side translation rules to install at restore.
    self_rules: Vec<SelfXlateRule>,
    /// Peer-side rules this process held on the source host (its view of
    /// *other* migrated endpoints), carried along so zone↔zone connections
    /// survive even when both ends migrate.
    carried_rules: Vec<XlateRule>,
    /// Translation rules already sent to peers (replayed as
    /// [`Effect::RevokeXlate`] on abort).
    sent_rules: Vec<(NodeId, XlateRule)>,
    /// Self-rules the *source* held for these sockets (from an earlier
    /// migration onto it), taken at detach so restore-on-source can
    /// reinstate them.
    src_self_rules: Vec<SelfXlateRule>,
    src_jiffies_at_detach: Jiffies,
    /// Overload protection (deadline + convergence guard), off by default.
    pub guard: OverloadGuard,
    /// Ownership epoch of the conductor negotiation that started this
    /// migration; `0` means manually initiated (no negotiation, so restore
    /// fencing does not apply). See `dvelm-lb`'s epoch/lease protocol.
    pub epoch: u64,
    /// Zones the process holds interest subscriptions for (set by the
    /// owner before the first step, like `epoch`). The engine moves them
    /// with the sockets: the destination subscribes at capture setup, the
    /// source unsubscribes at switch-over, and every abort row emits the
    /// compensating [`Effect::Unsubscribe`]/[`Effect::Subscribe`] pair so
    /// no recovery outcome can leak a subscription. Empty (the default)
    /// for processes without registered zone interest — zero new effects.
    pub zones: Vec<ZoneId>,
    /// When the first step ran (the deadline's epoch).
    started_at: Option<SimTime>,
    /// Consecutive precopy rounds whose dirty diff did not shrink.
    stagnant_rounds: u32,
    /// Dirty-diff bytes of the previous precopy round.
    last_round_bytes: Option<u64>,
    /// Precopy rounds completed (bounds the hybrid prefix).
    rounds_done: u32,
    /// Residual-dependency ledger (post-copy family): pages that stayed
    /// authoritative on the source at switch-over and have not yet landed
    /// on the destination. The queue front is the next demand fault; the
    /// background write-back stream drains from the same queue behind it.
    /// Not cleared on abort — the owner reads the outstanding count to
    /// attribute residual leaks.
    residual: VecDeque<PageRecord>,
}

impl MigrationEngine {
    /// Prepare a migration of `pid` from `src` to `dst`. The engine keeps
    /// no clock of its own: the start instant belongs to the trace consumer
    /// (`dvelm_metrics::TraceRecorder::new`).
    pub fn new(
        pid: Pid,
        src: NodeId,
        dst: NodeId,
        strategy: Strategy,
        cost: CostModel,
    ) -> MigrationEngine {
        MigrationEngine {
            pid,
            src,
            dst,
            strategy,
            signal_based: true,
            loop_timeout_us: cost.initial_loop_timeout_us,
            cost,
            phase: Phase::Start,
            tracker: IncrementalTracker::new(),
            staged: None,
            sock_stamps: BTreeMap::new(),
            capture_keys: Vec::new(),
            in_flight: Vec::new(),
            self_rules: Vec::new(),
            carried_rules: Vec::new(),
            sent_rules: Vec::new(),
            src_self_rules: Vec::new(),
            src_jiffies_at_detach: Jiffies(0),
            guard: OverloadGuard::DISABLED,
            epoch: 0,
            zones: Vec::new(),
            started_at: None,
            stagnant_rounds: 0,
            last_round_bytes: None,
            rounds_done: 0,
            residual: VecDeque::new(),
        }
    }

    /// Whether the migration has completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Whether the migration was aborted.
    pub fn is_aborted(&self) -> bool {
        self.phase == Phase::Aborted
    }

    /// Whether the migration is over, one way or the other.
    pub fn is_finished(&self) -> bool {
        self.is_done() || self.is_aborted()
    }

    /// Whether the source sockets have already been detached — the point of
    /// no free return: an abort after this restores from the captured image
    /// instead of simply resuming the source copy.
    pub fn past_detach(&self) -> bool {
        matches!(
            self.phase,
            Phase::Restore | Phase::DemandResolve | Phase::Done
        )
    }

    /// Whether the engine is resolving residual dependencies (post-copy
    /// family): the process already runs on the destination while the
    /// source ledger services demand fetches and the write-back stream.
    pub fn in_demand_resolve(&self) -> bool {
        self.phase == Phase::DemandResolve
    }

    /// Outstanding residual-dependency ledger entries: pages still
    /// authoritative on the source after switch-over. Zero for the
    /// stop-and-copy strategies and once the resolve drains. Preserved
    /// across an abort so the owner can attribute residual leaks.
    pub fn residual_pages(&self) -> u64 {
        self.residual.len() as u64
    }

    /// Capture keys this migration enabled on the destination stack (empty
    /// before freeze and after restore/abort drains them). The owner uses
    /// this to attribute capture-queue pressure to the right migration when
    /// several are in flight toward the same host.
    pub fn capture_keys(&self) -> &[CaptureKey] {
        &self.capture_keys
    }

    /// Execute the current phase, emitting its effects into `sink`. The
    /// owner must call this exactly when the previous plan's
    /// `next_step_after_us` elapses.
    pub fn step(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        match self.phase {
            Phase::Start => self.step_start(io, sink),
            Phase::PrecopyIter => self.step_precopy(io, sink),
            Phase::CaptureRequest => self.step_capture_request(io, sink),
            Phase::Detach => self.step_detach(io, sink),
            Phase::Restore => self.step_restore(io, sink),
            Phase::DemandResolve => self.step_demand_resolve(io, sink),
            Phase::Done | Phase::Aborted => StepPlan::default(),
        }
    }

    /// Abort the migration, emitting the phase-dependent compensating
    /// effects (see the module docs) and finally [`Effect::Aborted`]. Safe
    /// to call in any phase; a no-op once the migration is finished.
    pub fn abort(&mut self, reason: AbortReason, io: AbortIo<'_>, sink: &mut dyn EffectSink) {
        let AbortIo {
            now,
            src_stack,
            dst_stack,
        } = io;
        let (phase, recovery) = match self.phase {
            Phase::Done | Phase::Aborted => return,
            // Precopy: the source copy never stopped; just drop the staged
            // image. Nothing was installed anywhere yet.
            Phase::Start | Phase::PrecopyIter | Phase::CaptureRequest => {
                let phase = if self.phase == Phase::Start {
                    PhaseId::PrecopyFull
                } else {
                    PhaseId::PrecopyIter
                };
                self.staged = None;
                let recovery = if src_stack.is_some() {
                    AbortRecovery::SourceKeptRunning
                } else {
                    AbortRecovery::Lost
                };
                (phase, recovery)
            }
            // Capture step ran: app frozen, captures enabled on the
            // destination, rules sent — but sockets are still hashed on the
            // source. Tear the remote state down and resume in place.
            Phase::Detach => {
                self.rollback_remote_state(now, dst_stack, sink);
                self.staged = None;
                self.self_rules.clear();
                let recovery = if src_stack.is_some() {
                    sink.emit(now, Effect::ResumeApp);
                    AbortRecovery::ResumedOnSource
                } else {
                    AbortRecovery::Lost
                };
                (PhaseId::FreezeCapture, recovery)
            }
            // Detach ran: sockets are in flight, the source holds nothing.
            // Rebuild on the source from the captured image if it lives.
            Phase::Restore => {
                let recovery = self.abort_restore(now, src_stack, dst_stack, sink);
                (PhaseId::FreezeDetach, recovery)
            }
            // Switch-over done: the destination copy runs, the source
            // ledger is still authoritative for the unfetched pages. Fall
            // back per the abort-row table (DESIGN.md §12) — while the
            // ledger is intact, `Lost` is impossible.
            Phase::DemandResolve => {
                let recovery = self.abort_demand_resolve(now, src_stack, dst_stack, sink);
                (PhaseId::DemandResolve, recovery)
            }
        };
        self.phase = Phase::Aborted;
        sink.emit(
            now,
            Effect::Aborted(MigrationAborted {
                phase,
                reason,
                recovery,
            }),
        );
    }

    /// Recall translation rules from peers and (if the destination lives)
    /// disable its capture entries, discarding anything queued.
    fn rollback_remote_state(
        &mut self,
        now: SimTime,
        dst_stack: Option<&mut HostStack>,
        sink: &mut dyn EffectSink,
    ) {
        for (peer, rule) in self.sent_rules.drain(..) {
            sink.emit(now, Effect::RevokeXlate { peer, rule });
        }
        if let Some(dst) = dst_stack {
            for key in self.capture_keys.drain(..) {
                dst.capture.disable_and_drain(&key);
                sink.emit(now, Effect::RemoveCapture { key });
            }
        } else {
            self.capture_keys.clear();
        }
        // The destination subscribed at capture setup; with the captures
        // gone its interest seats go too (the source never unsubscribed —
        // pre-detach rows leave it the sole subscriber).
        for &zone in &self.zones {
            sink.emit(
                now,
                Effect::Unsubscribe {
                    zone,
                    side: Side::Dst,
                },
            );
        }
    }

    /// Post-detach abort: reinstall the in-flight sockets on the source,
    /// drain the destination captures into it, resume the staged process.
    fn abort_restore(
        &mut self,
        now: SimTime,
        src_stack: Option<&mut HostStack>,
        mut dst_stack: Option<&mut HostStack>,
        sink: &mut dyn EffectSink,
    ) -> AbortRecovery {
        for (peer, rule) in self.sent_rules.drain(..) {
            sink.emit(now, Effect::RevokeXlate { peer, rule });
        }
        self.self_rules.clear();
        // Whatever the recovery row, the destination stops receiving for
        // this process: its capture-setup subscriptions are rolled back.
        // The source kept its seat (switch-over never ran), so the
        // RestoredOnSource row ends with exactly one subscriber.
        for &zone in &self.zones {
            sink.emit(
                now,
                Effect::Unsubscribe {
                    zone,
                    side: Side::Dst,
                },
            );
        }
        let Some(src) = src_stack else {
            // Source gone too: discard the remote residue; only the image
            // survives (its sockets are lost — BLCR semantics).
            if let Some(dst) = dst_stack.as_deref_mut() {
                for key in self.capture_keys.drain(..) {
                    dst.capture.disable_and_drain(&key);
                    sink.emit(now, Effect::RemoveCapture { key });
                }
            } else {
                self.capture_keys.clear();
            }
            self.in_flight.clear();
            // Nothing live is left anywhere: clear the source's seat too
            // (idempotent when the owner already purged the dead node).
            for &zone in &self.zones {
                sink.emit(
                    now,
                    Effect::Unsubscribe {
                        zone,
                        side: Side::Src,
                    },
                );
            }
            return match self.staged.take() {
                Some(img) => AbortRecovery::ImageOnly(img),
                None => AbortRecovery::Lost,
            };
        };

        let mut staged = self
            .staged
            .take()
            .expect("staged process exists past detach");
        // The sockets left the source at `src_jiffies_at_detach`; shift
        // their timestamps by the source time that passed since (§V-C1
        // applied homeward).
        let delta = src.jiffies(now).delta(self.src_jiffies_at_detach);
        for (fd, mut sock) in self.in_flight.drain(..) {
            sock.apply_jiffies_delta(delta);
            let (sid, fx) = src.install_socket(sock, now);
            for effect in fx {
                sink.emit(
                    now,
                    Effect::Stack {
                        side: Side::Src,
                        effect,
                    },
                );
            }
            staged.fds.insert_at(fd, dvelm_proc::FdEntry::Socket(sid));
        }
        // Reinstate the self-rules the source held for these sockets from
        // an earlier migration onto it, and this process's view of other
        // migrated peers.
        for rule in self.src_self_rules.drain(..) {
            src.xlate.install_self(rule);
        }
        for rule in self.carried_rules.drain(..) {
            src.xlate.install_at(rule, now);
        }
        // Packets captured on the destination while the sockets were in
        // transit are re-injected on the source — nothing is dropped.
        if let Some(dst) = dst_stack {
            for key in self.capture_keys.drain(..) {
                let segs = dst.capture.disable_and_drain(&key);
                sink.emit(now, Effect::RemoveCapture { key });
                for seg in segs {
                    sink.emit(now, Effect::PacketReinjected);
                    for effect in src.reinject(seg, now) {
                        sink.emit(
                            now,
                            Effect::Stack {
                                side: Side::Src,
                                effect,
                            },
                        );
                    }
                }
            }
        } else {
            self.capture_keys.clear();
        }
        staged.resume_all();
        AbortRecovery::RestoredOnSource(staged)
    }

    /// Demand-resolve abort: the destination already runs the process; the
    /// source still holds the residual-dependency ledger (every unfetched
    /// page) *and* the write-back log (pages already pushed), which together
    /// reassemble the full image. Socket state, however, has lived on the
    /// destination since switch-over: a post-switch-over failure loses the
    /// connections (BLCR semantics), unlike the pre-detach rows.
    ///
    /// Outcome rows (`Lost` requires a destroyed ledger):
    /// * source alive → `RestoredOnSource`: the image is reassembled on the
    ///   source from ledger + write-back log; sockets are closed.
    /// * source dead, ledger already drained → `ImageOnly`: the destination
    ///   image is complete (cold-restart fodder).
    /// * source dead, residual outstanding → `Lost` — the stale-source
    ///   hazard realized: the destination copy is missing pages only the
    ///   (dead) ledger held.
    fn abort_demand_resolve(
        &mut self,
        now: SimTime,
        src_stack: Option<&mut HostStack>,
        dst_stack: Option<&mut HostStack>,
        sink: &mut dyn EffectSink,
    ) -> AbortRecovery {
        for (peer, rule) in self.sent_rules.drain(..) {
            sink.emit(now, Effect::RevokeXlate { peer, rule });
        }
        self.self_rules.clear();
        self.carried_rules.clear();
        self.src_self_rules.clear();
        let Some(mut staged) = self.staged.take() else {
            // Unreachable by construction: DemandResolve always stages.
            return AbortRecovery::Lost;
        };
        // Tear the destination copy down if that node still lives: its
        // sockets are released (the connections break) and the translation
        // rules installed at restore are withdrawn with them.
        let sids: Vec<(Fd, SockId)> = staged.fds.sockets().collect();
        if let Some(dst) = dst_stack {
            for (_, sid) in &sids {
                if let Some(sock) = dst.sock(*sid) {
                    let local = sock.local();
                    let _ = dst.xlate.take_self_rules_for(local);
                    let _ = dst.xlate.take_rules_for(local);
                }
                dst.release(*sid);
            }
        }
        for (fd, _) in sids {
            staged.fds.close(fd);
        }

        // The source already gave its interest seats up at switch-over, so
        // unlike the pre-switch-over rows the compensation must *restore*
        // them when the process falls back home — and in every row the
        // destination's seats end with its torn-down copy.
        for &zone in &self.zones {
            sink.emit(
                now,
                Effect::Unsubscribe {
                    zone,
                    side: Side::Dst,
                },
            );
        }
        match src_stack {
            Some(_) => {
                // Ledger intact: reassemble the image on the source. Pages
                // still in the ledger never left it; pages already pushed
                // are replayed from the write-back log (in-model, `staged`
                // already holds them). The ledger itself is kept so the
                // owner can observe the outstanding count.
                let pages: Vec<PageRecord> = self.residual.iter().copied().collect();
                apply_update(
                    &mut staged,
                    &IncrementalUpdate {
                        vma_diff: VmaDiff::default(),
                        pages,
                    },
                );
                for &zone in &self.zones {
                    sink.emit(
                        now,
                        Effect::Subscribe {
                            zone,
                            side: Side::Src,
                        },
                    );
                }
                AbortRecovery::RestoredOnSource(staged)
            }
            None if self.residual.is_empty() => AbortRecovery::ImageOnly(staged),
            None => AbortRecovery::Lost,
        }
    }

    // ------------------------------------------------------------------

    fn migratable_sockets<'a>(
        proc: &Process,
        stack: &'a HostStack,
    ) -> Vec<(Fd, SockId, &'a Socket)> {
        proc.fds
            .sockets()
            .filter_map(|(fd, sid)| stack.sock(sid).map(|s| (fd, sid, s)))
            .filter(|(_, _, s)| s.is_migratable())
            .collect()
    }

    /// Whether the wall-clock deadline (if armed) has expired by `now`.
    fn deadline_exceeded(&self, now: SimTime) -> bool {
        match (self.guard.deadline_us, self.started_at) {
            (Some(deadline), Some(start)) => now.saturating_since(start) > deadline,
            _ => false,
        }
    }

    fn step_start(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        self.started_at = Some(io.now);
        if self.strategy == Strategy::PostCopy {
            // Restore-first: no precopy transfer at all. Signal, then go
            // straight to the switch-over; the entire image stays
            // authoritative on the source as the residual-dependency
            // ledger, built at detach.
            if self.signal_based {
                io.proc.signal_checkpoint();
            }
            self.phase = Phase::CaptureRequest;
            return StepPlan {
                next_step_after_us: Some(self.cost.signal_us),
            };
        }
        sink.emit(io.now, Effect::PhaseEntered(PhaseId::PrecopyFull));
        // Live checkpoint request: signal; all threads return to userspace
        // (guaranteeing empty backlogs/prequeues, §V-C1), then the helper
        // thread transfers the full image while the app continues.
        if self.signal_based {
            io.proc.signal_checkpoint();
        }
        let img = full_checkpoint(io.proc);
        let mem_bytes = img.transfer_bytes();
        let mut bytes = mem_bytes;
        self.staged = Some(restore_process(&img));
        // Initialize the dirty/VMA tracking (clears dirty bits).
        let _ = incremental_update(&mut self.tracker, io.proc);
        sink.emit(
            io.now,
            Effect::Shipped {
                class: ByteClass::PrecopyMem,
                bytes: mem_bytes,
            },
        );

        // Incremental strategy: ship full socket records now, so the freeze
        // phase only carries deltas.
        if self.strategy.tracks_sockets_in_precopy() {
            for (_, sid, sock) in Self::migratable_sockets(io.proc, io.src_stack) {
                let b = sock.record_len();
                bytes += b;
                sink.emit(
                    io.now,
                    Effect::Shipped {
                        class: ByteClass::PrecopySocket,
                        bytes: b,
                    },
                );
                self.sock_stamps.insert(sid, sock.mutation_stamp());
            }
        }

        let delay =
            self.cost.signal_us + self.cost.serialize_us(bytes) + self.cost.transfer_us(bytes);
        self.phase = Phase::PrecopyIter;
        StepPlan {
            next_step_after_us: Some(self.loop_timeout_us.max(delay)),
        }
    }

    fn step_precopy(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        // Hybrid prefix bound: after `precopy_rounds` iterations the
        // strategy switches over regardless of convergence — the remaining
        // dirty set resolves on demand, so a bounded prefix is safe even
        // against a workload that never converges.
        if let Some(limit) = self.strategy.precopy_round_limit() {
            if self.rounds_done >= limit {
                self.phase = Phase::CaptureRequest;
                return self.step_capture_request(io, sink);
            }
        }
        // Deadline guard: abort *before* spending another round. The source
        // copy is authoritative throughout precopy, so this is the free
        // rollback (§III) — drop the staged image, nothing was installed.
        if self.deadline_exceeded(io.now) {
            return self.abort_in_precopy(io.now, AbortReason::Overloaded, sink);
        }
        sink.emit(io.now, Effect::PhaseEntered(PhaseId::PrecopyIter));
        let update = incremental_update(&mut self.tracker, io.proc);
        let staged = self
            .staged
            .as_mut()
            .expect("staged process exists after Start");
        apply_update(staged, &update);
        let mem_bytes = update.transfer_bytes();
        let mut bytes = mem_bytes;
        sink.emit(
            io.now,
            Effect::Shipped {
                class: ByteClass::PrecopyMem,
                bytes: mem_bytes,
            },
        );

        if self.strategy.tracks_sockets_in_precopy() {
            for (_, sid, sock) in Self::migratable_sockets(io.proc, io.src_stack) {
                let since = self.sock_stamps.get(&sid).copied().unwrap_or(0);
                let b = if since == 0 {
                    sock.record_len()
                } else {
                    sock.delta_len(since)
                };
                bytes += b;
                sink.emit(
                    io.now,
                    Effect::Shipped {
                        class: ByteClass::PrecopySocket,
                        bytes: b,
                    },
                );
                self.sock_stamps.insert(sid, sock.mutation_stamp());
            }
        }

        let delay = self.cost.serialize_us(bytes) + self.cost.transfer_us(bytes);

        // Convergence guard: under overload the dirty diff stops shrinking
        // round over round (the round length is floored by its own transfer
        // time, so a dirty rate above the drain rate produces monotonically
        // non-decreasing diffs). N consecutive stagnant rounds → abort
        // rather than freeze with an unbounded payload.
        if let Some(max_stagnant) = self.guard.max_stagnant_rounds {
            match self.last_round_bytes {
                // A zero diff is convergence, not stagnation.
                Some(prev) if bytes > 0 && bytes >= prev => self.stagnant_rounds += 1,
                _ => self.stagnant_rounds = 0,
            }
            self.last_round_bytes = Some(bytes);
            if self.stagnant_rounds >= max_stagnant {
                if self.guard.escalate_nonconverging {
                    // Escalation ladder: instead of abandoning the
                    // migration the guard degrades it into a hybrid
                    // switch-over — freeze now, ship metadata + sockets
                    // only, and resolve the residual dirty set on demand.
                    // The strategy mutates so the detach/restore arms take
                    // the residual path; the report keeps the strategy the
                    // migration was started with.
                    self.rounds_done += 1;
                    self.strategy = Strategy::Hybrid {
                        precopy_rounds: self.rounds_done,
                    };
                    self.phase = Phase::CaptureRequest;
                    return StepPlan {
                        next_step_after_us: Some(delay.max(self.cost.signal_us)),
                    };
                }
                return self.abort_in_precopy(io.now, AbortReason::NonConverging, sink);
            }
        }

        // "In each subsequent iteration the loop timeout is decreased. When
        // it reaches a threshold (currently 20 ms) it signals the
        // application threads for final checkpointing."
        self.rounds_done += 1;
        self.loop_timeout_us = (self.loop_timeout_us / 2).max(self.cost.freeze_threshold_us);
        if self.loop_timeout_us <= self.cost.freeze_threshold_us {
            self.phase = Phase::CaptureRequest;
        }
        StepPlan {
            next_step_after_us: Some(self.loop_timeout_us.max(delay)),
        }
    }

    /// In-step abort during precopy: the app never stopped, nothing was
    /// installed anywhere — drop the staged image and close the stream.
    fn abort_in_precopy(
        &mut self,
        now: SimTime,
        reason: AbortReason,
        sink: &mut dyn EffectSink,
    ) -> StepPlan {
        self.staged = None;
        self.phase = Phase::Aborted;
        sink.emit(
            now,
            Effect::Aborted(MigrationAborted {
                phase: PhaseId::PrecopyIter,
                reason,
                recovery: AbortRecovery::SourceKeptRunning,
            }),
        );
        StepPlan {
            next_step_after_us: None,
        }
    }

    fn step_capture_request(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        // Deadline audit (ISSUE 8): the wall-clock budget is enforced at
        // every phase boundary, not just precopy rounds. Here the freeze
        // has not begun, so the rollback is still free. The residual
        // family is exempt past precopy: its switch-over *is* the bounded
        // completion path (finishing beats rolling back).
        if !self.strategy.has_demand_resolve() && self.deadline_exceeded(io.now) {
            return self.abort_in_precopy(io.now, AbortReason::Overloaded, sink);
        }
        sink.emit(io.now, Effect::PhaseEntered(PhaseId::FreezeCapture));
        // Freeze begins: signal for the final checkpoint, threads barrier.
        // SuspendApp must precede the source stack effects below, so the
        // owner sees the process suspended before backlog processing runs.
        sink.emit(io.now, Effect::SuspendApp);
        let mut src_effects = Vec::new();
        if self.signal_based {
            // Every thread abandons its system call and returns to
            // userspace: socket locks drop and the fast path is left, so
            // parked segments are processed *before* the state is dumped.
            io.proc.signal_checkpoint();
            let sids: Vec<SockId> = io.proc.fds.sockets().map(|(_, s)| s).collect();
            for sid in sids {
                if let Some(Socket::Tcp(t)) = io.src_stack.sock_mut(sid) {
                    t.user_locked = false;
                    t.fast_path_reader = false;
                }
                src_effects.extend(io.src_stack.set_user_locked(sid, false, io.now));
            }
        }
        io.proc.freeze_all();

        // Phase one of collective migration: collect capturing details of
        // all connections and enable them on the destination. (Also the
        // per-socket capture of the iterative strategy — its extra
        // round-trips are accounted in the detach phase.)
        self.capture_keys.clear();
        self.self_rules.clear();
        let mut install_failed = false;
        for (_, _, sock) in Self::migratable_sockets(io.proc, io.src_stack) {
            let local = sock.local();
            let key = match sock.remote() {
                Some(remote) => CaptureKey::connected(remote, local.port),
                None => CaptureKey::any_remote(local.port),
            };
            if !io.dst_stack.capture.try_enable(key, io.now) {
                install_failed = true;
                break;
            }
            self.capture_keys.push(key);
            sink.emit(io.now, Effect::InstallCapture { key });

            // In-cluster connection: the peer needs a translation rule and
            // the destination a self-rule (§III-C, §V-D).
            if let Some(remote) = sock.remote() {
                if let Some(peer_node) = remote.ip.local_host() {
                    let rule = XlateRule::new(remote, local.ip, io.dst_stack.local_ip, local.port);
                    self.sent_rules.push((peer_node, rule));
                    sink.emit(
                        io.now,
                        Effect::SendXlate {
                            peer: peer_node,
                            rule,
                        },
                    );
                    self.self_rules.push(SelfXlateRule {
                        sock_local: local,
                        peer: remote,
                        host_ip: io.dst_stack.local_ip,
                    });
                }
            }
        }
        for effect in src_effects {
            sink.emit(
                io.now,
                Effect::Stack {
                    side: Side::Src,
                    effect,
                },
            );
        }

        if install_failed {
            // A capture hook the destination refused means packets would be
            // lost during detach: the migration cannot proceed safely. Roll
            // the remote state back and resume in place — the source
            // sockets were never touched.
            self.staged = None;
            self.self_rules.clear();
            for (peer, rule) in self.sent_rules.drain(..) {
                sink.emit(io.now, Effect::RevokeXlate { peer, rule });
            }
            for key in self.capture_keys.drain(..) {
                io.dst_stack.capture.disable_and_drain(&key);
                sink.emit(io.now, Effect::RemoveCapture { key });
            }
            sink.emit(io.now, Effect::ResumeApp);
            io.proc.resume_all();
            self.phase = Phase::Aborted;
            sink.emit(
                io.now,
                Effect::Aborted(MigrationAborted {
                    phase: PhaseId::FreezeCapture,
                    reason: AbortReason::CaptureInstallFailed,
                    recovery: AbortRecovery::ResumedOnSource,
                }),
            );
            return StepPlan {
                next_step_after_us: None,
            };
        }

        // Zone interest moves with the sockets: the destination subscribes
        // the moment its capture hooks are armed, so under AOI routing it
        // hears (and captures) the client's frames during transit exactly
        // as it would under full broadcast. Emitted only after the capture
        // install succeeded — the inline rollback above owes no
        // compensation.
        for &zone in &self.zones {
            sink.emit(
                io.now,
                Effect::Subscribe {
                    zone,
                    side: Side::Dst,
                },
            );
        }

        let n = self.capture_keys.len() as u64;
        let setup = match self.strategy {
            // One aggregated capture message for all connections (the
            // residual family switches over collectively too).
            Strategy::Collective
            | Strategy::IncrementalCollective
            | Strategy::PostCopy
            | Strategy::Hybrid { .. } => self.cost.capture_setup_us(n),
            // The first socket's handshake; the rest are inside the
            // per-socket detach loop.
            Strategy::Iterative => self.cost.rtt_us(),
        };
        self.phase = Phase::Detach;
        StepPlan {
            next_step_after_us: Some(self.cost.signal_us + self.cost.barrier_us + setup),
        }
    }

    fn step_detach(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        // Deadline audit: the app froze at capture but its sockets are
        // still hashed on the source — aborting here resumes it in place
        // (ResumedOnSource), which is still cheap. Exempt for the residual
        // family (see `step_capture_request`).
        if !self.strategy.has_demand_resolve() && self.deadline_exceeded(io.now) {
            let StepIo {
                now,
                src_stack,
                dst_stack,
                ..
            } = io;
            self.abort(
                AbortReason::Overloaded,
                AbortIo {
                    now,
                    src_stack: Some(src_stack),
                    dst_stack: Some(dst_stack),
                },
                sink,
            );
            return StepPlan {
                next_step_after_us: None,
            };
        }
        sink.emit(io.now, Effect::PhaseEntered(PhaseId::FreezeDetach));
        // Record source jiffies for the timestamp adjustment (§V-C1).
        self.src_jiffies_at_detach = io.src_stack.jiffies(io.now);

        // Sockets in non-migratable states (mid-handshake, closing) are not
        // worth carrying: release them so the source keeps no residue. The
        // application sees them as closed after restore.
        let stale: Vec<SockId> = io
            .proc
            .fds
            .sockets()
            .filter(|(_, sid)| io.src_stack.sock(*sid).is_none_or(|s| !s.is_migratable()))
            .map(|(_, sid)| sid)
            .collect();
        for sid in stale {
            io.src_stack.release(sid);
        }

        // Disable and subtract every migratable socket, in fd order.
        let socks = Self::migratable_sockets(io.proc, io.src_stack)
            .into_iter()
            .map(|(fd, sid, _)| (fd, sid))
            .collect::<Vec<_>>();

        let mut sock_bytes = 0u64;
        let mut sock_time = 0u64;
        for (fd, sid) in socks {
            let sock = io
                .src_stack
                .detach_socket(sid)
                .expect("socket listed in fd table exists");
            // Take any destination-side rules this host held for it (no
            // residual dependencies on re-migration; kept around so an
            // abort can reinstate them), and carry along its view of other
            // migrated peers.
            self.src_self_rules
                .extend(io.src_stack.xlate.take_self_rules_for(sock.local()));
            self.carried_rules
                .extend(io.src_stack.xlate.take_rules_for(sock.local()));
            let parked_nonempty = match &sock {
                Socket::Tcp(t) => !t.parked_queues_empty(),
                _ => false,
            };
            sink.emit(
                io.now,
                Effect::SocketDetached {
                    sock: sid,
                    parked_nonempty,
                },
            );
            let b = match self.strategy {
                // Post-copy never shipped socket state before the freeze.
                Strategy::Iterative | Strategy::Collective | Strategy::PostCopy => {
                    sock.record_len()
                }
                Strategy::IncrementalCollective => {
                    let since = self.sock_stamps.get(&sid).copied().unwrap_or(0);
                    sock.delta_len(since)
                }
                // A hybrid that *escalated* out of a non-tracking strategy
                // has no precopy baseline (stamp 0): ship the full record.
                Strategy::Hybrid { .. } => match self.sock_stamps.get(&sid).copied().unwrap_or(0) {
                    0 => sock.record_len(),
                    since => sock.delta_len(since),
                },
            } + ATTACH_RECORD;
            sink.emit(
                io.now,
                Effect::Shipped {
                    class: ByteClass::FreezeSocket,
                    bytes: b,
                },
            );
            sock_bytes += b;
            if self.strategy == Strategy::Iterative {
                sock_time += self.cost.per_socket_iterative_us(b);
            }
            self.in_flight.push((fd, sock));
        }
        if self.strategy.is_collective() {
            sock_time = self.cost.bulk_us(sock_bytes);
        }

        // Final incremental memory step + the freeze records the leader
        // thread dumps (open-file table, thread registers, signal handlers).
        // The residual family defers the pages themselves: only metadata
        // (VMA layout + freeze records) crosses in the freeze window, and
        // every deferred page is seeded into the source's residual-
        // dependency ledger for the demand-resolve phase.
        let mem_bytes = if self.strategy.has_demand_resolve() {
            let (full_bytes, pages) = if self.strategy == Strategy::PostCopy {
                // No precopy ran: the ledger is the entire image. Stage
                // the process now (metadata + VMA layout; the transfer of
                // its pages is what the ledger accounts).
                let img = full_checkpoint(io.proc);
                self.staged = Some(restore_process(&img));
                (img.transfer_bytes(), img.pages)
            } else {
                let update = incremental_update(&mut self.tracker, io.proc);
                let bytes =
                    update.transfer_bytes() + dvelm_ckpt::freeze_records(io.proc).transfer_bytes();
                let IncrementalUpdate { vma_diff, pages } = update;
                let staged = self.staged.as_mut().expect("staged process exists");
                apply_update(
                    staged,
                    &IncrementalUpdate {
                        vma_diff,
                        pages: Vec::new(),
                    },
                );
                (bytes, pages)
            };
            let ledger_bytes = pages.len() as u64 * RESIDUAL_PAGE_BYTES;
            self.residual = pages.into();
            full_bytes - ledger_bytes
        } else {
            let update = incremental_update(&mut self.tracker, io.proc);
            let staged = self.staged.as_mut().expect("staged process exists");
            apply_update(staged, &update);
            update.transfer_bytes() + dvelm_ckpt::freeze_records(io.proc).transfer_bytes()
        };
        let mem_time = self.cost.bulk_us(mem_bytes);
        sink.emit(
            io.now,
            Effect::Shipped {
                class: ByteClass::FreezeMem,
                bytes: mem_bytes,
            },
        );

        self.phase = Phase::Restore;
        StepPlan {
            next_step_after_us: Some(sock_time + mem_time + self.cost.barrier_us),
        }
    }

    fn step_restore(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        // Deadline audit: a stalled post-detach transfer (e.g. a partition
        // that parked the migration between detach and restore) can
        // overshoot the wall-clock budget. Restore-on-source is the
        // compensation row — the process resumes at home instead of
        // committing a restore the conductor already gave up on. Exempt
        // for the residual family (see `step_capture_request`).
        if !self.strategy.has_demand_resolve() && self.deadline_exceeded(io.now) {
            let StepIo {
                now,
                src_stack,
                dst_stack,
                ..
            } = io;
            self.abort(
                AbortReason::Overloaded,
                AbortIo {
                    now,
                    src_stack: Some(src_stack),
                    dst_stack: Some(dst_stack),
                },
                sink,
            );
            return StepPlan {
                next_step_after_us: None,
            };
        }
        sink.emit(io.now, Effect::PhaseEntered(PhaseId::Restore));
        let mut staged = self.staged.take().expect("staged process exists");

        // Timestamp adjustment: difference between destination jiffies now
        // and source jiffies at checkpoint (§V-C1).
        let delta = io
            .dst_stack
            .jiffies(io.now)
            .delta(self.src_jiffies_at_detach);

        let mut installed: Vec<(Fd, SockId)> = Vec::new();
        let mut failure: Option<(Fd, Socket)> = None;
        let mut remaining = std::mem::take(&mut self.in_flight).into_iter();
        for (fd, mut sock) in remaining.by_ref() {
            sock.apply_jiffies_delta(delta);
            match io.dst_stack.try_install_socket(sock, io.now) {
                Ok((sid, fx)) => {
                    for effect in fx {
                        sink.emit(
                            io.now,
                            Effect::Stack {
                                side: Side::Dst,
                                effect,
                            },
                        );
                    }
                    installed.push((fd, sid));
                }
                Err(mut sock) => {
                    sock.apply_jiffies_delta(-delta);
                    failure = Some((fd, sock));
                    break;
                }
            }
        }
        if let Some((fd, sock)) = failure {
            // A socket the destination cannot rehash strands the whole
            // restore: unwind the partial install (reversing the timestamp
            // shift) and fall back to the source, which is still alive.
            let mut back: Vec<(Fd, Socket)> = Vec::new();
            for (fd, sid) in installed {
                let mut sock = io
                    .dst_stack
                    .detach_socket(sid)
                    .expect("socket installed moments ago exists");
                sock.apply_jiffies_delta(-delta);
                back.push((fd, sock));
            }
            back.push((fd, sock));
            back.extend(remaining);
            self.in_flight = back;
            self.staged = Some(staged);
            let recovery = self.abort_restore(io.now, Some(io.src_stack), Some(io.dst_stack), sink);
            self.phase = Phase::Aborted;
            sink.emit(
                io.now,
                Effect::Aborted(MigrationAborted {
                    phase: PhaseId::Restore,
                    reason: AbortReason::RestoreFailed,
                    recovery,
                }),
            );
            return StepPlan {
                next_step_after_us: None,
            };
        }
        // Reattach "to the right file descriptor of the process": the
        // BLCR-restored fd table has these slots empty (sockets were
        // omitted from the image).
        for (fd, sid) in installed {
            staged.fds.insert_at(fd, dvelm_proc::FdEntry::Socket(sid));
        }
        for rule in self.self_rules.drain(..) {
            io.dst_stack.xlate.install_self(rule);
        }
        for rule in self.carried_rules.drain(..) {
            io.dst_stack.xlate.install_at(rule, io.now);
        }

        // Re-inject captured packets through the okfn() path, then let the
        // process run.
        for key in self.capture_keys.drain(..) {
            for seg in io.dst_stack.capture.disable_and_drain(&key) {
                sink.emit(io.now, Effect::PacketReinjected);
                for effect in io.dst_stack.reinject(seg, io.now) {
                    sink.emit(
                        io.now,
                        Effect::Stack {
                            side: Side::Dst,
                            effect,
                        },
                    );
                }
            }
        }
        staged.resume_all();
        staged.cpu_share = io.proc.cpu_share;

        // Switch-over: the destination copy runs from this instant, so the
        // source's zone subscriptions end here (the destination subscribed
        // at capture setup and simply keeps its seat).
        for &zone in &self.zones {
            sink.emit(
                io.now,
                Effect::Unsubscribe {
                    zone,
                    side: Side::Src,
                },
            );
        }

        if self.strategy.has_demand_resolve() && !self.residual.is_empty() {
            // Switch-over complete: the destination runs the process from
            // this instant — the freeze window ends here — while the
            // source ledger stays authoritative for the residual pages.
            // Completion is deferred until the ledger drains.
            self.staged = Some(staged);
            self.phase = Phase::DemandResolve;
            sink.emit(io.now, Effect::PhaseEntered(PhaseId::DemandResolve));
            return StepPlan {
                next_step_after_us: Some(self.cost.rtt_us()),
            };
        }

        self.phase = Phase::Done;
        // Complete is the final effect of the migration, after every
        // destination stack effect above; its timestamp ends the freeze.
        sink.emit(
            io.now,
            Effect::Complete(MigrationComplete { process: staged }),
        );
        StepPlan {
            next_step_after_us: None,
        }
    }

    /// One demand-resolve round: service the faulted-page queue first
    /// (demand fetches cost a round trip each and preempt the background
    /// stream), then push one bounded write-back batch. Pages leave the
    /// source ledger only as they land, so an abort at any instant still
    /// finds every unfetched page authoritative on the source.
    ///
    /// The wall-clock deadline is deliberately *not* enforced here: the
    /// destination already runs the application, the ledger only shrinks
    /// (each round moves ≥ 1 page), and rolling back costs strictly more
    /// than finishing. Overload shows up as slower rounds, never as an
    /// abandoned live process.
    fn step_demand_resolve(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        if self.residual.is_empty() {
            // The last batch has landed: the source owes nothing. Hand
            // the process over — Complete stays the final effect.
            let Some(staged) = self.staged.take() else {
                return StepPlan::default();
            };
            self.phase = Phase::Done;
            sink.emit(
                io.now,
                Effect::Complete(MigrationComplete { process: staged }),
            );
            return StepPlan {
                next_step_after_us: None,
            };
        }
        let Some(staged) = self.staged.as_mut() else {
            return StepPlan::default();
        };
        let mut delay = 0u64;
        let mut landed: Vec<PageRecord> = Vec::new();
        // Faulted-page queue: pages the destination touched before they
        // arrived; each fault blocks a destination thread on a synchronous
        // round trip to the source.
        let faults = DEMAND_FAULTS_PER_STEP.min(self.residual.len());
        for _ in 0..faults {
            let Some(page) = self.residual.pop_front() else {
                break;
            };
            sink.emit(
                io.now,
                Effect::Shipped {
                    class: ByteClass::DemandFetch,
                    bytes: RESIDUAL_PAGE_BYTES,
                },
            );
            delay += self.cost.rtt_us() + self.cost.transfer_us(RESIDUAL_PAGE_BYTES);
            landed.push(page);
        }
        // Background write-back: one bounded batch behind the fetches.
        let batch = WRITEBACK_BATCH_PAGES.min(self.residual.len());
        if batch > 0 {
            let mut bytes = 0u64;
            for _ in 0..batch {
                let Some(page) = self.residual.pop_front() else {
                    break;
                };
                sink.emit(
                    io.now,
                    Effect::Shipped {
                        class: ByteClass::WriteBack,
                        bytes: RESIDUAL_PAGE_BYTES,
                    },
                );
                bytes += RESIDUAL_PAGE_BYTES;
                landed.push(page);
            }
            delay += self.cost.bulk_us(bytes);
        }
        apply_update(
            staged,
            &IncrementalUpdate {
                vma_diff: VmaDiff::default(),
                pages: landed,
            },
        );
        StepPlan {
            next_step_after_us: Some(delay.max(1)),
        }
    }
}
