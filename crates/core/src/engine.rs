//! The live-migration state machine (Fig. 3 + §III-C).
//!
//! One [`MigrationEngine`] instance drives one migration. The owner (the
//! cluster runtime, or a test harness) calls [`step`](MigrationEngine::step)
//! whenever the engine asked to be called again, passing an [`EffectSink`];
//! each step performs the work of one protocol phase against the two host
//! stacks and the migrating process, emits every externally visible
//! consequence as an ordered, timestamped [`Effect`], and returns a
//! [`StepPlan`] saying when to call back.
//!
//! Phase timeline, with the effects each phase emits:
//!
//! ```text
//! phase            effects emitted (in order)
//! ─────            ──────────────────────────
//! Start            PhaseEntered(PrecopyFull), Shipped(PrecopyMem)
//!                  [, Shipped(PrecopySocket)…]   — signal; full checkpoint;
//!                  transfer while the app runs
//! PrecopyIter ×k   PhaseEntered(PrecopyIter), Shipped(PrecopyMem)
//!                  [, Shipped(PrecopySocket)…]   — dirty pages + VMA diff
//!                  (+ socket deltas, incremental strategy); the loop timeout
//!                  halves each iteration; at 20 ms → freeze
//! CaptureRequest   PhaseEntered(FreezeCapture), SuspendApp,
//!                  [InstallCapture…], [SendXlate…], [Stack(Src)…]
//!                  — app suspended; capture entries enabled on the
//!                  destination; translation requests for in-cluster peers
//! Detach           PhaseEntered(FreezeDetach), [SocketDetached,
//!                  Shipped(FreezeSocket)…], Shipped(FreezeMem)
//!                  — sockets unhashed & quiesced in fd order; final memory
//!                  increment + freeze records shipped (per strategy)
//! Restore          PhaseEntered(Restore), [Stack(Dst)…],
//!                  [PacketReinjected, Stack(Dst)……], Complete
//!                  — sockets rehashed (timestamps shifted, timers
//!                  restarted), fd table rewritten, captured packets
//!                  re-injected, threads resumed — freeze ends
//! ```
//!
//! The engine keeps no measurement state of its own: a
//! `dvelm_metrics::TraceRecorder` consuming the same stream derives the
//! `MigrationReport` (freeze time, byte classes, phase log) from the effects
//! above. `SuspendApp`'s timestamp is `frozen_at`; `Complete`'s is
//! `resumed_at`.

use crate::cost::CostModel;
use crate::effect::{ByteClass, Effect, EffectSink, PhaseId, Side};
use crate::strategy::Strategy;
use dvelm_ckpt::{
    apply_update, full_checkpoint, incremental_update, restore_process, IncrementalTracker,
};
use dvelm_net::NodeId;
use dvelm_proc::{Fd, Pid, Process};
use dvelm_sim::{Jiffies, SimTime};
use dvelm_stack::capture::CaptureKey;
use dvelm_stack::xlate::{SelfXlateRule, XlateRule};
use dvelm_stack::{HostStack, SockId, Socket};
use std::collections::HashMap;

/// Per-socket attach record shipped in the freeze phase (fd binding), bytes.
const ATTACH_RECORD: u64 = 16;

/// Mutable world access for one engine step.
pub struct StepIo<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The source node's stack (where the process currently lives).
    pub src_stack: &'a mut HostStack,
    /// The destination node's stack.
    pub dst_stack: &'a mut HostStack,
    /// The migrating process (source copy; keeps running during precopy).
    pub proc: &'a mut Process,
}

/// What the owner must do after a step. Everything else — suspension,
/// translation requests, stack effects, completion — arrives through the
/// [`EffectSink`] passed to [`MigrationEngine::step`].
#[derive(Debug, Default)]
pub struct StepPlan {
    /// Call `step` again this many µs from now (`None` once done).
    pub next_step_after_us: Option<u64>,
}

/// Final result of a migration, carried by [`Effect::Complete`].
#[derive(Debug)]
pub struct MigrationComplete {
    /// The process as restored on the destination (fd table rewritten to
    /// the new socket ids, threads resumed).
    pub process: Process,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Start,
    PrecopyIter,
    CaptureRequest,
    Detach,
    Restore,
    Done,
}

/// The live-migration engine.
#[derive(Debug)]
pub struct MigrationEngine {
    pub pid: Pid,
    pub src: NodeId,
    pub dst: NodeId,
    pub strategy: Strategy,
    pub cost: CostModel,
    /// Signal-based checkpoint notification (the paper's design). When
    /// false, checkpointing is kernel-initiated (as in the incremental-C/R
    /// systems the paper cites): threads are not pulled out of system
    /// calls, so sockets can reach the freeze phase locked, with non-empty
    /// backlogs/prequeues that must be shipped too.
    pub signal_based: bool,
    phase: Phase,
    tracker: IncrementalTracker,
    staged: Option<Process>,
    /// Last shipped mutation stamp per socket (incremental strategy).
    sock_stamps: HashMap<SockId, u64>,
    loop_timeout_us: u64,
    capture_keys: Vec<CaptureKey>,
    /// Sockets in flight between detach and restore, with their fds.
    in_flight: Vec<(Fd, Socket)>,
    /// Destination-side translation rules to install at restore.
    self_rules: Vec<SelfXlateRule>,
    /// Peer-side rules this process held on the source host (its view of
    /// *other* migrated endpoints), carried along so zone↔zone connections
    /// survive even when both ends migrate.
    carried_rules: Vec<XlateRule>,
    src_jiffies_at_detach: Jiffies,
}

impl MigrationEngine {
    /// Prepare a migration of `pid` from `src` to `dst`. The engine keeps
    /// no clock of its own: the start instant belongs to the trace consumer
    /// (`dvelm_metrics::TraceRecorder::new`).
    pub fn new(
        pid: Pid,
        src: NodeId,
        dst: NodeId,
        strategy: Strategy,
        cost: CostModel,
    ) -> MigrationEngine {
        MigrationEngine {
            pid,
            src,
            dst,
            strategy,
            signal_based: true,
            loop_timeout_us: cost.initial_loop_timeout_us,
            cost,
            phase: Phase::Start,
            tracker: IncrementalTracker::new(),
            staged: None,
            sock_stamps: HashMap::new(),
            capture_keys: Vec::new(),
            in_flight: Vec::new(),
            self_rules: Vec::new(),
            carried_rules: Vec::new(),
            src_jiffies_at_detach: Jiffies(0),
        }
    }

    /// Whether the migration has completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Execute the current phase, emitting its effects into `sink`. The
    /// owner must call this exactly when the previous plan's
    /// `next_step_after_us` elapses.
    pub fn step(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        match self.phase {
            Phase::Start => self.step_start(io, sink),
            Phase::PrecopyIter => self.step_precopy(io, sink),
            Phase::CaptureRequest => self.step_capture_request(io, sink),
            Phase::Detach => self.step_detach(io, sink),
            Phase::Restore => self.step_restore(io, sink),
            Phase::Done => StepPlan::default(),
        }
    }

    // ------------------------------------------------------------------

    fn migratable_sockets<'a>(
        proc: &Process,
        stack: &'a HostStack,
    ) -> Vec<(Fd, SockId, &'a Socket)> {
        proc.fds
            .sockets()
            .filter_map(|(fd, sid)| stack.sock(sid).map(|s| (fd, sid, s)))
            .filter(|(_, _, s)| s.is_migratable())
            .collect()
    }

    fn step_start(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        sink.emit(io.now, Effect::PhaseEntered(PhaseId::PrecopyFull));
        // Live checkpoint request: signal; all threads return to userspace
        // (guaranteeing empty backlogs/prequeues, §V-C1), then the helper
        // thread transfers the full image while the app continues.
        if self.signal_based {
            io.proc.signal_checkpoint();
        }
        let img = full_checkpoint(io.proc);
        let mem_bytes = img.transfer_bytes();
        let mut bytes = mem_bytes;
        self.staged = Some(restore_process(&img));
        // Initialize the dirty/VMA tracking (clears dirty bits).
        let _ = incremental_update(&mut self.tracker, io.proc);
        sink.emit(
            io.now,
            Effect::Shipped {
                class: ByteClass::PrecopyMem,
                bytes: mem_bytes,
            },
        );

        // Incremental strategy: ship full socket records now, so the freeze
        // phase only carries deltas.
        if self.strategy.tracks_sockets_in_precopy() {
            for (_, sid, sock) in Self::migratable_sockets(io.proc, io.src_stack) {
                let b = sock.record_len();
                bytes += b;
                sink.emit(
                    io.now,
                    Effect::Shipped {
                        class: ByteClass::PrecopySocket,
                        bytes: b,
                    },
                );
                self.sock_stamps.insert(sid, sock.mutation_stamp());
            }
        }

        let delay =
            self.cost.signal_us + self.cost.serialize_us(bytes) + self.cost.transfer_us(bytes);
        self.phase = Phase::PrecopyIter;
        StepPlan {
            next_step_after_us: Some(self.loop_timeout_us.max(delay)),
        }
    }

    fn step_precopy(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        sink.emit(io.now, Effect::PhaseEntered(PhaseId::PrecopyIter));
        let update = incremental_update(&mut self.tracker, io.proc);
        let staged = self
            .staged
            .as_mut()
            .expect("staged process exists after Start");
        apply_update(staged, &update);
        let mem_bytes = update.transfer_bytes();
        let mut bytes = mem_bytes;
        sink.emit(
            io.now,
            Effect::Shipped {
                class: ByteClass::PrecopyMem,
                bytes: mem_bytes,
            },
        );

        if self.strategy.tracks_sockets_in_precopy() {
            for (_, sid, sock) in Self::migratable_sockets(io.proc, io.src_stack) {
                let since = self.sock_stamps.get(&sid).copied().unwrap_or(0);
                let b = if since == 0 {
                    sock.record_len()
                } else {
                    sock.delta_len(since)
                };
                bytes += b;
                sink.emit(
                    io.now,
                    Effect::Shipped {
                        class: ByteClass::PrecopySocket,
                        bytes: b,
                    },
                );
                self.sock_stamps.insert(sid, sock.mutation_stamp());
            }
        }

        let delay = self.cost.serialize_us(bytes) + self.cost.transfer_us(bytes);

        // "In each subsequent iteration the loop timeout is decreased. When
        // it reaches a threshold (currently 20 ms) it signals the
        // application threads for final checkpointing."
        self.loop_timeout_us = (self.loop_timeout_us / 2).max(self.cost.freeze_threshold_us);
        if self.loop_timeout_us <= self.cost.freeze_threshold_us {
            self.phase = Phase::CaptureRequest;
        }
        StepPlan {
            next_step_after_us: Some(self.loop_timeout_us.max(delay)),
        }
    }

    fn step_capture_request(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        sink.emit(io.now, Effect::PhaseEntered(PhaseId::FreezeCapture));
        // Freeze begins: signal for the final checkpoint, threads barrier.
        // SuspendApp must precede the source stack effects below, so the
        // owner sees the process suspended before backlog processing runs.
        sink.emit(io.now, Effect::SuspendApp);
        let mut src_effects = Vec::new();
        if self.signal_based {
            // Every thread abandons its system call and returns to
            // userspace: socket locks drop and the fast path is left, so
            // parked segments are processed *before* the state is dumped.
            io.proc.signal_checkpoint();
            let sids: Vec<SockId> = io.proc.fds.sockets().map(|(_, s)| s).collect();
            for sid in sids {
                if let Some(Socket::Tcp(t)) = io.src_stack.sock_mut(sid) {
                    t.user_locked = false;
                    t.fast_path_reader = false;
                }
                src_effects.extend(io.src_stack.set_user_locked(sid, false, io.now));
            }
        }
        io.proc.freeze_all();

        // Phase one of collective migration: collect capturing details of
        // all connections and enable them on the destination. (Also the
        // per-socket capture of the iterative strategy — its extra
        // round-trips are accounted in the detach phase.)
        self.capture_keys.clear();
        self.self_rules.clear();
        for (_, _, sock) in Self::migratable_sockets(io.proc, io.src_stack) {
            let local = sock.local();
            let key = match sock.remote() {
                Some(remote) => CaptureKey::connected(remote, local.port),
                None => CaptureKey::any_remote(local.port),
            };
            self.capture_keys.push(key);
            io.dst_stack.capture.enable(key, io.now);
            sink.emit(io.now, Effect::InstallCapture { key });

            // In-cluster connection: the peer needs a translation rule and
            // the destination a self-rule (§III-C, §V-D).
            if let Some(remote) = sock.remote() {
                if let Some(peer_node) = remote.ip.local_host() {
                    sink.emit(
                        io.now,
                        Effect::SendXlate {
                            peer: peer_node,
                            rule: XlateRule::new(
                                remote,
                                local.ip,
                                io.dst_stack.local_ip,
                                local.port,
                            ),
                        },
                    );
                    self.self_rules.push(SelfXlateRule {
                        sock_local: local,
                        peer: remote,
                        host_ip: io.dst_stack.local_ip,
                    });
                }
            }
        }
        for effect in src_effects {
            sink.emit(
                io.now,
                Effect::Stack {
                    side: Side::Src,
                    effect,
                },
            );
        }

        let n = self.capture_keys.len() as u64;
        let setup = match self.strategy {
            // One aggregated capture message for all connections.
            Strategy::Collective | Strategy::IncrementalCollective => self.cost.capture_setup_us(n),
            // The first socket's handshake; the rest are inside the
            // per-socket detach loop.
            Strategy::Iterative => self.cost.rtt_us(),
        };
        self.phase = Phase::Detach;
        StepPlan {
            next_step_after_us: Some(self.cost.signal_us + self.cost.barrier_us + setup),
        }
    }

    fn step_detach(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        sink.emit(io.now, Effect::PhaseEntered(PhaseId::FreezeDetach));
        // Record source jiffies for the timestamp adjustment (§V-C1).
        self.src_jiffies_at_detach = io.src_stack.jiffies(io.now);

        // Sockets in non-migratable states (mid-handshake, closing) are not
        // worth carrying: release them so the source keeps no residue. The
        // application sees them as closed after restore.
        let stale: Vec<SockId> = io
            .proc
            .fds
            .sockets()
            .filter(|(_, sid)| io.src_stack.sock(*sid).is_none_or(|s| !s.is_migratable()))
            .map(|(_, sid)| sid)
            .collect();
        for sid in stale {
            io.src_stack.release(sid);
        }

        // Disable and subtract every migratable socket, in fd order.
        let socks = Self::migratable_sockets(io.proc, io.src_stack)
            .into_iter()
            .map(|(fd, sid, _)| (fd, sid))
            .collect::<Vec<_>>();

        let mut sock_bytes = 0u64;
        let mut sock_time = 0u64;
        for (fd, sid) in socks {
            let sock = io
                .src_stack
                .detach_socket(sid)
                .expect("socket listed in fd table exists");
            // Remove any destination-side rules this host held for it (no
            // residual dependencies on re-migration), and carry along its
            // view of other migrated peers.
            io.src_stack.xlate.remove_self(sock.local());
            self.carried_rules
                .extend(io.src_stack.xlate.take_rules_for(sock.local()));
            let parked_nonempty = match &sock {
                Socket::Tcp(t) => !t.parked_queues_empty(),
                _ => false,
            };
            sink.emit(
                io.now,
                Effect::SocketDetached {
                    sock: sid,
                    parked_nonempty,
                },
            );
            let b = match self.strategy {
                Strategy::Iterative | Strategy::Collective => sock.record_len(),
                Strategy::IncrementalCollective => {
                    let since = self.sock_stamps.get(&sid).copied().unwrap_or(0);
                    sock.delta_len(since)
                }
            } + ATTACH_RECORD;
            sink.emit(
                io.now,
                Effect::Shipped {
                    class: ByteClass::FreezeSocket,
                    bytes: b,
                },
            );
            sock_bytes += b;
            if self.strategy == Strategy::Iterative {
                sock_time += self.cost.per_socket_iterative_us(b);
            }
            self.in_flight.push((fd, sock));
        }
        if self.strategy.is_collective() {
            sock_time = self.cost.bulk_us(sock_bytes);
        }

        // Final incremental memory step + the freeze records the leader
        // thread dumps (open-file table, thread registers, signal handlers).
        let update = incremental_update(&mut self.tracker, io.proc);
        let staged = self.staged.as_mut().expect("staged process exists");
        apply_update(staged, &update);
        let freeze = dvelm_ckpt::freeze_records(io.proc);
        let mem_bytes = update.transfer_bytes() + freeze.transfer_bytes();
        let mem_time = self.cost.bulk_us(mem_bytes);
        sink.emit(
            io.now,
            Effect::Shipped {
                class: ByteClass::FreezeMem,
                bytes: mem_bytes,
            },
        );

        self.phase = Phase::Restore;
        StepPlan {
            next_step_after_us: Some(sock_time + mem_time + self.cost.barrier_us),
        }
    }

    fn step_restore(&mut self, io: StepIo<'_>, sink: &mut dyn EffectSink) -> StepPlan {
        sink.emit(io.now, Effect::PhaseEntered(PhaseId::Restore));
        let mut staged = self.staged.take().expect("staged process exists");

        // Timestamp adjustment: difference between destination jiffies now
        // and source jiffies at checkpoint (§V-C1).
        let delta = io
            .dst_stack
            .jiffies(io.now)
            .delta(self.src_jiffies_at_detach);

        for (fd, mut sock) in self.in_flight.drain(..) {
            sock.apply_jiffies_delta(delta);
            let (sid, fx) = io.dst_stack.install_socket(sock, io.now);
            for effect in fx {
                sink.emit(
                    io.now,
                    Effect::Stack {
                        side: Side::Dst,
                        effect,
                    },
                );
            }
            // Reattach "to the right file descriptor of the process": the
            // BLCR-restored fd table has these slots empty (sockets were
            // omitted from the image).
            staged.fds.insert_at(fd, dvelm_proc::FdEntry::Socket(sid));
        }
        for rule in self.self_rules.drain(..) {
            io.dst_stack.xlate.install_self(rule);
        }
        for rule in self.carried_rules.drain(..) {
            io.dst_stack.xlate.install(rule);
        }

        // Re-inject captured packets through the okfn() path, then let the
        // process run.
        for key in self.capture_keys.drain(..) {
            for seg in io.dst_stack.capture.disable_and_drain(&key) {
                sink.emit(io.now, Effect::PacketReinjected);
                for effect in io.dst_stack.reinject(seg, io.now) {
                    sink.emit(
                        io.now,
                        Effect::Stack {
                            side: Side::Dst,
                            effect,
                        },
                    );
                }
            }
        }
        staged.resume_all();
        staged.cpu_share = io.proc.cpu_share;

        self.phase = Phase::Done;
        // Complete is the final effect of the migration, after every
        // destination stack effect above; its timestamp ends the freeze.
        sink.emit(
            io.now,
            Effect::Complete(MigrationComplete { process: staged }),
        );
        StepPlan {
            next_step_after_us: None,
        }
    }
}
