//! The migration timing model, calibrated to the paper's testbed (§VI-A:
//! 2.4 GHz dual-core Opterons, Gigabit Ethernet everywhere).
//!
//! Every phase of a migration costs simulated time computed from byte
//! counts: CPU serialization/restoration rates, wire bandwidth, one-way
//! latency and fixed per-message software overhead. The same constants drive
//! all three socket-migration strategies, so the Fig. 5b/5c comparisons fall
//! out of the *protocol structure* (how many messages, how many bytes), not
//! out of per-strategy fudge factors.

use dvelm_sim::MILLISECOND;

/// Timing/cost parameters of the cluster hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// In-cluster wire bandwidth, bytes/second (GigE payload rate).
    pub bandwidth: u64,
    /// One-way in-cluster latency, µs.
    pub latency_us: u64,
    /// Fixed software overhead per message (syscalls, kernel traversal), µs.
    pub msg_overhead_us: u64,
    /// Checkpoint serialization rate (memcpy-bound), bytes/second.
    pub serialize_rate: u64,
    /// Restore/apply rate on the destination, bytes/second.
    pub restore_rate: u64,
    /// Installing one capture-table entry, µs.
    pub capture_entry_us: u64,
    /// Signal delivery + handler entry per checkpoint request, µs.
    pub signal_us: u64,
    /// Thread barrier + leader election in the freeze protocol, µs.
    pub barrier_us: u64,
    /// Initial precopy loop timeout, µs (halved per iteration, §III-A).
    pub initial_loop_timeout_us: u64,
    /// Freeze threshold: when the loop timeout reaches this, the final
    /// checkpoint is signalled (20 ms in the prototype).
    pub freeze_threshold_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            bandwidth: 125_000_000,
            latency_us: 25,
            msg_overhead_us: 30,
            serialize_rate: 2_000_000_000,
            restore_rate: 1_500_000_000,
            capture_entry_us: 2,
            signal_us: 80,
            barrier_us: 150,
            initial_loop_timeout_us: 320 * MILLISECOND,
            freeze_threshold_us: 20 * MILLISECOND,
        }
    }
}

impl CostModel {
    /// CPU time to serialize `bytes` of checkpoint data, µs.
    pub fn serialize_us(&self, bytes: u64) -> u64 {
        (bytes.saturating_mul(1_000_000) / self.serialize_rate).max(1)
    }

    /// CPU time to apply `bytes` of checkpoint data on the destination, µs.
    pub fn restore_us(&self, bytes: u64) -> u64 {
        (bytes.saturating_mul(1_000_000) / self.restore_rate).max(1)
    }

    /// Wall time for one message of `bytes` to reach the destination, µs.
    pub fn transfer_us(&self, bytes: u64) -> u64 {
        self.msg_overhead_us + bytes.saturating_mul(1_000_000) / self.bandwidth + self.latency_us
    }

    /// A control-message round trip, µs.
    pub fn rtt_us(&self) -> u64 {
        2 * (self.msg_overhead_us + self.latency_us)
    }

    /// Time to enable `entries` capture-table entries on the destination,
    /// including the confirmation round trip (§III-B / §III-C phase one), µs.
    pub fn capture_setup_us(&self, entries: u64) -> u64 {
        self.rtt_us() + entries * self.capture_entry_us
    }

    /// End-to-end cost of shipping one standalone record (serialize,
    /// transfer, restore) — the per-socket cost of the *iterative* strategy,
    /// which also pays a capture round trip per socket, µs.
    pub fn per_socket_iterative_us(&self, record_bytes: u64) -> u64 {
        self.rtt_us()
            + self.serialize_us(record_bytes)
            + self.transfer_us(record_bytes)
            + self.restore_us(record_bytes)
    }

    /// Cost of shipping one aggregated buffer (serialize, transfer, restore)
    /// — the bulk phase of the collective strategies, µs.
    pub fn bulk_us(&self, bytes: u64) -> u64 {
        self.serialize_us(bytes) + self.transfer_us(bytes) + self.restore_us(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gige_transfer_rates() {
        let c = CostModel::default();
        // 1 MB at 125 MB/s = 8 ms on the wire plus fixed costs.
        assert_eq!(c.transfer_us(1_000_000), 30 + 8_000 + 25);
        assert_eq!(c.serialize_us(2_000_000), 1_000);
        assert_eq!(c.restore_us(1_500_000), 1_000);
    }

    #[test]
    fn aggregation_beats_iteration() {
        // The structural claim behind Fig. 5b: n small transfers cost more
        // than one big one because fixed per-message costs repeat.
        let c = CostModel::default();
        let n = 1024u64;
        let rec = 3_000u64;
        let iterative: u64 = (0..n).map(|_| c.per_socket_iterative_us(rec)).sum();
        let collective = c.capture_setup_us(n) + c.bulk_us(n * rec);
        assert!(
            iterative > 3 * collective,
            "iterative {iterative}µs vs collective {collective}µs"
        );
    }

    #[test]
    fn iterative_cost_matches_paper_scale() {
        // ~1024 connections → iterative freeze in the 100-300 ms band
        // (paper: ≈180 ms).
        let c = CostModel::default();
        let total: u64 = (0..1024u64).map(|_| c.per_socket_iterative_us(3_000)).sum();
        assert!((100_000..300_000).contains(&total), "{total}µs");
    }

    #[test]
    fn collective_cost_matches_paper_scale() {
        // ~3 MB aggregate → collective bulk in the 25-80 ms band
        // (paper: ≈65 ms at 1024 connections including memory).
        let c = CostModel::default();
        let total = c.capture_setup_us(1024) + c.bulk_us(3_000_000);
        assert!((25_000..80_000).contains(&total), "{total}µs");
    }

    #[test]
    fn loop_timeout_schedule_reaches_threshold() {
        let c = CostModel::default();
        let mut t = c.initial_loop_timeout_us;
        let mut iters = 0;
        while t > c.freeze_threshold_us {
            t = (t / 2).max(c.freeze_threshold_us);
            iters += 1;
        }
        assert_eq!(iters, 4, "320→160→80→40→20 ms");
    }
}
