//! End-to-end engine tests: drive a full migration through the effect
//! pipeline, dispatching the effect stream the way the cluster runtime does
//! and deriving reports with a [`TraceRecorder`].
//!
//! These live in an integration test (not `engine.rs` unit tests) on
//! purpose: the recorder comes from `dvelm-metrics`, which itself depends on
//! `dvelm-migrate` — only an externally linked test crate sees the same
//! `Effect` type on both sides of that dev-dependency cycle.

use bytes::Bytes;
use dvelm_metrics::TraceRecorder;
use dvelm_migrate::{
    CostModel, Effect, EffectBuf, MigrationEngine, MigrationReport, PhaseId, Side, StepIo, Strategy,
};
use dvelm_net::{Ip, NodeId, SockAddr};
use dvelm_proc::{FdEntry, Pid, Process};
use dvelm_sim::{DetRng, SimTime, MILLISECOND, SECOND};
use dvelm_stack::xlate::XlateRule;
use dvelm_stack::{HostStack, SockId, Socket, StackEffect, TcpState};

/// Multi-host test world that shuttles frames synchronously (zero
/// latency) and drives the engine through its schedule.
struct World {
    hosts: Vec<HostStack>,
    now: SimTime,
}

const SRC: usize = 0;
const DST: usize = 1;
const PEER: usize = 2; // database host
const CLIENT: usize = 3;

impl World {
    fn new() -> World {
        World {
            hosts: vec![
                HostStack::server_node(NodeId(0), 1_000, 1),
                HostStack::server_node(NodeId(1), 5_000_000, 2),
                HostStack::server_node(NodeId(2), 77, 3),
                HostStack::client_host(NodeId(100), 42, 4),
            ],
            now: SimTime::ZERO,
        }
    }

    fn route(&mut self, ip: Ip) -> Vec<usize> {
        if ip == Ip::CLUSTER_PUBLIC {
            // Broadcast configuration: all server nodes receive it.
            (0..3).collect()
        } else {
            self.hosts
                .iter()
                .position(|h| h.public_ip == ip || h.local_ip == ip)
                .into_iter()
                .collect()
        }
    }

    fn pump(&mut self, fx: Vec<StackEffect>) {
        let mut queue: Vec<StackEffect> = fx;
        while let Some(e) = queue.pop() {
            if let StackEffect::Tx { seg, route } = e {
                for target in self.route(route) {
                    let fx = self.hosts[target].on_rx(seg.clone(), self.now);
                    queue.extend(fx);
                }
            }
        }
    }

    fn send(&mut self, host: usize, sid: SockId, data: &[u8]) {
        let fx = self.hosts[host].send(sid, Bytes::copy_from_slice(data), self.now);
        self.pump(fx);
    }

    fn split(&mut self, a: usize, b: usize) -> (&mut HostStack, &mut HostStack) {
        assert!(a < b);
        let (left, right) = self.hosts.split_at_mut(b);
        (&mut left[a], &mut right[0])
    }
}

/// A server process on SRC with `n` client TCP connections (from the
/// client host, via the public broadcast interface) and one in-cluster
/// "MySQL" connection to PEER.
fn setup(world: &mut World, n: usize) -> (Process, Vec<SockId>, SockId, SockId) {
    let mut proc = Process::new(Pid(1), "zone_serv", 64, 512);
    // Listener on the public interface.
    let laddr = SockAddr::new(Ip::CLUSTER_PUBLIC, 5000);
    let listener = world.hosts[SRC].tcp_listen(laddr).unwrap();
    proc.fds.insert(FdEntry::Socket(listener));

    // DB listener on the peer host.
    let db_addr = SockAddr::new(world.hosts[PEER].local_ip, 3306);
    world.hosts[PEER].tcp_listen(db_addr).unwrap();

    // Client connections.
    let mut client_sids = Vec::new();
    for _ in 0..n {
        let (cid, fx) = world.hosts[CLIENT].tcp_connect_public(laddr, world.now);
        world.pump(fx);
        client_sids.push(cid);
    }
    // Register the accepted children in the process fd table.
    let children: Vec<SockId> = world.hosts[SRC]
        .socket_ids()
        .into_iter()
        .filter(|s| *s != listener)
        .collect();
    assert_eq!(children.len(), n, "every client connection accepted");
    for c in &children {
        assert_eq!(
            world.hosts[SRC].sock(*c).unwrap().tcp().state,
            TcpState::Established
        );
        proc.fds.insert(FdEntry::Socket(*c));
    }

    // The MySQL session.
    let (db_sid, fx) = world.hosts[SRC].tcp_connect_local(db_addr, world.now);
    world.pump(fx);
    proc.fds.insert(FdEntry::Socket(db_sid));
    assert_eq!(
        world.hosts[SRC].sock(db_sid).unwrap().tcp().state,
        TcpState::Established
    );

    (proc, client_sids, db_sid, listener)
}

/// Drive a full migration, dispatching the effect stream like the
/// cluster runtime does (zero-latency harness) and deriving the report
/// with a [`TraceRecorder`]. Returns (report, restored process, xlate
/// requests seen).
fn run_migration(
    world: &mut World,
    proc: &mut Process,
    strategy: Strategy,
    mut between_steps: impl FnMut(&mut World, &mut Process, bool),
) -> (MigrationReport, Process, Vec<(NodeId, XlateRule)>) {
    let started_at = world.now;
    let mut engine = MigrationEngine::new(
        proc.pid,
        NodeId(0),
        NodeId(1),
        strategy,
        CostModel::default(),
    );
    let mut recorder = TraceRecorder::new(proc.pid, strategy, started_at);
    let mut xlates = Vec::new();
    let mut suspended = false;
    let mut buf = EffectBuf::new();
    loop {
        let now = world.now;
        let plan = {
            let (src, dst) = world.split(SRC, DST);
            engine.step(
                StepIo {
                    now,
                    src_stack: src,
                    dst_stack: dst,
                    proc,
                },
                &mut buf,
            )
        };
        let mut restored = None;
        for (at, effect) in buf.take() {
            recorder.observe(at, &effect);
            match effect {
                Effect::SuspendApp => suspended = true,
                // Deliver translation rules to peers immediately
                // (zero-latency harness).
                Effect::SendXlate { peer, rule } => {
                    let idx = world.hosts.iter().position(|h| h.node == peer).unwrap();
                    world.hosts[idx].xlate.install_at(rule, at);
                    xlates.push((peer, rule));
                }
                Effect::Stack { effect, .. } => world.pump(vec![effect]),
                Effect::Complete(c) => restored = Some(c.process),
                Effect::Aborted(a) => {
                    panic!(
                        "no abort expected in the happy-path harness: {:?}",
                        a.reason
                    )
                }
                Effect::PhaseEntered(_)
                | Effect::InstallCapture { .. }
                | Effect::RemoveCapture { .. }
                | Effect::SocketDetached { .. }
                | Effect::Shipped { .. }
                | Effect::PacketReinjected
                | Effect::ResumeApp
                | Effect::QueuePressure { .. }
                | Effect::RevokeXlate { .. }
                // The harness zone-less engine never emits these; the
                // zoned lifecycle is covered by the cluster-level
                // zone-handoff matrix.
                | Effect::Subscribe { .. }
                | Effect::Unsubscribe { .. } => {}
            }
        }
        if let Some(process) = restored {
            return (recorder.into_report(), process, xlates);
        }
        let wait = plan
            .next_step_after_us
            .expect("engine not done must reschedule");
        world.now += wait;
        between_steps(world, proc, suspended);
    }
}

#[test]
fn migration_preserves_streams_end_to_end() {
    let mut world = World::new();
    let (mut proc, client_sids, _db, _l) = setup(&mut world, 4);

    // Pre-migration traffic.
    for &c in &client_sids {
        world.send(CLIENT, c, b"pre|");
    }

    let (report, restored, _) = run_migration(
        &mut world,
        &mut proc,
        Strategy::IncrementalCollective,
        |world, proc, suspended| {
            if !suspended {
                // App keeps working during precopy.
                let mut rng = DetRng::new(1);
                proc.do_work(&mut rng, 5);
                let sids = client_sids.clone();
                for &c in &sids {
                    world.send(CLIENT, c, b"live|");
                }
            }
        },
    );
    assert!(report.freeze_us() > 0);
    assert_eq!(report.sockets_migrated as usize, 4 + 1 + 1); // clients + listener + db

    // Post-migration traffic flows to the destination sockets.
    for &c in &client_sids {
        world.send(CLIENT, c, b"post");
    }
    let mut total = Vec::new();
    for (_, sid) in restored.fds.sockets() {
        if let Some(Socket::Tcp(t)) = world.hosts[DST].sock(sid) {
            if t.state == TcpState::Established
                && t.remote.unwrap().ip != world.hosts[PEER].local_ip
            {
                let got: Vec<u8> = world.hosts[DST]
                    .read_tcp(sid, world.now)
                    .iter()
                    .flat_map(|s| s.payload.to_vec())
                    .collect();
                total.push(got);
            }
        }
    }
    assert_eq!(total.len(), 4);
    for got in total {
        let s = String::from_utf8(got).unwrap();
        assert!(s.ends_with("post"), "stream continuity broken: {s:?}");
        assert_eq!(s.matches("post").count(), 1, "no duplication: {s:?}");
    }
    // Source keeps no residue.
    assert_eq!(
        world.hosts[SRC].socket_count(),
        0,
        "no residual sockets on source"
    );
}

#[test]
fn freeze_time_ordering_matches_fig5b() {
    // iterative > collective > incremental collective, at 128 conns.
    let mut freeze = Vec::new();
    for strategy in Strategy::ALL {
        let mut world = World::new();
        let (mut proc, client_sids, _db, _l) = setup(&mut world, 128);
        let (report, _, _) =
            run_migration(&mut world, &mut proc, strategy, |world, proc, suspended| {
                if !suspended {
                    let mut rng = DetRng::new(2);
                    proc.do_work(&mut rng, 10);
                    for &c in client_sids.iter().take(16) {
                        world.send(CLIENT, c, b"tick");
                    }
                }
            });
        freeze.push((strategy, report.freeze_us()));
    }
    assert!(
        freeze[0].1 > freeze[1].1,
        "iterative {} must exceed collective {}",
        freeze[0].1,
        freeze[1].1
    );
    assert!(
        freeze[1].1 > freeze[2].1,
        "collective {} must exceed incremental {}",
        freeze[1].1,
        freeze[2].1
    );
}

#[test]
fn incremental_ships_fewer_freeze_bytes() {
    let mut bytes = Vec::new();
    for strategy in [Strategy::Collective, Strategy::IncrementalCollective] {
        let mut world = World::new();
        let (mut proc, _c, _db, _l) = setup(&mut world, 64);
        let (report, _, _) = run_migration(&mut world, &mut proc, strategy, |_, _, _| {});
        bytes.push(report.freeze_socket_bytes);
    }
    assert!(
        bytes[1] * 4 < bytes[0],
        "incremental freeze bytes {} should be ≪ collective {}",
        bytes[1],
        bytes[0]
    );
}

#[test]
fn packets_during_freeze_are_captured_and_reinjected() {
    let mut world = World::new();
    let (mut proc, client_sids, _db, _l) = setup(&mut world, 2);
    let (report, restored, _) = run_migration(
        &mut world,
        &mut proc,
        Strategy::Collective,
        |world, _proc, suspended| {
            if suspended {
                // Clients keep sending while the server is frozen.
                let sids = client_sids.clone();
                for &c in &sids {
                    world.send(CLIENT, c, b"blackout");
                }
            }
        },
    );
    assert!(
        report.packets_reinjected > 0,
        "capture engaged during freeze"
    );
    // Every blackout byte arrives exactly once after restore.
    for (_, sid) in restored.fds.sockets() {
        if let Some(Socket::Tcp(t)) = world.hosts[DST].sock(sid) {
            if t.state == TcpState::Established
                && t.remote.unwrap().ip != world.hosts[PEER].local_ip
            {
                let got: Vec<u8> = world.hosts[DST]
                    .read_tcp(sid, world.now)
                    .iter()
                    .flat_map(|s| s.payload.to_vec())
                    .collect();
                let s = String::from_utf8(got).unwrap();
                assert!(!s.is_empty(), "blackout data lost");
                assert!(
                    s.len().is_multiple_of(8) && s.as_bytes().chunks(8).all(|c| c == b"blackout")
                );
            }
        }
    }
}

#[test]
fn in_cluster_connection_survives_via_translation() {
    let mut world = World::new();
    let (mut proc, _c, db_sid, _l) = setup(&mut world, 1);
    let db_child = world.hosts[PEER]
        .socket_ids()
        .into_iter()
        .next_back()
        .unwrap();
    let _ = db_sid;
    let (_report, restored, xlates) = run_migration(
        &mut world,
        &mut proc,
        Strategy::IncrementalCollective,
        |_, _, _| {},
    );
    assert_eq!(
        xlates.len(),
        1,
        "one translation request for the MySQL session"
    );
    assert_eq!(xlates[0].0, NodeId(2));

    // The migrated socket still talks to the DB transparently.
    let new_db_sid = restored
        .fds
        .sockets()
        .map(|(_, s)| s)
        .find(|s| {
            world.hosts[DST].sock(*s).is_some_and(|k| {
                k.remote()
                    .is_some_and(|r| r.ip == world.hosts[PEER].local_ip)
            })
        })
        .expect("db socket restored");
    let fx = world.hosts[DST].send(new_db_sid, Bytes::from_static(b"INSERT"), world.now);
    world.pump(fx);
    let got: Vec<u8> = world.hosts[PEER]
        .read_tcp(db_child, world.now)
        .iter()
        .flat_map(|s| s.payload.to_vec())
        .collect();
    assert_eq!(got, b"INSERT");

    // And the reply comes back, translated.
    let fx = world.hosts[PEER].send(db_child, Bytes::from_static(b"ACK"), world.now);
    world.pump(fx);
    let got: Vec<u8> = world.hosts[DST]
        .read_tcp(new_db_sid, world.now)
        .iter()
        .flat_map(|s| s.payload.to_vec())
        .collect();
    assert_eq!(got, b"ACK");
}

#[test]
fn listener_migrates_and_accepts_on_destination() {
    let mut world = World::new();
    let (mut proc, _c, _db, _l) = setup(&mut world, 1);
    let (_report, restored, _) =
        run_migration(&mut world, &mut proc, Strategy::Collective, |_, _, _| {});
    // A brand-new client connects after migration: only DST owns the
    // port now.
    let laddr = SockAddr::new(Ip::CLUSTER_PUBLIC, 5000);
    let before = world.hosts[DST].socket_count();
    let (_cid, fx) = world.hosts[CLIENT].tcp_connect_public(laddr, world.now);
    world.pump(fx);
    assert_eq!(
        world.hosts[DST].socket_count(),
        before + 1,
        "new child accepted on DST"
    );
    let _ = restored;
}

#[test]
fn memory_contents_identical_after_restore() {
    let mut world = World::new();
    let (mut proc, _c, _db, _l) = setup(&mut world, 2);
    let mut rng = DetRng::new(33);
    proc.do_work(&mut rng, 400);
    let src_hash_cell = std::cell::Cell::new(0u64);
    let (_report, restored, _) = run_migration(
        &mut world,
        &mut proc,
        Strategy::IncrementalCollective,
        |_, p, suspended| {
            if !suspended {
                let mut rng = DetRng::new(34);
                p.do_work(&mut rng, 50);
            }
            src_hash_cell.set(p.addr_space.content_hash());
        },
    );
    assert_eq!(
        restored.addr_space.content_hash(),
        proc.addr_space.content_hash(),
        "restored memory differs from source"
    );
    assert!(!restored.is_frozen(), "threads resumed");
    assert_eq!(restored.threads.len(), proc.threads.len());
}

#[test]
fn postcopy_family_completes_with_residual_counters() {
    // Both residual strategies complete through DemandResolve, restore
    // byte-identical memory, and account every deferred page exactly once
    // (demand-fetched or written back, never both, never dropped).
    for strategy in [Strategy::PostCopy, Strategy::Hybrid { precopy_rounds: 2 }] {
        let mut world = World::new();
        let (mut proc, _c, _db, _l) = setup(&mut world, 8);
        let mut rng = DetRng::new(35);
        proc.do_work(&mut rng, 400);
        let (report, restored, _) =
            run_migration(&mut world, &mut proc, strategy, |_, p, suspended| {
                if !suspended {
                    let mut rng = DetRng::new(36);
                    p.do_work(&mut rng, 50);
                }
            });
        assert!(!report.is_aborted(), "{strategy}");
        assert!(
            report
                .phase_log
                .iter()
                .any(|(label, _)| *label == PhaseId::DemandResolve.label()),
            "{strategy} must pass through demand-resolve: {:?}",
            report.phase_log
        );
        assert!(
            report.demand_fetch_pages + report.writeback_pages > 0,
            "{strategy} must defer pages to the ledger"
        );
        assert_eq!(
            report.residual_bytes(),
            report.demand_fetch_bytes + report.writeback_bytes
        );
        assert_eq!(
            restored.addr_space.content_hash(),
            proc.addr_space.content_hash(),
            "{strategy}: restored memory differs from source after resolve"
        );
        assert!(!restored.is_frozen(), "{strategy}: threads resumed");
    }
    // The paper strategies never touch the ledger.
    let mut world = World::new();
    let (mut proc, _c, _db, _l) = setup(&mut world, 8);
    let (report, _, _) = run_migration(
        &mut world,
        &mut proc,
        Strategy::IncrementalCollective,
        |_, _, _| {},
    );
    assert_eq!(report.demand_fetch_pages, 0);
    assert_eq!(report.writeback_pages, 0);
}

#[test]
fn postcopy_switchover_beats_precopy_freeze() {
    // The post-copy family's selling point: downtime is the switch-over
    // window only — the dirty set is deferred to the ledger. Compare
    // like-for-like on socket cost: post-copy ships full records (like
    // collective) and must beat collective's freeze; hybrid ships deltas
    // (like incremental) and must beat incremental's. Hybrid's bounded
    // precopy prefix also keeps the residual ledger smaller than pure
    // post-copy's.
    let freeze_of = |strategy| {
        let mut world = World::new();
        let (mut proc, client_sids, _db, _l) = setup(&mut world, 64);
        let mut rng = DetRng::new(37);
        proc.do_work(&mut rng, 200);
        let (report, _, _) =
            run_migration(&mut world, &mut proc, strategy, |world, p, suspended| {
                if !suspended {
                    let mut rng = DetRng::new(38);
                    p.do_work(&mut rng, 20);
                    for &c in client_sids.iter().take(8) {
                        world.send(CLIENT, c, b"tick");
                    }
                }
            });
        report
    };
    let coll = freeze_of(Strategy::Collective);
    let inc = freeze_of(Strategy::IncrementalCollective);
    let post = freeze_of(Strategy::PostCopy);
    let hybrid = freeze_of(Strategy::Hybrid { precopy_rounds: 2 });
    assert!(
        post.freeze_us() < coll.freeze_us(),
        "post-copy switch-over {} must beat collective freeze {}",
        post.freeze_us(),
        coll.freeze_us()
    );
    assert!(
        hybrid.freeze_us() < inc.freeze_us(),
        "hybrid switch-over {} must beat incremental freeze {}",
        hybrid.freeze_us(),
        inc.freeze_us()
    );
    assert!(
        hybrid.demand_fetch_pages + hybrid.writeback_pages
            < post.demand_fetch_pages + post.writeback_pages,
        "hybrid's precopy prefix must shrink the residual ledger: {} vs {}",
        hybrid.demand_fetch_pages + hybrid.writeback_pages,
        post.demand_fetch_pages + post.writeback_pages
    );
}

#[test]
fn udp_socket_migrates() {
    let mut world = World::new();
    let mut proc = Process::new(Pid(2), "oa_server", 32, 128);
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 27960);
    let usid = world.hosts[SRC].udp_bind(addr).unwrap();
    proc.fds.insert(FdEntry::Socket(usid));
    let client_sid = world.hosts[CLIENT].udp_bind_ephemeral();

    let (report, restored, _) = run_migration(
        &mut world,
        &mut proc,
        Strategy::IncrementalCollective,
        |world, _p, _s| {
            let fx = world.hosts[CLIENT].udp_send_to(
                client_sid,
                addr,
                Bytes::from_static(b"cmd"),
                world.now,
            );
            world.pump(fx);
        },
    );
    assert_eq!(report.sockets_migrated, 1);
    let (_, new_sid) = restored.fds.sockets().next().unwrap();
    // Post-migration datagrams arrive at the destination.
    let fx =
        world.hosts[CLIENT].udp_send_to(client_sid, addr, Bytes::from_static(b"post"), world.now);
    world.pump(fx);
    let dgrams = world.hosts[DST].read_udp(new_sid);
    assert!(
        dgrams.iter().any(|d| &d.skb.payload[..] == b"post"),
        "datagram did not reach the migrated UDP socket"
    );
}

#[test]
fn freeze_threshold_schedule() {
    // 320 → 160 → 80 → 40 → 20 ms: freeze begins on the 5th precopy
    // iteration after the full copy.
    let mut world = World::new();
    let (mut proc, _c, _db, _l) = setup(&mut world, 1);
    let (report, _, _) = run_migration(&mut world, &mut proc, Strategy::Collective, |_, _, _| {});
    assert_eq!(report.precopy_iterations, 1 + 4);
    // Total precopy duration ≈ sum of the timeout schedule.
    assert!(report.total_us() > 500 * MILLISECOND);
    assert!(report.total_us() < 2 * SECOND);
}

#[test]
fn effect_stream_honors_ordering_contract() {
    // SuspendApp precedes every source stack effect; Complete is the
    // final effect; exactly one of each per migration.
    let mut world = World::new();
    let (mut proc, client_sids, _db, _l) = setup(&mut world, 3);
    let mut engine = MigrationEngine::new(
        proc.pid,
        NodeId(0),
        NodeId(1),
        Strategy::IncrementalCollective,
        CostModel::default(),
    );
    let mut buf = EffectBuf::new();
    let mut stream = Vec::new();
    loop {
        let now = world.now;
        let plan = {
            let (src, dst) = world.split(SRC, DST);
            engine.step(
                StepIo {
                    now,
                    src_stack: src,
                    dst_stack: dst,
                    proc: &mut proc,
                },
                &mut buf,
            )
        };
        let mut done = false;
        for (at, effect) in buf.take() {
            if let Effect::Stack { effect, .. } = &effect {
                let _ = effect; // stack effects not pumped: ordering test only
            }
            done |= matches!(effect, Effect::Complete(_));
            stream.push((at, effect));
        }
        if done {
            break;
        }
        world.now += plan.next_step_after_us.expect("reschedules");
        // Traffic during precopy so source stack effects exist.
        for &c in &client_sids {
            world.send(CLIENT, c, b"x");
        }
    }
    let pos = |pred: &dyn Fn(&Effect) -> bool| stream.iter().position(|(_, e)| pred(e));
    let suspend = pos(&|e| matches!(e, Effect::SuspendApp)).expect("SuspendApp emitted");
    let first_src = pos(&|e| {
        matches!(
            e,
            Effect::Stack {
                side: Side::Src,
                ..
            }
        )
    });
    if let Some(first_src) = first_src {
        assert!(suspend < first_src, "SuspendApp before src stack effects");
    }
    let complete = pos(&|e| matches!(e, Effect::Complete(_))).expect("Complete emitted");
    assert_eq!(complete, stream.len() - 1, "Complete is the final effect");
    assert_eq!(
        stream
            .iter()
            .filter(|(_, e)| matches!(e, Effect::SuspendApp))
            .count(),
        1
    );
    // Timestamps never decrease along the stream.
    assert!(stream.windows(2).all(|w| w[0].0 <= w[1].0));
    // Phases appear in protocol order.
    let phases: Vec<PhaseId> = stream
        .iter()
        .filter_map(|(_, e)| match e {
            Effect::PhaseEntered(p) => Some(*p),
            _ => None,
        })
        .collect();
    assert_eq!(phases[0], PhaseId::PrecopyFull);
    assert_eq!(
        phases[phases.len() - 3..],
        [
            PhaseId::FreezeCapture,
            PhaseId::FreezeDetach,
            PhaseId::Restore
        ]
    );
}

#[test]
fn kernel_initiated_checkpoint_catches_locked_sockets() {
    // §III-A/§V-C ablation: with signal-based notification, a socket
    // that was user-locked when the migration started is unlocked (the
    // thread returns to userspace) and its backlog is processed before
    // the dump; with kernel-initiated checkpointing the parked queues
    // reach the freeze phase non-empty and must be shipped.
    for (signal_based, expect_parked) in [(true, 0u32), (false, 1u32)] {
        let mut world = World::new();
        let (mut proc, client_sids, _db, _l) = setup(&mut world, 2);

        // The app "holds the socket lock" on one connection; a segment
        // arrives and parks on the backlog.
        let target = proc
            .fds
            .sockets()
            .map(|(_, s)| s)
            .find(|s| {
                world.hosts[SRC].sock(*s).is_some_and(|k| {
                    k.is_tcp() && !k.is_listener() && k.remote().is_some_and(|r| !r.ip.is_local())
                })
            })
            .expect("a client connection");
        world.hosts[SRC]
            .sock_mut(target)
            .unwrap()
            .tcp_mut()
            .user_locked = true;
        world.send(CLIENT, client_sids[0], b"parked");
        world.send(CLIENT, client_sids[1], b"normal");

        let mut engine = MigrationEngine::new(
            proc.pid,
            NodeId(0),
            NodeId(1),
            Strategy::Collective,
            CostModel::default(),
        );
        engine.signal_based = signal_based;
        let mut recorder = TraceRecorder::new(proc.pid, Strategy::Collective, world.now);
        let mut buf = EffectBuf::new();
        'mig: loop {
            let now = world.now;
            let plan = {
                let (src, dst) = world.split(SRC, DST);
                engine.step(
                    StepIo {
                        now,
                        src_stack: src,
                        dst_stack: dst,
                        proc: &mut proc,
                    },
                    &mut buf,
                )
            };
            for (at, effect) in buf.take() {
                recorder.observe(at, &effect);
                match effect {
                    Effect::Stack { effect, .. } => world.pump(vec![effect]),
                    Effect::Complete(_) => break 'mig,
                    _ => {}
                }
            }
            world.now += plan.next_step_after_us.expect("reschedules");
        }
        assert_eq!(
            recorder.into_report().parked_nonempty_sockets,
            expect_parked,
            "signal_based={signal_based}"
        );
    }
}

#[test]
fn closing_socket_is_released_not_migrated() {
    let mut world = World::new();
    let (mut proc, _client_sids, _db, _l) = setup(&mut world, 3);
    // Close one server-side client connection: it leaves Established
    // (FinWait) and becomes non-migratable.
    let victim = proc
        .fds
        .sockets()
        .map(|(_, s)| s)
        .find(|s| {
            world.hosts[SRC].sock(*s).is_some_and(|k| {
                k.is_tcp() && !k.is_listener() && k.remote().is_some_and(|r| !r.ip.is_local())
            })
        })
        .expect("a client connection");
    let now = world.now;
    let fx = world.hosts[SRC].close(victim, now);
    world.pump(fx);

    let (report, restored, _) =
        run_migration(&mut world, &mut proc, Strategy::Collective, |_, _, _| {});
    // clients(3) - closing(1) + listener + db
    assert_eq!(report.sockets_migrated, 3 - 1 + 2);
    assert_eq!(
        world.hosts[SRC].socket_count(),
        0,
        "closing socket released, no residue"
    );
    assert_eq!(
        restored.fds.socket_count(),
        4,
        "the closing fd is not reattached"
    );
}

#[test]
fn report_accounting_is_consistent() {
    let mut world = World::new();
    let (mut proc, _c, _db, _l) = setup(&mut world, 8);
    let (report, _, _) = run_migration(
        &mut world,
        &mut proc,
        Strategy::IncrementalCollective,
        |_, _, _| {},
    );
    assert!(report.precopy_bytes > 0);
    assert!(report.freeze_bytes >= report.freeze_socket_bytes);
    assert_eq!(
        report.total_bytes(),
        report.precopy_bytes + report.freeze_bytes
    );
    assert!(report.frozen_at > report.started_at);
    assert!(report.resumed_at > report.frozen_at);
    assert!(report.freeze_us() < 100 * MILLISECOND);
}
