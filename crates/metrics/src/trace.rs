//! The migration trace spine: per-migration phase timelines and report
//! derivation from the typed effect stream.
//!
//! A [`TraceRecorder`] consumes the ordered, timestamped
//! [`Effect`] stream one migration emits and produces
//! two views of it:
//!
//! * a [`MigrationReport`] — the Fig. 4 / 5b / 5c record — *derived* from
//!   the stream instead of hand-assembled inside the engine (`frozen_at` is
//!   the `SuspendApp` timestamp, `resumed_at` the `Complete` timestamp,
//!   byte counters come from `Shipped` effects, and so on);
//! * a list of [`PhaseSpan`]s — enter/exit instant, bytes shipped, sockets
//!   touched and packets re-injected per protocol phase — the per-migration
//!   timeline behind `migration_timeline`-style renderings.
//!
//! The recorder is a pure fold over the stream: feeding the same effects in
//! the same order always yields the same report, which is what makes the
//! effect pipeline the single source of truth for measurements.

use dvelm_migrate::{ByteClass, Effect, MigrationReport, PhaseId, Strategy};
use dvelm_proc::Pid;
use dvelm_sim::SimTime;

/// One protocol phase as observed on the effect stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpan {
    /// Which phase.
    pub phase: PhaseId,
    /// When the engine entered it.
    pub entered_at: SimTime,
    /// When the next phase was entered (or the migration completed);
    /// `None` while the phase is still open.
    pub exited_at: Option<SimTime>,
    /// Bytes shipped during the phase (all [`ByteClass`]es).
    pub bytes: u64,
    /// Sockets touched: capture entries installed plus sockets detached.
    pub sockets_touched: u32,
    /// Captured packets re-injected during the phase.
    pub packets_reinjected: u64,
}

impl PhaseSpan {
    /// Phase duration, µs (zero while the phase is still open).
    pub fn duration_us(&self) -> u64 {
        self.exited_at
            .map(|t| t.saturating_since(self.entered_at))
            .unwrap_or(0)
    }
}

/// Folds one migration's effect stream into a [`MigrationReport`] plus a
/// per-phase timeline.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    report: MigrationReport,
    spans: Vec<PhaseSpan>,
    captures_enabled: u32,
    captures_removed: u32,
    xlate_rules_sent: u32,
    xlate_rules_revoked: u32,
    pressure_events: u32,
    shed_packets: u64,
    peak_queued_packets: u64,
    peak_queued_bytes: u64,
    /// Whether a `SuspendApp` was observed — i.e. the application actually
    /// stopped at some point.
    suspended: bool,
    finished: bool,
}

impl TraceRecorder {
    /// Start recording a migration of `pid` under `strategy`, initiated at
    /// `started_at`.
    pub fn new(pid: Pid, strategy: Strategy, started_at: SimTime) -> TraceRecorder {
        TraceRecorder {
            report: MigrationReport::new(pid, strategy, started_at),
            spans: Vec::new(),
            captures_enabled: 0,
            captures_removed: 0,
            xlate_rules_sent: 0,
            xlate_rules_revoked: 0,
            pressure_events: 0,
            shed_packets: 0,
            peak_queued_packets: 0,
            peak_queued_bytes: 0,
            suspended: false,
            finished: false,
        }
    }

    /// Fold one effect, emitted at `at`, into the trace.
    pub fn observe(&mut self, at: SimTime, effect: &Effect) {
        match effect {
            Effect::PhaseEntered(phase) => {
                if let Some(open) = self.spans.last_mut() {
                    if open.exited_at.is_none() {
                        open.exited_at = Some(at);
                    }
                }
                self.spans.push(PhaseSpan {
                    phase: *phase,
                    entered_at: at,
                    exited_at: None,
                    bytes: 0,
                    sockets_touched: 0,
                    packets_reinjected: 0,
                });
                self.report.phase_log.push((phase.label(), at));
                if phase.is_precopy() {
                    self.report.precopy_iterations += 1;
                }
                // Post-copy family: the application resumes on the
                // destination when demand-resolve begins, not when the last
                // residual page lands — downtime ends here.
                if *phase == PhaseId::DemandResolve && self.suspended {
                    self.report.resumed_at = at;
                    self.suspended = false;
                }
            }
            Effect::SuspendApp => {
                self.report.frozen_at = at;
                self.suspended = true;
            }
            Effect::InstallCapture { .. } => {
                self.captures_enabled += 1;
                if let Some(open) = self.spans.last_mut() {
                    open.sockets_touched += 1;
                }
            }
            Effect::SendXlate { .. } => self.xlate_rules_sent += 1,
            Effect::Shipped { class, bytes } => {
                if let Some(open) = self.spans.last_mut() {
                    open.bytes += bytes;
                }
                match class {
                    ByteClass::PrecopyMem => self.report.precopy_bytes += bytes,
                    ByteClass::PrecopySocket => {
                        self.report.precopy_bytes += bytes;
                        self.report.precopy_socket_bytes += bytes;
                    }
                    ByteClass::FreezeMem => self.report.freeze_bytes += bytes,
                    ByteClass::FreezeSocket => {
                        self.report.freeze_bytes += bytes;
                        self.report.freeze_socket_bytes += bytes;
                    }
                    // Residual traffic is emitted one page per effect, so
                    // the effect count doubles as the page count.
                    ByteClass::DemandFetch => {
                        self.report.demand_fetch_bytes += bytes;
                        self.report.demand_fetch_pages += 1;
                    }
                    ByteClass::WriteBack => {
                        self.report.writeback_bytes += bytes;
                        self.report.writeback_pages += 1;
                    }
                }
            }
            Effect::SocketDetached {
                parked_nonempty, ..
            } => {
                self.report.sockets_migrated += 1;
                if *parked_nonempty {
                    self.report.parked_nonempty_sockets += 1;
                }
                if let Some(open) = self.spans.last_mut() {
                    open.sockets_touched += 1;
                }
            }
            Effect::PacketReinjected => {
                self.report.packets_reinjected += 1;
                if let Some(open) = self.spans.last_mut() {
                    open.packets_reinjected += 1;
                }
            }
            Effect::Stack { .. } => {}
            // Interest handoff rides the stream for ordering/observability;
            // the table itself lives in the router, so the trace only needs
            // the timestamps already carried by the effect log.
            Effect::Subscribe { .. } | Effect::Unsubscribe { .. } => {}
            Effect::QueuePressure {
                queued_packets,
                queued_bytes,
                shed_packets,
                ..
            } => {
                self.pressure_events += 1;
                self.shed_packets += shed_packets;
                self.peak_queued_packets = self.peak_queued_packets.max(*queued_packets);
                self.peak_queued_bytes = self.peak_queued_bytes.max(*queued_bytes);
            }
            Effect::Complete(_) => {
                // For the stop-and-copy strategies the app resumes at
                // completion; for the post-copy family `resumed_at` was
                // already closed at `DemandResolve` entry and completion
                // merely marks the ledger drained.
                if self.suspended {
                    self.report.resumed_at = at;
                    self.suspended = false;
                }
                if let Some(open) = self.spans.last_mut() {
                    if open.exited_at.is_none() {
                        open.exited_at = Some(at);
                    }
                }
                self.finished = true;
            }
            Effect::ResumeApp => self.report.resumed_at = at,
            Effect::RemoveCapture { .. } => self.captures_removed += 1,
            Effect::RevokeXlate { .. } => self.xlate_rules_revoked += 1,
            Effect::Aborted(a) => {
                self.report.aborted = Some((a.phase, a.reason));
                // The rollback instant closes the trace: an abort whose
                // recovery resumed or restored the source copy ends the
                // application's unresponsive interval here, so `freeze_us`
                // measures downtime for aborted migrations too. A precopy
                // abort never stopped the app — there is no unresponsive
                // interval to close, so `resumed_at` stays at `frozen_at`
                // and the freeze reads zero.
                if self.suspended {
                    self.report.resumed_at = at;
                }
                if let Some(open) = self.spans.last_mut() {
                    if open.exited_at.is_none() {
                        open.exited_at = Some(at);
                    }
                }
                self.report.phase_log.push(("aborted", at));
                self.finished = true;
            }
        }
    }

    /// Whether a `Complete` effect has been observed.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// The phase timeline so far.
    pub fn spans(&self) -> &[PhaseSpan] {
        &self.spans
    }

    /// Capture entries installed on the destination.
    pub fn captures_enabled(&self) -> u32 {
        self.captures_enabled
    }

    /// Capture entries rolled back by an abort.
    pub fn captures_removed(&self) -> u32 {
        self.captures_removed
    }

    /// Translation rules sent to in-cluster peers.
    pub fn xlate_rules_sent(&self) -> u32 {
        self.xlate_rules_sent
    }

    /// Translation rules recalled from peers by an abort.
    pub fn xlate_rules_revoked(&self) -> u32 {
        self.xlate_rules_revoked
    }

    /// Capture-queue budget-pressure incidents observed on the stream.
    pub fn pressure_events(&self) -> u32 {
        self.pressure_events
    }

    /// Packets shed or refused by capture-queue budgets.
    pub fn shed_packets(&self) -> u64 {
        self.shed_packets
    }

    /// High-water mark of (packets, bytes) queued in a pressured capture
    /// entry — zero unless pressure was observed.
    pub fn peak_queue_occupancy(&self) -> (u64, u64) {
        (self.peak_queued_packets, self.peak_queued_bytes)
    }

    /// The derived report so far (complete once [`finished`](Self::finished)).
    pub fn report(&self) -> &MigrationReport {
        &self.report
    }

    /// Consume the recorder, yielding the derived report.
    pub fn into_report(self) -> MigrationReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvelm_migrate::MigrationComplete;
    use dvelm_proc::Process;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + us
    }

    fn recorder() -> TraceRecorder {
        TraceRecorder::new(Pid(9), Strategy::IncrementalCollective, t(1_000))
    }

    #[test]
    fn derives_report_from_stream() {
        let mut r = recorder();
        r.observe(t(1_000), &Effect::PhaseEntered(PhaseId::PrecopyFull));
        r.observe(
            t(1_000),
            &Effect::Shipped {
                class: ByteClass::PrecopyMem,
                bytes: 4_000,
            },
        );
        r.observe(
            t(1_000),
            &Effect::Shipped {
                class: ByteClass::PrecopySocket,
                bytes: 300,
            },
        );
        r.observe(t(321_000), &Effect::PhaseEntered(PhaseId::PrecopyIter));
        r.observe(
            t(321_000),
            &Effect::Shipped {
                class: ByteClass::PrecopyMem,
                bytes: 512,
            },
        );
        r.observe(t(481_000), &Effect::PhaseEntered(PhaseId::FreezeCapture));
        r.observe(t(481_000), &Effect::SuspendApp);
        r.observe(t(483_000), &Effect::PhaseEntered(PhaseId::FreezeDetach));
        r.observe(
            t(483_000),
            &Effect::SocketDetached {
                sock: dvelm_stack::SockId(3),
                parked_nonempty: true,
            },
        );
        r.observe(
            t(483_000),
            &Effect::Shipped {
                class: ByteClass::FreezeSocket,
                bytes: 88,
            },
        );
        r.observe(
            t(483_000),
            &Effect::Shipped {
                class: ByteClass::FreezeMem,
                bytes: 1_024,
            },
        );
        r.observe(t(489_000), &Effect::PhaseEntered(PhaseId::Restore));
        r.observe(t(489_000), &Effect::PacketReinjected);
        r.observe(t(489_000), &Effect::PacketReinjected);
        assert!(!r.finished());
        r.observe(
            t(489_500),
            &Effect::Complete(MigrationComplete {
                process: Process::new(Pid(9), "p", 1, 1),
            }),
        );
        assert!(r.finished());

        let report = r.into_report();
        assert_eq!(report.pid, Pid(9));
        assert_eq!(report.started_at, t(1_000));
        assert_eq!(report.frozen_at, t(481_000));
        assert_eq!(report.resumed_at, t(489_500));
        assert_eq!(report.freeze_us(), 8_500);
        assert_eq!(report.precopy_iterations, 2);
        assert_eq!(report.precopy_bytes, 4_812);
        assert_eq!(report.precopy_socket_bytes, 300);
        assert_eq!(report.freeze_bytes, 1_112);
        assert_eq!(report.freeze_socket_bytes, 88);
        assert_eq!(report.sockets_migrated, 1);
        assert_eq!(report.parked_nonempty_sockets, 1);
        assert_eq!(report.packets_reinjected, 2);
        assert_eq!(
            report.phase_log,
            vec![
                ("precopy: full checkpoint", t(1_000)),
                ("precopy: incremental iteration", t(321_000)),
                ("freeze: signal + capture setup", t(481_000)),
                ("freeze: detach + transfer", t(483_000)),
                ("restore: rehash + reinject + resume", t(489_000)),
            ]
        );
    }

    #[test]
    fn spans_track_phase_boundaries() {
        let mut r = recorder();
        r.observe(t(0), &Effect::PhaseEntered(PhaseId::PrecopyFull));
        r.observe(
            t(0),
            &Effect::Shipped {
                class: ByteClass::PrecopyMem,
                bytes: 10,
            },
        );
        r.observe(t(100), &Effect::PhaseEntered(PhaseId::FreezeCapture));
        r.observe(
            t(100),
            &Effect::InstallCapture {
                key: dvelm_stack::capture::CaptureKey::any_remote(dvelm_net::Port(80)),
            },
        );
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].phase, PhaseId::PrecopyFull);
        assert_eq!(spans[0].exited_at, Some(t(100)));
        assert_eq!(spans[0].duration_us(), 100);
        assert_eq!(spans[0].bytes, 10);
        assert_eq!(spans[1].exited_at, None);
        assert_eq!(spans[1].duration_us(), 0);
        assert_eq!(spans[1].sockets_touched, 1);
        assert_eq!(r.captures_enabled(), 1);
    }

    #[test]
    fn abort_closes_the_trace() {
        use dvelm_migrate::{AbortReason, AbortRecovery, MigrationAborted};
        let mut r = recorder();
        r.observe(t(1_000), &Effect::PhaseEntered(PhaseId::PrecopyFull));
        r.observe(t(5_000), &Effect::PhaseEntered(PhaseId::FreezeCapture));
        r.observe(t(5_000), &Effect::SuspendApp);
        r.observe(
            t(5_000),
            &Effect::InstallCapture {
                key: dvelm_stack::capture::CaptureKey::any_remote(dvelm_net::Port(80)),
            },
        );
        r.observe(
            t(7_000),
            &Effect::RemoveCapture {
                key: dvelm_stack::capture::CaptureKey::any_remote(dvelm_net::Port(80)),
            },
        );
        r.observe(t(7_000), &Effect::ResumeApp);
        assert!(!r.finished());
        r.observe(
            t(7_000),
            &Effect::Aborted(MigrationAborted {
                phase: PhaseId::FreezeCapture,
                reason: AbortReason::DestinationCrashed,
                recovery: AbortRecovery::ResumedOnSource,
            }),
        );
        assert!(r.finished());
        assert_eq!(r.captures_removed(), 1);
        let report = r.into_report();
        assert!(report.is_aborted());
        assert_eq!(
            report.aborted,
            Some((PhaseId::FreezeCapture, AbortReason::DestinationCrashed))
        );
        assert_eq!(report.frozen_at, t(5_000));
        assert_eq!(report.resumed_at, t(7_000));
        assert_eq!(report.freeze_us(), 2_000, "abort downtime is measured");
        assert_eq!(
            report.phase_log.last(),
            Some(&("aborted", t(7_000))),
            "the abort is on the phase log"
        );
    }

    #[test]
    fn queue_pressure_is_folded() {
        let mut r = recorder();
        r.observe(t(0), &Effect::PhaseEntered(PhaseId::FreezeDetach));
        let key = dvelm_stack::capture::CaptureKey::any_remote(dvelm_net::Port(80));
        r.observe(
            t(10),
            &Effect::QueuePressure {
                key,
                queued_packets: 32,
                queued_bytes: 4_096,
                shed_packets: 3,
            },
        );
        r.observe(
            t(20),
            &Effect::QueuePressure {
                key,
                queued_packets: 16,
                queued_bytes: 8_192,
                shed_packets: 1,
            },
        );
        assert_eq!(r.pressure_events(), 2);
        assert_eq!(r.shed_packets(), 4);
        assert_eq!(r.peak_queue_occupancy(), (32, 8_192));
    }

    #[test]
    fn fold_is_deterministic() {
        // Same stream twice → identical reports (the property the effect
        // pipeline owes its consumers).
        let stream = [
            (t(0), Effect::PhaseEntered(PhaseId::PrecopyFull)),
            (
                t(0),
                Effect::Shipped {
                    class: ByteClass::PrecopyMem,
                    bytes: 7,
                },
            ),
            (t(5), Effect::PhaseEntered(PhaseId::FreezeCapture)),
            (t(5), Effect::SuspendApp),
        ];
        let mut a = recorder();
        let mut b = recorder();
        for (at, e) in &stream {
            a.observe(*at, e);
            b.observe(*at, e);
        }
        assert_eq!(a.into_report(), b.into_report());
    }
}
