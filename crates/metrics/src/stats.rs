//! Streaming and batch statistics.

/// Welford's online algorithm: mean and variance in one pass, numerically
/// stable, O(1) memory.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Welford {
        Welford {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Sample count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

/// Linear-interpolated percentile of a slice (p in [0, 100]); sorts a copy.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// A batch summary of samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub p50: f64,
    pub p95: f64,
    pub max: f64,
}

impl Summary {
    /// Summarize a slice of samples.
    pub fn of(samples: &[f64]) -> Summary {
        let mut w = Welford::new();
        for &x in samples {
            w.push(x);
        }
        Summary {
            count: samples.len(),
            mean: w.mean(),
            std_dev: w.std_dev(),
            min: w.min(),
            p50: percentile(samples, 50.0),
            p95: percentile(samples, 95.0),
            max: w.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for x in xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn empty_welford_is_safe() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert!(w.min().is_nan());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert_eq!(percentile(&xs, 50.0), 25.0);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[7.0], 95.0), 7.0);
    }

    #[test]
    fn summary_of_batch() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!((s.min, s.max), (1.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_bounds_checked() {
        percentile(&[1.0], 101.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn welford_mean_within_minmax(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut w = Welford::new();
            for &x in &xs {
                w.push(x);
            }
            prop_assert!(w.mean() >= w.min() - 1e-9);
            prop_assert!(w.mean() <= w.max() + 1e-9);
            prop_assert!(w.variance() >= 0.0);
        }

        #[test]
        fn percentile_is_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let p25 = percentile(&xs, 25.0);
            let p50 = percentile(&xs, 50.0);
            let p75 = percentile(&xs, 75.0);
            prop_assert!(p25 <= p50 && p50 <= p75);
        }
    }
}
