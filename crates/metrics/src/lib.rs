//! Measurement utilities for the experiment harnesses: streaming statistics,
//! time series, aligned tables and ASCII line charts used to render the
//! paper's figures in a terminal.

pub mod chart;
pub mod series;
pub mod stats;
pub mod table;

pub use chart::AsciiChart;
pub use series::TimeSeries;
pub use stats::{percentile, Summary, Welford};
pub use table::Table;
