//! Measurement utilities for the experiment harnesses: streaming statistics,
//! time series, aligned tables, ASCII line charts used to render the
//! paper's figures in a terminal — and the migration trace spine
//! ([`TraceRecorder`]), which folds a migration's typed effect stream into
//! its [`MigrationReport`](dvelm_migrate::MigrationReport) and per-phase
//! timeline.

pub mod chart;
pub mod series;
pub mod stats;
pub mod table;
pub mod trace;

pub use chart::AsciiChart;
pub use series::TimeSeries;
pub use stats::{percentile, Summary, Welford};
pub use table::Table;
pub use trace::{PhaseSpan, TraceRecorder};
