//! Column-aligned plain-text tables for experiment output.

/// A simple table renderer.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: append a row of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Table {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with right-aligned numeric-looking cells, left-aligned text.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let numeric = c
                    .chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-');
                if numeric {
                    line.push_str(&format!("{c:>w$}", w = widths[i]));
                } else {
                    line.push_str(&format!("{c:<w$}", w = widths[i]));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["conns", "freeze (ms)"]);
        t.row_display(&["16", "12.5"]);
        t.row_display(&["1024", "38.2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("conns"));
        assert!(lines[2].trim_start().starts_with("16"));
        assert!(lines[3].trim_start().starts_with("1024"));
        // Columns align: both data lines have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = Table::new(&["x"]);
        assert!(t.is_empty());
        assert!(t.render().contains('x'));
    }
}
