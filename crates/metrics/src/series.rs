//! Time series: (time, value) samples with simple aggregation.

use dvelm_sim::SimTime;

/// A named time series of f64 samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    pub name: String,
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new(name: impl Into<String>) -> TimeSeries {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a sample at a simulated instant.
    pub fn push(&mut self, at: SimTime, value: f64) {
        self.push_at_secs(at.as_secs_f64(), value);
    }

    /// Append a sample at a time in seconds. Times must be nondecreasing.
    pub fn push_at_secs(&mut self, t_secs: f64, value: f64) {
        if let Some((last, _)) = self.points.last() {
            assert!(t_secs >= *last, "time series must be appended in order");
        }
        self.points.push((t_secs, value));
    }

    /// All samples as (seconds, value).
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Latest value.
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|(_, v)| *v)
    }

    /// Value at or before `t_secs` (step interpolation).
    pub fn at(&self, t_secs: f64) -> Option<f64> {
        match self.points.partition_point(|(t, _)| *t <= t_secs) {
            0 => None,
            i => Some(self.points[i - 1].1),
        }
    }

    /// Mean of samples with `t` in `[from, to)`.
    pub fn window_mean(&self, from: f64, to: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .points
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Resample onto a regular grid of `step` seconds using step
    /// interpolation, from the first to the last sample.
    pub fn resample(&self, step: f64) -> Vec<(f64, f64)> {
        assert!(step > 0.0);
        let Some(&(t0, _)) = self.points.first() else {
            return Vec::new();
        };
        let (t1, _) = *self.points.last().expect("non-empty checked");
        let mut out = Vec::new();
        let mut t = t0;
        while t <= t1 + 1e-9 {
            if let Some(v) = self.at(t) {
                out.push((t, v));
            }
            t += step;
        }
        out
    }

    /// Minimum and maximum values over the whole series.
    pub fn value_range(&self) -> Option<(f64, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (_, v) in &self.points {
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        let mut s = TimeSeries::new("cpu");
        s.push_at_secs(0.0, 50.0);
        s.push_at_secs(10.0, 60.0);
        s.push_at_secs(20.0, 70.0);
        s
    }

    #[test]
    fn step_interpolation() {
        let s = series();
        assert_eq!(s.at(-1.0), None);
        assert_eq!(s.at(0.0), Some(50.0));
        assert_eq!(s.at(9.9), Some(50.0));
        assert_eq!(s.at(10.0), Some(60.0));
        assert_eq!(s.at(100.0), Some(70.0));
    }

    #[test]
    fn window_mean_respects_bounds() {
        let s = series();
        assert_eq!(s.window_mean(0.0, 20.0), Some(55.0));
        assert_eq!(s.window_mean(0.0, 21.0), Some(60.0));
        assert_eq!(s.window_mean(30.0, 40.0), None);
    }

    #[test]
    fn resample_grid() {
        let s = series();
        let g = s.resample(5.0);
        assert_eq!(g.len(), 5);
        assert_eq!(g[1], (5.0, 50.0));
        assert_eq!(g[2], (10.0, 60.0));
    }

    #[test]
    fn value_range() {
        assert_eq!(series().value_range(), Some((50.0, 70.0)));
        assert_eq!(TimeSeries::new("x").value_range(), None);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_rejected() {
        let mut s = series();
        s.push_at_secs(5.0, 1.0);
    }

    #[test]
    fn push_simtime() {
        let mut s = TimeSeries::new("t");
        s.push(SimTime::from_millis(1500), 3.0);
        assert_eq!(s.points()[0], (1.5, 3.0));
    }
}
