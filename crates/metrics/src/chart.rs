//! Multi-series ASCII line charts — terminal renderings of the paper's
//! figures.

use crate::series::TimeSeries;

/// A character-grid chart of one or more series.
#[derive(Debug)]
pub struct AsciiChart {
    width: usize,
    height: usize,
    title: String,
    x_label: String,
    y_label: String,
    series: Vec<TimeSeries>,
    y_range: Option<(f64, f64)>,
}

const MARKS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&'];

impl AsciiChart {
    /// A chart of the given plot-area size (excluding axes).
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> AsciiChart {
        assert!(width >= 10 && height >= 4, "chart too small");
        AsciiChart {
            width,
            height,
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            series: Vec::new(),
            y_range: None,
        }
    }

    /// Set axis labels.
    pub fn labels(mut self, x: impl Into<String>, y: impl Into<String>) -> AsciiChart {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Fix the y range (otherwise auto-scaled to the data).
    pub fn y_range(mut self, lo: f64, hi: f64) -> AsciiChart {
        assert!(hi > lo);
        self.y_range = Some((lo, hi));
        self
    }

    /// Add a series.
    pub fn add(&mut self, series: TimeSeries) -> &mut AsciiChart {
        self.series.push(series);
        self
    }

    /// Render the chart.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        let non_empty: Vec<&TimeSeries> = self.series.iter().filter(|s| !s.is_empty()).collect();
        if non_empty.is_empty() {
            out.push_str("(no data)\n");
            return out;
        }

        // Ranges.
        let (mut ylo, mut yhi) = self.y_range.unwrap_or((f64::INFINITY, f64::NEG_INFINITY));
        if self.y_range.is_none() {
            for s in &non_empty {
                let (lo, hi) = s.value_range().expect("non-empty series");
                ylo = ylo.min(lo);
                yhi = yhi.max(hi);
            }
            if (yhi - ylo).abs() < 1e-12 {
                yhi = ylo + 1.0;
            }
        }
        let xlo = non_empty
            .iter()
            .map(|s| s.points()[0].0)
            .fold(f64::INFINITY, f64::min);
        let xhi = non_empty
            .iter()
            .map(|s| s.points().last().expect("non-empty").0)
            .fold(f64::NEG_INFINITY, f64::max);
        let xspan = if (xhi - xlo).abs() < 1e-12 {
            1.0
        } else {
            xhi - xlo
        };

        // Grid.
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in non_empty.iter().enumerate() {
            let mark = MARKS[si % MARKS.len()];
            let width = self.width;
            let height = self.height;
            for (col, t) in (0..width).map(|c| (c, xlo + xspan * c as f64 / (width - 1) as f64)) {
                if let Some(v) = s.at(t) {
                    let frac = ((v - ylo) / (yhi - ylo)).clamp(0.0, 1.0);
                    let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
                    grid[row][col] = mark;
                }
            }
        }

        // Render with y labels.
        if !self.y_label.is_empty() {
            out.push_str(&format!("{}\n", self.y_label));
        }
        for (r, row) in grid.iter().enumerate() {
            let frac = 1.0 - r as f64 / (self.height - 1) as f64;
            let yval = ylo + frac * (yhi - ylo);
            out.push_str(&format!("{yval:8.1} |"));
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:8} +{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:8}  {:<w$.1}{:>r$.1}\n",
            "",
            xlo,
            xhi,
            w = self.width / 2,
            r = self.width - self.width / 2
        ));
        if !self.x_label.is_empty() {
            out.push_str(&format!("{:8}  {}\n", "", self.x_label));
        }
        // Legend.
        for (si, s) in non_empty.iter().enumerate() {
            out.push_str(&format!("  {} {}\n", MARKS[si % MARKS.len()], s.name));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(name: &str, k: f64) -> TimeSeries {
        let mut s = TimeSeries::new(name);
        for i in 0..10 {
            s.push_at_secs(i as f64, k * i as f64);
        }
        s
    }

    #[test]
    fn renders_series_and_legend() {
        let mut c = AsciiChart::new("Fig X", 40, 10).labels("time (s)", "CPU (%)");
        c.add(ramp("node1", 1.0));
        c.add(ramp("node2", 2.0));
        let s = c.render();
        assert!(s.contains("Fig X"));
        assert!(s.contains("node1"));
        assert!(s.contains("node2"));
        assert!(s.contains('*') && s.contains('+'));
        assert!(s.contains("time (s)"));
    }

    #[test]
    fn empty_chart_says_no_data() {
        let c = AsciiChart::new("empty", 20, 5);
        assert!(c.render().contains("(no data)"));
    }

    #[test]
    fn fixed_y_range_clamps() {
        let mut c = AsciiChart::new("clamped", 20, 5).y_range(0.0, 5.0);
        c.add(ramp("big", 100.0));
        let s = c.render();
        assert!(s.contains("5.0"), "y axis shows the fixed range: {s}");
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn size_is_validated() {
        let _ = AsciiChart::new("x", 2, 2);
    }
}
