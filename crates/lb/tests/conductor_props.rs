//! Property tests of the conductor protocol: whatever sequence of load
//! changes and message deliveries occurs, the two-phase commit must keep its
//! invariants.

use dvelm_lb::{Conductor, ConductorPhase, LbEffect, LbMsg, LoadInfo, PolicyConfig};
use dvelm_net::NodeId;
use dvelm_proc::Pid;
use dvelm_sim::{DetRng, SimTime};
use proptest::prelude::*;

/// A randomized cluster of conductors with an instantaneous bus.
struct Cluster {
    conds: Vec<Conductor>,
    loads: Vec<f64>,
    now: SimTime,
    /// Receivers currently reserved (phase == Receiving) — at most one
    /// migration may target each at any time.
    active_migrations: Vec<(usize, usize)>, // (sender, receiver)
}

impl Cluster {
    fn new(n: usize, loads: Vec<f64>) -> Cluster {
        let conds = (0..n)
            .map(|i| Conductor::new(NodeId(i as u32), PolicyConfig::default()))
            .collect();
        let mut c = Cluster {
            conds,
            loads,
            now: SimTime::from_secs(1),
            active_migrations: Vec::new(),
        };
        // Discovery.
        for i in 0..n {
            let li = c.local(i);
            let effects = c.conds[i].on_start(li);
            c.dispatch(i, effects);
        }
        c
    }

    fn local(&self, i: usize) -> LoadInfo {
        LoadInfo::new(NodeId(i as u32), self.loads[i], 20, self.now)
    }

    fn dispatch(&mut self, from: usize, effects: Vec<LbEffect>) {
        let mut queue: Vec<(usize, LbEffect)> = effects.into_iter().map(|a| (from, a)).collect();
        while let Some((src, action)) = queue.pop() {
            match action {
                LbEffect::Broadcast(msg) => {
                    for i in 0..self.conds.len() {
                        if i != src {
                            let li = self.local(i);
                            let out = self.conds[i].on_msg(self.now, NodeId(src as u32), msg, li);
                            queue.extend(out.into_iter().map(|a| (i, a)));
                        }
                    }
                }
                LbEffect::Send(to, msg) => {
                    let i = to.0 as usize;
                    let li = self.local(i);
                    let out = self.conds[i].on_msg(self.now, NodeId(src as u32), msg, li);
                    queue.extend(out.into_iter().map(|a| (i, a)));
                }
                LbEffect::StartMigration { dest, .. } => {
                    self.active_migrations.push((src, dest.0 as usize));
                }
                LbEffect::CancelMigration { .. } => {
                    // The sender gave up (migration timeout + lease expiry):
                    // the daemon aborts and reports failure.
                    if let Some(idx) = self.active_migrations.iter().position(|(s, _)| *s == src) {
                        self.active_migrations.swap_remove(idx);
                    }
                    let out = self.conds[src].on_migration_finished(self.now, false);
                    queue.extend(out.into_iter().map(|a| (src, a)));
                }
            }
        }
    }

    fn tick(&mut self, i: usize) {
        let li = self.local(i);
        let procs: Vec<(Pid, f64)> = (0..20)
            .map(|k| (Pid((i * 100 + k) as u64), self.loads[i] / 20.0))
            .collect();
        let effects = self.conds[i].on_tick(self.now, li, &procs);
        self.dispatch(i, effects);
    }

    fn finish_migration(&mut self, idx: usize, rng: &mut DetRng) {
        let (sender, receiver) = self.active_migrations.swap_remove(idx);
        // Move ~the excess load.
        let delta = (self.loads[sender] - self.loads[receiver]).max(0.0) / 2.0;
        self.loads[sender] -= delta;
        self.loads[receiver] += delta;
        let success = rng.chance(0.9);
        let effects = self.conds[sender].on_migration_finished(self.now, success);
        self.dispatch(sender, effects);
    }

    fn check_invariants(&self) {
        // At most one in-flight migration per receiver and per sender.
        let mut receivers = std::collections::HashSet::new();
        let mut senders = std::collections::HashSet::new();
        for (s, r) in &self.active_migrations {
            assert!(
                senders.insert(*s),
                "sender {s} started two concurrent migrations"
            );
            assert!(receivers.insert(*r), "receiver {r} reserved twice");
            assert_ne!(s, r, "self-migration");
        }
        // Phase consistency: every active migration's endpoints are in the
        // matching phases.
        for (s, r) in &self.active_migrations {
            assert!(
                matches!(self.conds[*s].phase(), ConductorPhase::Sending { .. }),
                "sender {s} not in Sending"
            );
            assert!(
                matches!(self.conds[*r].phase(), ConductorPhase::Receiving { .. }),
                "receiver {r} not in Receiving"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings of ticks, load swings and migration completions
    /// never violate the 2-phase-commit invariants, and the cluster never
    /// deadlocks (ticks keep being answerable).
    #[test]
    fn two_phase_commit_invariants(
        seed in 0u64..10_000,
        steps in proptest::collection::vec((0usize..5, 0u8..4), 10..120),
    ) {
        let mut rng = DetRng::new(seed);
        let loads: Vec<f64> = (0..5).map(|_| rng.range_f64(40.0, 98.0)).collect();
        let mut cluster = Cluster::new(5, loads);
        for (node, op) in steps {
            cluster.now += 300_000; // 0.3 s per step
            match op {
                // Tick one conductor.
                0 | 1 => cluster.tick(node),
                // Load swing.
                2 => {
                    let delta = rng.range_f64(-15.0, 15.0);
                    cluster.loads[node] = (cluster.loads[node] + delta).clamp(5.0, 100.0);
                }
                // Finish an in-flight migration, if any.
                _ => {
                    if !cluster.active_migrations.is_empty() {
                        let idx = rng.index(cluster.active_migrations.len());
                        cluster.finish_migration(idx, &mut rng);
                    }
                }
            }
            cluster.check_invariants();
        }
        // Drain: finish everything; all conductors settle into a
        // non-reserved phase.
        let mut rng2 = DetRng::new(seed ^ 0xABCD);
        while !cluster.active_migrations.is_empty() {
            cluster.finish_migration(0, &mut rng2);
        }
        cluster.check_invariants();
        for c in &cluster.conds {
            prop_assert!(
                !matches!(c.phase(), ConductorPhase::Sending { .. } | ConductorPhase::Receiving { .. }),
                "stuck in {:?}",
                c.phase()
            );
        }
    }

    /// Heartbeats alone (no load imbalance) never trigger migrations.
    #[test]
    fn balanced_loads_stay_quiet(seed in 0u64..10_000, ticks in 5usize..50) {
        let mut rng = DetRng::new(seed);
        let base = rng.range_f64(40.0, 80.0);
        let loads: Vec<f64> = (0..4).map(|_| base + rng.range_f64(-2.0, 2.0)).collect();
        let mut cluster = Cluster::new(4, loads);
        for t in 0..ticks {
            cluster.now += 400_000;
            cluster.tick(t % 4);
        }
        prop_assert!(cluster.active_migrations.is_empty());
    }

    /// A lone overloaded node with at least one light peer always initiates
    /// within two full tick rounds.
    #[test]
    fn overload_is_always_acted_on(seed in 0u64..10_000) {
        let mut rng = DetRng::new(seed);
        let mut loads = vec![97.0];
        loads.extend((0..3).map(|_| rng.range_f64(20.0, 60.0)));
        let mut cluster = Cluster::new(4, loads);
        for round in 0..2 {
            for i in 0..4 {
                cluster.now += 300_000;
                cluster.tick(i);
            }
            if cluster.active_migrations.iter().any(|(s, _)| *s == 0) {
                break;
            }
            prop_assert!(round == 0, "no migration after two rounds");
        }
        // The hot node is among the senders (other nodes above avg+delta may
        // legitimately initiate too).
        prop_assert!(
            cluster.active_migrations.iter().any(|(s, _)| *s == 0),
            "the overloaded node never initiated: {:?}",
            cluster.active_migrations
        );
    }
}

/// A recorded, valid control trace addressed to one conductor (node 2):
/// discovery, gossip, a full migration it receives, and a competing request
/// it turns down.
fn valid_trace() -> Vec<(NodeId, LbMsg)> {
    let t = SimTime::from_secs(1);
    let li = |n: u32, cpu: f64| LoadInfo::new(NodeId(n), cpu, 20, t);
    vec![
        (NodeId(0), LbMsg::Hello(li(0, 95.0))),
        (NodeId(1), LbMsg::Hello(li(1, 90.0))),
        (NodeId(0), LbMsg::Heartbeat(li(0, 96.0))),
        (NodeId(1), LbMsg::Heartbeat(li(1, 91.0))),
        (
            NodeId(0),
            LbMsg::MigRequest {
                pid: Pid(100),
                epoch: 1,
                share: 10.0,
                sender_load: 96.0,
            },
        ),
        (
            NodeId(0),
            LbMsg::MigDone {
                pid: Pid(100),
                epoch: 1,
                success: true,
            },
        ),
        (
            NodeId(1),
            LbMsg::MigRequest {
                pid: Pid(200),
                epoch: 1,
                share: 9.0,
                sender_load: 91.0,
            },
        ),
        (NodeId(1), LbMsg::Heartbeat(li(1, 88.0))),
        (NodeId(0), LbMsg::Leave),
    ]
}

/// Messages whose relative order the shuffle must preserve: the migration
/// protocol itself plus membership changes (Hello/Leave feed the admission
/// decision's cluster average — losing a peer before its request arrives is
/// a genuinely different world, not an equivalent reordering). Heartbeats
/// float freely: newest-wins peer samples keep the decision stable.
fn is_ordered(msg: &LbMsg) -> bool {
    !matches!(msg, LbMsg::Heartbeat(_))
}

/// Deliver a trace to a fresh conductor (node 2, lightly loaded) at a fixed
/// instant; return its final phase and stats.
fn replay(trace: &[(NodeId, LbMsg)]) -> (ConductorPhase, dvelm_lb::LbStats) {
    let mut c = Conductor::new(NodeId(2), PolicyConfig::default());
    let t = SimTime::from_secs(1);
    for (from, msg) in trace {
        let li = LoadInfo::new(NodeId(2), 40.0, 20, t);
        c.on_msg(t, *from, *msg, li);
    }
    (c.phase(), c.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite: duplicating any message and reordering gossip around the
    /// migration protocol never changes where the conductor ends up.
    /// Protocol and membership messages keep their relative order (the
    /// protocol fences stale *epochs*, not arbitrary causality inversions
    /// within one negotiation), but heartbeats float freely between them and
    /// every message may be delivered again at any later point.
    #[test]
    fn duplicated_reordered_trace_converges(
        keys in proptest::collection::vec(0u64..1_000_000, 9),
        dups in proptest::collection::vec((0usize..9, 0usize..20), 0..8),
    ) {
        let trace = valid_trace();
        let baseline = replay(&trace);

        // Permute by random key, stable so equal keys keep input order.
        let mut order: Vec<usize> = (0..trace.len()).collect();
        order.sort_by_key(|&i| keys[i]);
        // Restore the relative order of the ordered class: its slots stay
        // where the shuffle put them, but the messages flow into those slots
        // in original order.
        let slots: Vec<usize> = (0..order.len())
            .filter(|&s| is_ordered(&trace[order[s]].1))
            .collect();
        let mut msgs: Vec<usize> = order
            .iter()
            .copied()
            .filter(|&i| is_ordered(&trace[i].1))
            .collect();
        msgs.sort_unstable();
        for (slot, msg) in slots.into_iter().zip(msgs) {
            order[slot] = msg;
        }
        let mut shuffled: Vec<(NodeId, LbMsg)> = order.iter().map(|&i| trace[i]).collect();

        // Duplicate messages at arbitrary delivery points after (a copy of)
        // the original.
        for (orig, offset) in dups {
            let pos = shuffled.iter().position(|m| *m == trace[orig]).unwrap();
            let at = (pos + 1 + offset).min(shuffled.len());
            shuffled.insert(at, trace[orig]);
        }

        prop_assert_eq!(replay(&shuffled), baseline);
    }
}

#[test]
fn spanning_tree_heartbeats_reach_everyone_with_bounded_fanout() {
    use dvelm_lb::Dissemination;

    // 9 conductors in tree mode, full peer knowledge (post-discovery).
    let n = 9;
    let mut conds: Vec<Conductor> = (0..n)
        .map(|i| {
            let mut c = Conductor::new(NodeId(i as u32), PolicyConfig::default());
            c.dissemination = Dissemination::SpanningTree;
            c
        })
        .collect();
    let t = SimTime::from_secs(1);
    for (i, cond) in conds.iter_mut().enumerate() {
        for j in 0..n {
            if i != j {
                cond.peers
                    .update(LoadInfo::new(NodeId(j as u32), 50.0, 20, t));
            }
        }
    }

    // Node 4 heartbeats; relay messages until quiescent, tracking per-node
    // transmit counts and who has node 4's fresh sample.
    let t2 = SimTime::from_secs(2);
    let li4 = LoadInfo::new(NodeId(4), 77.0, 20, t2);
    let origin_actions = conds[4].on_tick(t2, li4, &[]);
    let mut sends = vec![0usize; n];
    let mut received = std::collections::HashSet::new();
    let mut queue: Vec<(usize, LbEffect)> =
        origin_actions.into_iter().map(|a| (4usize, a)).collect();
    while let Some((src, action)) = queue.pop() {
        match action {
            LbEffect::Send(to, msg @ LbMsg::Heartbeat(_)) => {
                sends[src] += 1;
                assert!(received.insert(to), "{to} received twice");
                let i = to.0 as usize;
                let li = LoadInfo::new(to, 50.0, 20, t2);
                let out = conds[i].on_msg(t2, NodeId(src as u32), msg, li);
                queue.extend(out.into_iter().map(|a| (i, a)));
            }
            LbEffect::Broadcast(_) => panic!("tree mode must not flat-broadcast"),
            _ => {}
        }
    }
    assert_eq!(received.len(), n - 1, "everyone got the heartbeat");
    assert!(
        sends.iter().all(|s| *s <= 2),
        "fan-out bounded by 2: {sends:?}"
    );
    // Every conductor now has node 4's fresh sample.
    for (i, c) in conds.iter().enumerate() {
        if i != 4 {
            assert_eq!(c.peers.get(NodeId(4)).unwrap().cpu_pct, 77.0, "node {i}");
        }
    }
}
