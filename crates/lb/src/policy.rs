//! The four load-distributing policies (§IV-A…D), as pure functions.

use crate::peers::PeerDb;
use dvelm_net::NodeId;
use dvelm_proc::Pid;
use dvelm_sim::{SimTime, MILLISECOND, SECOND};

/// Tunables of the load-balancing middleware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyConfig {
    /// Sender transfer policy: critical absolute threshold, CPU %.
    pub high_threshold: f64,
    /// Sender transfer policy: trigger when `local - cluster_avg` exceeds
    /// this, CPU %.
    pub imbalance_delta: f64,
    /// Receiver transfer policy: accept only if own load is below the
    /// cluster average minus this margin, CPU %.
    pub receiver_margin: f64,
    /// Information policy: heartbeat broadcast period, µs.
    pub heartbeat_period_us: u64,
    /// Peers silent for longer than this are presumed gone, µs.
    pub peer_stale_us: u64,
    /// Calm-down period after a migration (both sides), µs.
    pub calm_down_us: u64,
    /// Give up on an unanswered migration request after this long, µs.
    pub negotiation_timeout_us: u64,
    /// Give up waiting for an accepted migration to finish after this, µs.
    pub migration_timeout_us: u64,
    /// Smallest process CPU share worth migrating, CPU %.
    pub min_process_share: f64,
    /// First retry of a failed migration waits this long; each further
    /// attempt doubles it (exponential backoff), µs.
    pub retry_backoff_base_us: u64,
    /// Total attempts (first + retries) before a migration is abandoned.
    pub retry_max_attempts: u32,
    /// A destination involved in a failed migration is not chosen again for
    /// this long, µs (each failure counts once toward
    /// `LbStats::migrations_failed`; the embargo itself is silent). The
    /// default is 30 s — partition tests shorten it so a healed destination
    /// becomes eligible again within the test window.
    pub blacklist_us: u64,
    /// Ownership-lease duration, µs: a destination's `Receiving`
    /// reservation (granted with `MigAccept`) expires this long after the
    /// grant, releasing the receiver on sender silence; symmetrically the
    /// sender only force-cancels a wedged transfer once both
    /// `migration_timeout_us` *and* the lease have run out, so a
    /// destination never resumes a process whose lease the sender already
    /// considers dead. Must exceed `migration_timeout_us`.
    pub lease_us: u64,
    /// A peer's load sample older than this many heartbeat periods is
    /// discarded for placement decisions — the node may have drifted
    /// arbitrarily far from the recorded value, so it is ineligible as a
    /// destination until a fresh sample arrives. `0` disables the check.
    pub load_fresh_factor: u32,
    /// Destination admission high-water mark, CPU %: a peer at or above
    /// this is never sent a migration even if it sits below the cluster
    /// average; the intent is *deferred* instead. `f64::INFINITY`
    /// disables deferral (the paper-prototype behaviour).
    pub dest_high_water: f64,
    /// Bound on the deferral queue; when full, the lowest-priority
    /// (smallest CPU share) intent is shed.
    pub max_deferred: usize,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            high_threshold: 88.0,
            imbalance_delta: 8.0,
            receiver_margin: 2.0,
            heartbeat_period_us: SECOND,
            peer_stale_us: 5 * SECOND,
            calm_down_us: 12 * SECOND,
            negotiation_timeout_us: 500 * MILLISECOND,
            migration_timeout_us: 10 * SECOND,
            min_process_share: 0.5,
            retry_backoff_base_us: 2 * SECOND,
            retry_max_attempts: 3,
            blacklist_us: 30 * SECOND,
            lease_us: 15 * SECOND,
            load_fresh_factor: 2,
            dest_high_water: f64::INFINITY,
            max_deferred: 8,
        }
    }
}

impl PolicyConfig {
    /// **Transfer policy, sender side** (§IV-A): enter the migration
    /// initiator state when local load is over the critical threshold or
    /// further above the approximated cluster average than the allowed
    /// imbalance.
    pub fn should_initiate(&self, local_cpu: f64, cluster_avg: f64) -> bool {
        local_cpu > self.high_threshold || local_cpu - cluster_avg > self.imbalance_delta
    }

    /// **Transfer policy, receiver side** (§IV-A): whether a node should
    /// accept an incoming migration given its own state.
    pub fn should_accept(&self, local_cpu: f64, cluster_avg: f64) -> bool {
        local_cpu < cluster_avg - self.receiver_margin
    }

    /// **Location policy** (§IV-B): find the peer whose load index is on the
    /// opposite side of the cluster average — ideally about as much lighter
    /// as the sender is heavier, so both converge to the average after the
    /// migration. Returns the peer minimizing the distance to that mirror
    /// target, restricted to peers below the average. Peers in `exclude`
    /// (blacklisted after a failed migration) are never chosen.
    pub fn choose_destination(
        &self,
        local_cpu: f64,
        cluster_avg: f64,
        peers: &PeerDb,
        exclude: &[NodeId],
    ) -> Option<NodeId> {
        let target = cluster_avg - (local_cpu - cluster_avg);
        peers
            .iter()
            .filter(|li| !exclude.contains(&li.node))
            .filter(|li| li.cpu_pct < cluster_avg - self.receiver_margin)
            .min_by(|a, b| {
                let da = (a.cpu_pct - target).abs();
                let db = (b.cpu_pct - target).abs();
                da.partial_cmp(&db).expect("CPU loads are finite")
            })
            .map(|li| li.node)
    }

    /// Freshness window for peer load samples, µs.
    pub fn load_fresh_us(&self) -> u64 {
        if self.load_fresh_factor == 0 {
            u64::MAX
        } else {
            (self.load_fresh_factor as u64).saturating_mul(self.heartbeat_period_us)
        }
    }

    /// Location policy with admission filters: like
    /// [`choose_destination`](Self::choose_destination), but a peer is only
    /// eligible if its load sample is fresh (see `load_fresh_factor`) and
    /// its load is below the admission high-water mark.
    pub fn choose_destination_at(
        &self,
        now: SimTime,
        local_cpu: f64,
        cluster_avg: f64,
        peers: &PeerDb,
        exclude: &[NodeId],
    ) -> Option<NodeId> {
        let fresh_us = self.load_fresh_us();
        let target = cluster_avg - (local_cpu - cluster_avg);
        peers
            .iter()
            .filter(|li| !exclude.contains(&li.node))
            .filter(|li| li.is_fresh(now, fresh_us))
            .filter(|li| li.cpu_pct < cluster_avg - self.receiver_margin)
            .filter(|li| li.cpu_pct < self.dest_high_water)
            .min_by(|a, b| {
                let da = (a.cpu_pct - target).abs();
                let db = (b.cpu_pct - target).abs();
                da.partial_cmp(&db).expect("CPU loads are finite")
            })
            .map(|li| li.node)
    }

    /// Whether some peer would qualify as a destination (fresh, not
    /// excluded, below the average) but is held back *only* by the
    /// admission high-water mark. Distinguishes "defer and try again when
    /// the receivers drain" from "there is nowhere to go at all".
    pub fn viable_but_congested(
        &self,
        now: SimTime,
        cluster_avg: f64,
        peers: &PeerDb,
        exclude: &[NodeId],
    ) -> bool {
        let fresh_us = self.load_fresh_us();
        peers
            .iter()
            .filter(|li| !exclude.contains(&li.node))
            .filter(|li| li.is_fresh(now, fresh_us))
            .filter(|li| li.cpu_pct < cluster_avg - self.receiver_margin)
            .any(|li| li.cpu_pct >= self.dest_high_water)
    }

    /// **Selection policy** (§IV-C): pick the process whose CPU consumption
    /// is closest to the difference between the local node and the cluster
    /// average (again aiming both nodes at the average). Processes below
    /// `min_process_share` are not worth their migration cost.
    pub fn choose_process(
        &self,
        local_cpu: f64,
        cluster_avg: f64,
        procs: &[(Pid, f64)],
    ) -> Option<Pid> {
        let target = (local_cpu - cluster_avg).max(0.0);
        procs
            .iter()
            .filter(|(_, share)| *share >= self.min_process_share)
            .min_by(|a, b| {
                let da = (a.1 - target).abs();
                let db = (b.1 - target).abs();
                da.partial_cmp(&db).expect("CPU shares are finite")
            })
            .map(|(pid, _)| *pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::info::LoadInfo;
    use dvelm_sim::SimTime;

    fn peers(loads: &[(u32, f64)]) -> PeerDb {
        let mut db = PeerDb::new();
        for (n, c) in loads {
            db.update(LoadInfo::new(NodeId(*n), *c, 20, SimTime::ZERO));
        }
        db
    }

    #[test]
    fn sender_triggers_on_threshold_or_imbalance() {
        let cfg = PolicyConfig::default();
        assert!(cfg.should_initiate(90.0, 89.0), "over absolute threshold");
        assert!(cfg.should_initiate(80.0, 70.0), "over imbalance delta");
        assert!(!cfg.should_initiate(80.0, 78.0), "balanced enough");
    }

    #[test]
    fn receiver_accepts_only_below_average() {
        let cfg = PolicyConfig::default();
        assert!(cfg.should_accept(60.0, 75.0));
        assert!(!cfg.should_accept(74.5, 75.0), "inside the margin");
        assert!(!cfg.should_accept(80.0, 75.0));
    }

    #[test]
    fn location_picks_mirror_image_peer() {
        let cfg = PolicyConfig::default();
        // local 90, avg 75 → target 60. Peers at 73, 62, 40: 62 is closest
        // to the mirror target.
        let db = peers(&[(1, 73.0), (2, 62.0), (3, 40.0)]);
        assert_eq!(
            cfg.choose_destination(90.0, 75.0, &db, &[]),
            Some(NodeId(2))
        );
    }

    #[test]
    fn location_ignores_peers_at_or_above_average() {
        let cfg = PolicyConfig::default();
        // avg 85, margin 2 → only peers below 83 qualify; none do.
        let db = peers(&[(1, 84.0), (2, 90.0)]);
        assert_eq!(cfg.choose_destination(95.0, 85.0, &db, &[]), None);
    }

    #[test]
    fn fault_location_skips_blacklisted_peers() {
        let cfg = PolicyConfig::default();
        let db = peers(&[(1, 73.0), (2, 62.0), (3, 40.0)]);
        // The mirror-image peer (node 2) is blacklisted: the next-best
        // qualifying peer wins instead.
        assert_eq!(
            cfg.choose_destination(90.0, 75.0, &db, &[NodeId(2)]),
            Some(NodeId(3))
        );
        // Everyone blacklisted: nowhere to go.
        assert_eq!(
            cfg.choose_destination(90.0, 75.0, &db, &[NodeId(1), NodeId(2), NodeId(3)]),
            None
        );
    }

    #[test]
    fn stale_sample_makes_peer_ineligible() {
        let cfg = PolicyConfig::default();
        let mut db = PeerDb::new();
        // Node 2 would be the mirror pick, but its sample is ancient.
        db.update(LoadInfo::new(NodeId(1), 70.0, 20, SimTime::from_secs(10)));
        db.update(LoadInfo::new(NodeId(2), 62.0, 20, SimTime::ZERO));
        let now = SimTime::from_secs(10);
        assert_eq!(
            cfg.choose_destination_at(now, 90.0, 75.0, &db, &[]),
            Some(NodeId(1)),
            "stale node 2 skipped"
        );
        // The clock-agnostic variant still sees it (old behaviour).
        assert_eq!(
            cfg.choose_destination(90.0, 75.0, &db, &[]),
            Some(NodeId(2))
        );
        // With the check disabled, staleness is ignored.
        let lax = PolicyConfig {
            load_fresh_factor: 0,
            ..cfg
        };
        assert_eq!(
            lax.choose_destination_at(now, 90.0, 75.0, &db, &[]),
            Some(NodeId(2))
        );
    }

    #[test]
    fn high_water_mark_blocks_congested_destination() {
        let cfg = PolicyConfig {
            dest_high_water: 60.0,
            ..PolicyConfig::default()
        };
        let now = SimTime::ZERO;
        // Both below avg - margin, but only node 3 is under the high water.
        let db = peers(&[(2, 62.0), (3, 40.0)]);
        assert_eq!(
            cfg.choose_destination_at(now, 90.0, 75.0, &db, &[]),
            Some(NodeId(3))
        );
        // Every qualifying peer congested: no destination, but the caller
        // can tell it is worth deferring.
        let db = peers(&[(2, 62.0), (4, 65.0)]);
        assert_eq!(cfg.choose_destination_at(now, 90.0, 75.0, &db, &[]), None);
        assert!(cfg.viable_but_congested(now, 75.0, &db, &[]));
        // No peer below the average at all: nothing to defer for.
        let db = peers(&[(2, 80.0)]);
        assert_eq!(cfg.choose_destination_at(now, 90.0, 75.0, &db, &[]), None);
        assert!(!cfg.viable_but_congested(now, 75.0, &db, &[]));
    }

    #[test]
    fn selection_matches_excess_load() {
        let cfg = PolicyConfig::default();
        let procs = vec![(Pid(1), 2.0), (Pid(2), 9.5), (Pid(3), 30.0)];
        // local 85, avg 75 → want ≈10% → Pid(2).
        assert_eq!(cfg.choose_process(85.0, 75.0, &procs), Some(Pid(2)));
    }

    #[test]
    fn selection_skips_trivial_processes() {
        let cfg = PolicyConfig::default();
        let procs = vec![(Pid(1), 0.1), (Pid(2), 0.2)];
        assert_eq!(cfg.choose_process(95.0, 70.0, &procs), None);
    }

    #[test]
    fn selection_on_empty_list() {
        let cfg = PolicyConfig::default();
        assert_eq!(cfg.choose_process(95.0, 70.0, &[]), None);
    }
}
