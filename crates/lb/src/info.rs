//! Load information exchanged between conductors.

use dvelm_net::NodeId;
use dvelm_sim::SimTime;

/// Wire size of one heartbeat/load message, bytes.
pub const LOAD_INFO_BYTES: u64 = 64;

/// One node's load sample, as broadcast in heartbeats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadInfo {
    pub node: NodeId,
    /// CPU consumption, percent (0–100), as `atop` would report.
    pub cpu_pct: f64,
    /// Number of DVE zone-server processes hosted.
    pub nprocs: u32,
    /// When the sample was taken (sender clock; the cluster is a LAN, so
    /// clock skew is ignored as in the prototype).
    pub at: SimTime,
}

impl LoadInfo {
    /// A sample.
    pub fn new(node: NodeId, cpu_pct: f64, nprocs: u32, at: SimTime) -> LoadInfo {
        LoadInfo {
            node,
            cpu_pct,
            nprocs,
            at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let li = LoadInfo::new(NodeId(3), 87.5, 20, SimTime::from_secs(10));
        assert_eq!(li.node, NodeId(3));
        assert_eq!(li.cpu_pct, 87.5);
        assert_eq!(li.nprocs, 20);
    }
}
