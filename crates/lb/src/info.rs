//! Load information exchanged between conductors.

use dvelm_net::NodeId;
use dvelm_sim::SimTime;

/// Wire size of one heartbeat/load message, bytes.
pub const LOAD_INFO_BYTES: u64 = 64;

/// One node's load sample, as broadcast in heartbeats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadInfo {
    pub node: NodeId,
    /// CPU consumption, percent (0–100), as `atop` would report.
    pub cpu_pct: f64,
    /// Number of DVE zone-server processes hosted.
    pub nprocs: u32,
    /// Number of zone subscriptions the node's processes hold in the
    /// router's interest table. Under AOI routing this approximates the
    /// node's share of inbound usercmd fan-in, which `nprocs` alone does
    /// not: a node hosting one hot multi-zone process can receive more
    /// traffic than a node hosting ten single-zone ones. Zero in legacy
    /// broadcast mode, where fan-in is uniform by construction.
    pub zones: u32,
    /// When the sample was taken (sender clock; the cluster is a LAN, so
    /// clock skew is ignored as in the prototype).
    pub at: SimTime,
}

impl LoadInfo {
    /// A sample.
    pub fn new(node: NodeId, cpu_pct: f64, nprocs: u32, at: SimTime) -> LoadInfo {
        LoadInfo {
            node,
            cpu_pct,
            nprocs,
            zones: 0,
            at,
        }
    }

    /// The same sample annotated with the node's zone-subscription count.
    pub fn with_zones(mut self, zones: u32) -> LoadInfo {
        self.zones = zones;
        self
    }

    /// Whether the sample is recent enough to base an admission or
    /// placement decision on. A node whose latest sample is older than
    /// `fresh_us` (the conductor uses 2× the heartbeat interval) may have
    /// drifted arbitrarily far from the recorded load, so it is treated as
    /// having no usable sample at all rather than a stale optimistic one.
    pub fn is_fresh(&self, now: SimTime, fresh_us: u64) -> bool {
        now.saturating_since(self.at) <= fresh_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let li = LoadInfo::new(NodeId(3), 87.5, 20, SimTime::from_secs(10));
        assert_eq!(li.node, NodeId(3));
        assert_eq!(li.cpu_pct, 87.5);
        assert_eq!(li.nprocs, 20);
        assert_eq!(li.zones, 0);
        assert_eq!(li.with_zones(7).zones, 7);
    }

    #[test]
    fn freshness_is_a_closed_window() {
        let li = LoadInfo::new(NodeId(1), 50.0, 4, SimTime::from_secs(10));
        let fresh_us = 2_000_000;
        assert!(li.is_fresh(SimTime::from_secs(10), fresh_us));
        assert!(li.is_fresh(SimTime::from_secs(12), fresh_us));
        assert!(!li.is_fresh(SimTime::from_micros(12_000_001), fresh_us));
        // A sample "from the future" (sender clock ahead) is fresh.
        assert!(li.is_fresh(SimTime::from_secs(9), fresh_us));
    }
}
