//! The decentralized load-balancing middleware (§IV).
//!
//! Every node runs a *conductor* daemon that monitors local resource
//! consumption (the paper samples via `atop`), broadcasts it periodically to
//! all peers (information policy — the heartbeat doubles as a liveness
//! signal), and maintains an approximation of the overall cluster load. The
//! algorithm is **sender-initiated** and specified by the four classic
//! policies of Shivaratri/Krueger/Singhal, exactly as the paper frames them:
//!
//! * **transfer policy** — threshold driven: a node enters the migration
//!   initiator state when local load exceeds a critical threshold or when it
//!   exceeds the approximated cluster average by a margin; the receiver side
//!   runs a two-phase commit and accepts at most one migration at a time;
//!   both sides enter a calm-down period afterwards;
//! * **location policy** — find a peer whose load is on the *opposite side*
//!   of the cluster average, about as much lighter as the sender is heavier,
//!   so both converge to the average;
//! * **selection policy** — pick the process whose CPU consumption is
//!   closest to the local excess over the average;
//! * **information policy** — periodic broadcast.
//!
//! The conductor is a pure, deterministic state machine: inputs are ticks
//! and received messages; outputs are [`LbEffect`]s the
//! runtime executes (broadcast, unicast, start a migration).
//!
//! # Example
//!
//! ```
//! use dvelm_lb::{LbEffect, Conductor, LbMsg, LoadInfo, PolicyConfig};
//! use dvelm_net::NodeId;
//! use dvelm_proc::Pid;
//! use dvelm_sim::SimTime;
//!
//! let mut cond = Conductor::new(NodeId(0), PolicyConfig::default());
//! // Learn about a light peer, then tick while overloaded.
//! cond.peers.update(LoadInfo::new(NodeId(1), 35.0, 20, SimTime::from_secs(1)));
//! let local = LoadInfo::new(NodeId(0), 95.0, 20, SimTime::from_secs(1));
//! let effects = cond.on_tick(SimTime::from_secs(1), local, &[(Pid(7), 12.0)]);
//! assert!(effects
//!     .iter()
//!     .any(|a| matches!(a, LbEffect::Send(NodeId(1), LbMsg::MigRequest { .. }))));
//! ```

pub mod admission;
pub mod conductor;
pub mod info;
pub mod monitor;
pub mod peers;
pub mod policy;
pub mod spanning;

pub use admission::{AdmissionConfig, AdmissionControl, AdmissionDenied, AdmissionStats};
pub use conductor::{Conductor, ConductorPhase, LbEffect, LbMsg, LbStats, StrategyPreference};
pub use info::LoadInfo;
pub use monitor::LoadMonitor;
pub use peers::PeerDb;
pub use policy::PolicyConfig;
pub use spanning::{tree_children, tree_depth, Dissemination};
