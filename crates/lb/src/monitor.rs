//! Load-indicator smoothing.
//!
//! The conductor samples resource consumption via an `atop`-style monitor
//! (§IV). Raw instantaneous CPU numbers gyrate with the real-time loop —
//! the paper's calm-down period exists precisely "for stabilizing the
//! indicators of their resource consumption" after a migration. An
//! exponentially weighted moving average keeps single spikes from
//! triggering spurious migrations.

/// EWMA smoother over CPU samples.
#[derive(Debug, Clone, Copy)]
pub struct LoadMonitor {
    /// Weight of the newest sample (0 < α ≤ 1).
    pub alpha: f64,
    smoothed: Option<f64>,
    samples: u64,
}

impl Default for LoadMonitor {
    fn default() -> Self {
        LoadMonitor::new(0.3)
    }
}

impl LoadMonitor {
    /// A monitor with the given smoothing factor.
    pub fn new(alpha: f64) -> LoadMonitor {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha out of (0, 1]: {alpha}");
        LoadMonitor {
            alpha,
            smoothed: None,
            samples: 0,
        }
    }

    /// Feed one raw sample; returns the smoothed value.
    pub fn sample(&mut self, cpu_pct: f64) -> f64 {
        self.samples += 1;
        let s = match self.smoothed {
            None => cpu_pct,
            Some(prev) => prev + self.alpha * (cpu_pct - prev),
        };
        self.smoothed = Some(s);
        s
    }

    /// Latest smoothed value, if any sample arrived.
    pub fn current(&self) -> Option<f64> {
        self.smoothed
    }

    /// Samples consumed.
    pub fn sample_count(&self) -> u64 {
        self.samples
    }

    /// Forget history (e.g. after a migration changed the workload shape —
    /// the indicator restabilizes from the next sample).
    pub fn reset(&mut self) {
        self.smoothed = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_passes_through() {
        let mut m = LoadMonitor::new(0.3);
        assert_eq!(m.current(), None);
        assert_eq!(m.sample(80.0), 80.0);
        assert_eq!(m.current(), Some(80.0));
    }

    #[test]
    fn converges_to_steady_state() {
        let mut m = LoadMonitor::new(0.3);
        m.sample(0.0);
        let mut last = 0.0;
        for _ in 0..50 {
            last = m.sample(70.0);
        }
        assert!((last - 70.0).abs() < 0.01, "converged to {last}");
    }

    #[test]
    fn damps_single_spikes() {
        let mut m = LoadMonitor::new(0.3);
        for _ in 0..10 {
            m.sample(60.0);
        }
        let spike = m.sample(100.0);
        assert!(
            spike < 75.0,
            "one spike moved the indicator too far: {spike}"
        );
        // And recovers.
        for _ in 0..10 {
            m.sample(60.0);
        }
        assert!((m.current().unwrap() - 60.0).abs() < 2.0);
    }

    #[test]
    fn reset_restarts_from_next_sample() {
        let mut m = LoadMonitor::new(0.3);
        m.sample(90.0);
        m.reset();
        assert_eq!(m.current(), None);
        assert_eq!(m.sample(40.0), 40.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn alpha_is_validated() {
        let _ = LoadMonitor::new(0.0);
    }
}
