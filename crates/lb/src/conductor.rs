//! The conductor daemon state machine (`cond` in Fig. 2).
//!
//! Responsibilities per §II-B and §IV: discover peers on the local network,
//! answer discovery messages, broadcast the node's load periodically, track
//! every peer's latest load, decide when to initiate a migration (transfer +
//! location + selection policies), run the receiver side of the two-phase
//! commit, and instrument the migration daemon (`migd`) — here represented
//! by the [`LbEffect::StartMigration`] output.
//!
//! # Epoch/lease ownership protocol
//!
//! The 2-phase commit assumes nothing about the network: control messages
//! may be lost, duplicated, reordered, or cut off by a partition. Safety
//! (never two live copies of one pid) rests on three rules:
//!
//! * **Epochs** — every negotiation for a pid carries an epoch from
//!   `Conductor::next_epoch`: one more than the highest epoch this node
//!   has ever witnessed for that pid (proposal and witness share one fence
//!   table, so epochs are monotone per pid across retries *and* across
//!   ownership transfers — a receiver witnesses the epoch it accepts, so
//!   when it later initiates as the owner it proposes a strictly larger
//!   one). Handlers reject any message carrying an epoch at or below the
//!   fence unless it matches their current negotiation exactly, which
//!   makes every arm idempotent under duplication and safe under
//!   reordering.
//! * **Leases** — an accept reserves the receiver only until
//!   `now + lease_us`. On sender silence (lost accept, partition, sender
//!   death) the reservation expires on its own and the receiver returns to
//!   `Idle`; symmetrically, the sender only force-cancels a wedged
//!   transfer ([`LbEffect::CancelMigration`]) once both the migration
//!   timeout *and* the lease have run out, so there is no instant at which
//!   the sender has given up while the destination may still legitimately
//!   resume the process.
//! * **Fencing** — before the runtime resumes a migrated process on the
//!   destination it asks the destination's conductor
//!   [`Conductor::restore_allowed`]: the restore proceeds only under a
//!   live, epoch-matching reservation. A stale transfer surfacing after a
//!   partition heal is refused (`AbortReason::FencedStaleEpoch` in the
//!   runtime) and the process stays where its lease says it lives.

use crate::info::{LoadInfo, LOAD_INFO_BYTES};
use crate::peers::PeerDb;
use crate::policy::PolicyConfig;
use crate::spanning::{tree_children, Dissemination};
use dvelm_net::NodeId;
use dvelm_proc::Pid;
use dvelm_sim::SimTime;
use std::collections::BTreeMap;

/// Conductor-to-conductor messages. Migration-protocol messages carry the
/// pid and ownership epoch they belong to, so every handler can tell a live
/// negotiation from a duplicated or reordered stale one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LbMsg {
    /// Discovery probe broadcast at startup.
    Hello(LoadInfo),
    /// Answer to a discovery probe.
    HelloReply(LoadInfo),
    /// Periodic load broadcast (information policy + liveness).
    Heartbeat(LoadInfo),
    /// Two-phase commit, phase one: "may I migrate this process to you?"
    MigRequest {
        pid: Pid,
        epoch: u64,
        share: f64,
        sender_load: f64,
    },
    /// Accept: reserves the receiver for this (pid, epoch) until
    /// `lease_until`.
    MigAccept {
        pid: Pid,
        epoch: u64,
        lease_until: SimTime,
    },
    /// Reject the identified negotiation.
    MigReject { pid: Pid, epoch: u64 },
    /// Migration finished (releases the receiver into calm-down, if it
    /// still holds the matching reservation).
    MigDone { pid: Pid, epoch: u64, success: bool },
    /// Graceful leave.
    Leave,
}

impl LbMsg {
    /// On-wire size for network accounting.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            LbMsg::Hello(_) | LbMsg::HelloReply(_) | LbMsg::Heartbeat(_) => LOAD_INFO_BYTES,
            LbMsg::MigRequest { .. } => 48,
            LbMsg::MigAccept { .. } => 40,
            LbMsg::MigReject { .. } | LbMsg::MigDone { .. } => 32,
            LbMsg::Leave => 16,
        }
    }
}

/// How aggressive a socket-migration strategy the conductor asks the
/// migration daemon for. Independent of the daemon's strategy vocabulary
/// (this crate cannot depend on it): the runtime maps the preference onto
/// its configured strategy, never exceeding it. Retries degrade one level
/// per failed attempt — if socket diff tracking (the incremental-collective
/// optimization) is what faults, the plain collective transfer still goes
/// through, and per-socket iteration is the conservative last resort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyPreference {
    /// Restore-first switch-over: no precopy loop at all, residual pages
    /// resolved on demand. The most aggressive ask — and the one with
    /// residual source dependencies, so a failed attempt must never be
    /// retried at this level (see [`degrade`](Self::degrade)).
    PostCopy,
    /// A bounded precopy prefix, then the post-copy switch-over. Still
    /// carries residual dependencies, but a shorter demand-resolve tail.
    Hybrid,
    /// Full speed among the residual-free strategies: socket deltas shipped
    /// during precopy.
    Incremental,
    /// No socket diff tracking: one collective transfer in the freeze phase.
    Collective,
    /// Per-socket iteration — slowest, fewest moving parts.
    Iterative,
}

impl StrategyPreference {
    /// One level more conservative (saturates at [`Iterative`](Self::Iterative)).
    /// The residual family degrades *out of* itself before anything else:
    /// a post-copy attempt that failed left the destination suspect, and
    /// re-picking a strategy that parks authoritative pages behind that
    /// same suspect destination would turn one failure into data-loss
    /// exposure. `PostCopy → Hybrid → Incremental` then the residual-free
    /// ladder.
    pub fn degrade(self) -> StrategyPreference {
        match self {
            StrategyPreference::PostCopy => StrategyPreference::Hybrid,
            StrategyPreference::Hybrid => StrategyPreference::Incremental,
            StrategyPreference::Incremental => StrategyPreference::Collective,
            StrategyPreference::Collective | StrategyPreference::Iterative => {
                StrategyPreference::Iterative
            }
        }
    }

    /// The preference for attempt `n` (1-based): full speed first, one
    /// degradation per retry. The residual family is opt-in per migration
    /// (via the runtime's configured strategy ceiling), never the default
    /// ask, so the attempt ladder starts at `Incremental`.
    pub fn for_attempt(n: u32) -> StrategyPreference {
        match n {
            0 | 1 => StrategyPreference::Incremental,
            2 => StrategyPreference::Collective,
            _ => StrategyPreference::Iterative,
        }
    }

    /// Whether this preference leaves residual source dependencies after
    /// switch-over (the post-copy family).
    pub fn has_residual_dependencies(self) -> bool {
        matches!(
            self,
            StrategyPreference::PostCopy | StrategyPreference::Hybrid
        )
    }
}

/// What the runtime must do for the conductor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LbEffect {
    /// Broadcast on the local network to all peers.
    Broadcast(LbMsg),
    /// Unicast to one peer.
    Send(NodeId, LbMsg),
    /// Hand the process to the migration daemon, destination decided.
    /// `epoch` is the negotiation's ownership epoch; the daemon threads it
    /// through to the restore fence on the destination.
    StartMigration {
        pid: Pid,
        dest: NodeId,
        prefer: StrategyPreference,
        epoch: u64,
    },
    /// Tell the migration daemon to abort the in-flight migration of
    /// `pid` (epoch-matched): both the migration timeout and the
    /// destination's lease have expired, so the destination can no longer
    /// legitimately resume the process. The conductor stays in `Sending`
    /// until the daemon reports back through
    /// [`Conductor::on_migration_finished`].
    CancelMigration { pid: Pid, epoch: u64 },
}

/// Migration-protocol state of a conductor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConductorPhase {
    /// Not involved in any migration.
    Idle,
    /// Sent a MigRequest, waiting for the answer.
    AwaitingAccept {
        dest: NodeId,
        pid: Pid,
        epoch: u64,
        since: SimTime,
    },
    /// Sender side of a running migration. `lease_until` is the
    /// destination's reservation deadline, echoed back in its accept.
    Sending {
        dest: NodeId,
        pid: Pid,
        epoch: u64,
        since: SimTime,
        lease_until: SimTime,
    },
    /// Receiver side of a running migration (reserved by the 2-phase
    /// commit; accepts no second migration). The reservation is a lease:
    /// it expires at `lease_until` if the sender goes silent.
    Receiving {
        from: NodeId,
        pid: Pid,
        epoch: u64,
        since: SimTime,
        lease_until: SimTime,
    },
    /// Stabilizing after a migration; initiates and accepts nothing.
    CalmDown { until: SimTime },
}

/// Counters for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LbStats {
    pub heartbeats_sent: u64,
    pub requests_sent: u64,
    pub requests_accepted: u64,
    pub requests_rejected: u64,
    pub migrations_completed: u64,
    pub migrations_failed: u64,
    /// Retry attempts fired after a failed migration.
    pub retries: u64,
    /// Migrations given up after `retry_max_attempts` failed attempts.
    pub migrations_abandoned: u64,
    /// Migration intents parked because every viable destination sat above
    /// the admission high-water mark.
    pub deferrals: u64,
    /// Deferred intents later promoted into a real migration request.
    pub deferred_promoted: u64,
    /// Deferred intents shed because the bounded queue overflowed.
    pub deferred_shed: u64,
    /// Receiver-side reservations that expired on sender silence (lost
    /// accept, partition, sender death) before a matching `MigDone`.
    pub leases_expired: u64,
}

/// A failed migration waiting for its backoff to elapse.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RetryState {
    pid: Pid,
    /// Failed attempts so far (the next attempt is number `failures + 1`).
    failures: u32,
    /// Earliest instant the retry may fire.
    not_before: SimTime,
}

/// A migration intent parked by admission control: the transfer policy
/// fired, but every viable destination was above the high-water mark.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Deferred {
    pid: Pid,
    /// The process's CPU share when deferred — doubles as the priority
    /// when the bounded queue must shed.
    share: f64,
    since: SimTime,
}

/// The conductor daemon of one node.
#[derive(Debug)]
pub struct Conductor {
    pub node: NodeId,
    pub cfg: PolicyConfig,
    pub peers: PeerDb,
    /// Heartbeat dissemination strategy (§IV information policy; the
    /// spanning tree is the scalable option the paper cites as out of
    /// scope).
    pub dissemination: Dissemination,
    phase: ConductorPhase,
    last_heartbeat: Option<SimTime>,
    stats: LbStats,
    /// Destinations of failed migrations, embargoed until the instant.
    blacklist: Vec<(NodeId, SimTime)>,
    /// At most one failed migration awaits retry at a time (the conductor
    /// runs at most one migration at a time to begin with).
    retry: Option<RetryState>,
    /// Migration intents waiting for a destination to drain below the
    /// admission high-water mark. Bounded by `cfg.max_deferred`.
    deferred: Vec<Deferred>,
    /// Highest ownership epoch witnessed per pid — proposals and received
    /// messages both raise it (one table serves as proposal counter *and*
    /// fence, see the module docs). Messages at or below the fence that do
    /// not match the current negotiation are stale.
    fence: BTreeMap<Pid, u64>,
}

impl Conductor {
    /// A conductor for `node`.
    pub fn new(node: NodeId, cfg: PolicyConfig) -> Conductor {
        Conductor {
            node,
            cfg,
            peers: PeerDb::new(),
            dissemination: Dissemination::FlatBroadcast,
            phase: ConductorPhase::Idle,
            last_heartbeat: None,
            stats: LbStats::default(),
            blacklist: Vec::new(),
            retry: None,
            deferred: Vec::new(),
            fence: BTreeMap::new(),
        }
    }

    /// Current protocol phase.
    pub fn phase(&self) -> ConductorPhase {
        self.phase
    }

    /// Counters.
    pub fn stats(&self) -> LbStats {
        self.stats
    }

    /// Highest ownership epoch witnessed for `pid` (0 if never seen).
    pub fn fence_of(&self, pid: Pid) -> u64 {
        self.fence.get(&pid).copied().unwrap_or(0)
    }

    /// Propose the next ownership epoch for `pid` and raise the fence to
    /// it, so a duplicated echo of this very proposal is already stale and
    /// every later proposal is strictly larger.
    fn next_epoch(&mut self, pid: Pid) -> u64 {
        let e = self.fence_of(pid) + 1;
        self.fence.insert(pid, e);
        e
    }

    /// Raise the fence for `pid` to at least `epoch`.
    fn witness_epoch(&mut self, pid: Pid, epoch: u64) {
        let f = self.fence.entry(pid).or_insert(0);
        if epoch > *f {
            *f = epoch;
        }
    }

    /// Restore fence: may the runtime resume `pid` here under `epoch`?
    /// True only while this conductor holds the matching `Receiving`
    /// reservation and its lease is still live — a transfer surfacing
    /// after its lease expired (or after a newer negotiation superseded
    /// it) must be refused, or a partition heal could yield two live
    /// copies.
    pub fn restore_allowed(&self, pid: Pid, epoch: u64, now: SimTime) -> bool {
        matches!(
            self.phase,
            ConductorPhase::Receiving {
                pid: p,
                epoch: e,
                lease_until,
                ..
            } if p == pid && e == epoch && now <= lease_until
        )
    }

    /// Destinations currently embargoed after failed migrations.
    pub fn blacklisted(&self, now: SimTime) -> Vec<NodeId> {
        self.blacklist
            .iter()
            .filter(|(_, until)| *until > now)
            .map(|(n, _)| *n)
            .collect()
    }

    /// The pid of a failed migration awaiting its backoff, if any.
    pub fn retry_pending(&self) -> Option<Pid> {
        self.retry.map(|r| r.pid)
    }

    /// Pids parked in the admission deferral queue.
    pub fn deferred_pids(&self) -> Vec<Pid> {
        self.deferred.iter().map(|d| d.pid).collect()
    }

    /// Park an intent; the bounded queue sheds the lowest-priority entry
    /// (smallest CPU share — the candidate itself, if it is smallest).
    fn defer(&mut self, pid: Pid, share: f64, now: SimTime) {
        self.stats.deferrals += 1;
        self.deferred.push(Deferred {
            pid,
            share,
            since: now,
        });
        while self.deferred.len() > self.cfg.max_deferred {
            let min_i = self
                .deferred
                .iter()
                .enumerate()
                .min_by(|a, b| {
                    a.1.share
                        .partial_cmp(&b.1.share)
                        .expect("CPU shares are finite")
                        // Equal shares: shed the youngest intent.
                        .then(b.1.since.cmp(&a.1.since))
                })
                .map(|(i, _)| i)
                .expect("queue is non-empty");
            self.deferred.remove(min_i);
            self.stats.deferred_shed += 1;
        }
    }

    /// Exponential backoff before attempt `failures + 1`.
    fn backoff_us(&self, failures: u32) -> u64 {
        self.cfg
            .retry_backoff_base_us
            .saturating_mul(1u64 << failures.saturating_sub(1).min(16))
    }

    /// The known membership (self + peers), for tree construction.
    fn members(&self) -> Vec<NodeId> {
        let mut m: Vec<NodeId> = self.peers.iter().map(|li| li.node).collect();
        m.push(self.node);
        m
    }

    /// Node start: scan the local network for other conductors (§IV).
    pub fn on_start(&mut self, local: LoadInfo) -> Vec<LbEffect> {
        vec![LbEffect::Broadcast(LbMsg::Hello(local))]
    }

    /// Periodic tick (the runtime calls this at least once per heartbeat
    /// period, with a fresh local load sample and the process list).
    pub fn on_tick(
        &mut self,
        now: SimTime,
        local: LoadInfo,
        procs: &[(Pid, f64)],
    ) -> Vec<LbEffect> {
        let mut effects = Vec::new();
        self.peers.expire(now, self.cfg.peer_stale_us);
        self.blacklist.retain(|(_, until)| *until > now);

        // Information policy: periodic broadcast, doubling as heartbeat.
        let due = match self.last_heartbeat {
            None => true,
            Some(t) => now.saturating_since(t) >= self.cfg.heartbeat_period_us,
        };
        if due {
            self.last_heartbeat = Some(now);
            self.stats.heartbeats_sent += 1;
            match self.dissemination {
                Dissemination::FlatBroadcast => {
                    effects.push(LbEffect::Broadcast(LbMsg::Heartbeat(local)));
                }
                Dissemination::SpanningTree => {
                    // Root of the tree: send only to our children; they
                    // relay on reception.
                    for child in tree_children(&self.members(), self.node, self.node) {
                        effects.push(LbEffect::Send(child, LbMsg::Heartbeat(local)));
                    }
                }
            }
        }

        // Phase timeouts / expiry.
        match self.phase {
            ConductorPhase::AwaitingAccept { since, .. }
                if now.saturating_since(since) > self.cfg.negotiation_timeout_us =>
            {
                self.phase = ConductorPhase::Idle;
            }
            // Receiver lease expiry: the sender went silent (lost accept,
            // partition, death) — the reservation dissolves on its own.
            ConductorPhase::Receiving { lease_until, .. } if now > lease_until => {
                self.stats.leases_expired += 1;
                self.phase = ConductorPhase::Idle;
            }
            // Sender force-cancel: only once BOTH the migration timeout and
            // the destination's lease have expired may the transfer be torn
            // down — before the lease runs out the destination could still
            // legitimately resume the process, and cancelling would race
            // that restore. The phase stays `Sending`; the daemon's abort
            // reports back through `on_migration_finished`, which performs
            // the transition (and blacklist/retry bookkeeping).
            ConductorPhase::Sending {
                pid,
                epoch,
                since,
                lease_until,
                ..
            } if now.saturating_since(since) > self.cfg.migration_timeout_us
                && now > lease_until =>
            {
                effects.push(LbEffect::CancelMigration { pid, epoch });
            }
            ConductorPhase::CalmDown { until } if now >= until => {
                self.phase = ConductorPhase::Idle;
            }
            _ => {}
        }

        // Retry policy: a failed migration whose backoff elapsed bypasses
        // the transfer policy — the decision to move the process already
        // fell; only the destination (and strategy preference) may change.
        if self.phase == ConductorPhase::Idle {
            if let Some(retry) = self.retry {
                if now >= retry.not_before {
                    let avg = self.peers.cluster_average(local.cpu_pct);
                    let exclude = self.blacklisted(now);
                    let dest = self.cfg.choose_destination_at(
                        now,
                        local.cpu_pct,
                        avg,
                        &self.peers,
                        &exclude,
                    );
                    let share = procs.iter().find(|(p, _)| *p == retry.pid).map(|(_, s)| *s);
                    match (dest, share) {
                        (Some(dest), Some(share)) => {
                            let epoch = self.next_epoch(retry.pid);
                            self.phase = ConductorPhase::AwaitingAccept {
                                dest,
                                pid: retry.pid,
                                epoch,
                                since: now,
                            };
                            self.stats.retries += 1;
                            self.stats.requests_sent += 1;
                            effects.push(LbEffect::Send(
                                dest,
                                LbMsg::MigRequest {
                                    pid: retry.pid,
                                    epoch,
                                    share,
                                    sender_load: local.cpu_pct,
                                },
                            ));
                        }
                        (None, Some(_)) => {
                            // Nowhere to go right now: wait one more backoff
                            // without burning an attempt.
                            self.retry = Some(RetryState {
                                not_before: now + self.backoff_us(retry.failures),
                                ..retry
                            });
                        }
                        (_, None) => {
                            // The process is gone (killed, or moved some
                            // other way): nothing left to retry.
                            self.retry = None;
                        }
                    }
                    return effects;
                }
            }
        }

        // Deferred intents: the transfer policy already fired for these;
        // only a congested destination held them back. The moment a fresh
        // sample shows a drained receiver, the highest-priority intent is
        // promoted (it owns the Idle slot ahead of fresh policy decisions).
        if self.phase == ConductorPhase::Idle && self.retry.is_none() && !self.deferred.is_empty() {
            self.deferred
                .retain(|d| procs.iter().any(|(p, _)| *p == d.pid));
            let avg = self.peers.cluster_average(local.cpu_pct);
            let exclude = self.blacklisted(now);
            if let Some(dest) =
                self.cfg
                    .choose_destination_at(now, local.cpu_pct, avg, &self.peers, &exclude)
            {
                if let Some(max_i) = self
                    .deferred
                    .iter()
                    .enumerate()
                    .max_by(|a, b| {
                        a.1.share
                            .partial_cmp(&b.1.share)
                            .expect("CPU shares are finite")
                            // Equal shares: promote the oldest intent.
                            .then(b.1.since.cmp(&a.1.since))
                    })
                    .map(|(i, _)| i)
                {
                    let d = self.deferred.remove(max_i);
                    self.stats.deferred_promoted += 1;
                    self.stats.requests_sent += 1;
                    let epoch = self.next_epoch(d.pid);
                    self.phase = ConductorPhase::AwaitingAccept {
                        dest,
                        pid: d.pid,
                        epoch,
                        since: now,
                    };
                    effects.push(LbEffect::Send(
                        dest,
                        LbMsg::MigRequest {
                            pid: d.pid,
                            epoch,
                            share: d.share,
                            sender_load: local.cpu_pct,
                        },
                    ));
                    return effects;
                }
            }
        }

        // Transfer policy, sender side. A pending retry owns the conductor's
        // single migration slot — no fresh migration starts under it.
        if self.phase == ConductorPhase::Idle && self.retry.is_none() {
            let avg = self.peers.cluster_average(local.cpu_pct);
            if self.cfg.should_initiate(local.cpu_pct, avg) {
                let exclude = self.blacklisted(now);
                // A deferred intent owns its process; the selection policy
                // only considers the rest.
                let eligible: Vec<(Pid, f64)> = procs
                    .iter()
                    .copied()
                    .filter(|(p, _)| !self.deferred.iter().any(|d| d.pid == *p))
                    .collect();
                if let Some(pid) = self.cfg.choose_process(local.cpu_pct, avg, &eligible) {
                    let share = eligible
                        .iter()
                        .find(|(p, _)| *p == pid)
                        .map(|(_, s)| *s)
                        .expect("selected pid comes from procs");
                    match self.cfg.choose_destination_at(
                        now,
                        local.cpu_pct,
                        avg,
                        &self.peers,
                        &exclude,
                    ) {
                        Some(dest) => {
                            let epoch = self.next_epoch(pid);
                            self.phase = ConductorPhase::AwaitingAccept {
                                dest,
                                pid,
                                epoch,
                                since: now,
                            };
                            self.stats.requests_sent += 1;
                            effects.push(LbEffect::Send(
                                dest,
                                LbMsg::MigRequest {
                                    pid,
                                    epoch,
                                    share,
                                    sender_load: local.cpu_pct,
                                },
                            ));
                        }
                        None if self
                            .cfg
                            .viable_but_congested(now, avg, &self.peers, &exclude) =>
                        {
                            self.defer(pid, share, now);
                        }
                        None => {}
                    }
                }
            }
        }
        effects
    }

    /// A message arrived from a peer conductor.
    pub fn on_msg(
        &mut self,
        now: SimTime,
        from: NodeId,
        msg: LbMsg,
        local: LoadInfo,
    ) -> Vec<LbEffect> {
        // An expired calm-down ends at the next event, whichever comes
        // first — a tick or an incoming request.
        if let ConductorPhase::CalmDown { until } = self.phase {
            if now >= until {
                self.phase = ConductorPhase::Idle;
            }
        }
        match msg {
            LbMsg::Hello(info) => {
                self.peers.update(info);
                vec![LbEffect::Send(from, LbMsg::HelloReply(local))]
            }
            LbMsg::HelloReply(info) => {
                self.peers.update(info);
                Vec::new()
            }
            LbMsg::Heartbeat(info) => {
                self.peers.update(info);
                match self.dissemination {
                    Dissemination::FlatBroadcast => Vec::new(),
                    Dissemination::SpanningTree => {
                        // Relay down the tree rooted at the heartbeat's
                        // origin.
                        tree_children(&self.members(), info.node, self.node)
                            .into_iter()
                            .map(|child| LbEffect::Send(child, LbMsg::Heartbeat(info)))
                            .collect()
                    }
                }
            }
            LbMsg::MigRequest {
                pid,
                epoch,
                share: _,
                sender_load: _,
            } => {
                if let ConductorPhase::Receiving {
                    from: f,
                    pid: p,
                    epoch: e,
                    lease_until,
                    ..
                } = self.phase
                {
                    // Duplicate of the request that granted the current
                    // reservation: re-send the same accept, touch nothing.
                    if f == from && p == pid && e == epoch {
                        return vec![LbEffect::Send(
                            from,
                            LbMsg::MigAccept {
                                pid,
                                epoch,
                                lease_until,
                            },
                        )];
                    }
                    // A strictly newer epoch from the same sender for the
                    // same pid supersedes the reservation it already holds
                    // (its earlier accept was lost and it re-proposed):
                    // re-grant under the new epoch with a fresh lease. No
                    // counters — this is one logical reservation renewed,
                    // not a second one granted.
                    if f == from && p == pid && epoch > e {
                        self.witness_epoch(pid, epoch);
                        let lease_until = now + self.cfg.lease_us;
                        self.phase = ConductorPhase::Receiving {
                            from,
                            pid,
                            epoch,
                            since: now,
                            lease_until,
                        };
                        return vec![LbEffect::Send(
                            from,
                            LbMsg::MigAccept {
                                pid,
                                epoch,
                                lease_until,
                            },
                        )];
                    }
                }
                // Stale epoch: a duplicated or reordered leftover of an
                // older negotiation. Echo a reject (idempotent — the sender
                // only honours epoch-matching answers) without touching
                // stats, so a duplicated trace leaves identical counters.
                if epoch <= self.fence_of(pid) {
                    return vec![LbEffect::Send(from, LbMsg::MigReject { pid, epoch })];
                }
                self.witness_epoch(pid, epoch);
                // Receiver transfer policy: one migration at a time, not in
                // calm-down, and genuinely below the cluster average.
                let avg = self.peers.cluster_average(local.cpu_pct);
                let accept = self.phase == ConductorPhase::Idle
                    && self.cfg.should_accept(local.cpu_pct, avg);
                if accept {
                    let lease_until = now + self.cfg.lease_us;
                    self.phase = ConductorPhase::Receiving {
                        from,
                        pid,
                        epoch,
                        since: now,
                        lease_until,
                    };
                    self.stats.requests_accepted += 1;
                    vec![LbEffect::Send(
                        from,
                        LbMsg::MigAccept {
                            pid,
                            epoch,
                            lease_until,
                        },
                    )]
                } else {
                    self.stats.requests_rejected += 1;
                    vec![LbEffect::Send(from, LbMsg::MigReject { pid, epoch })]
                }
            }
            LbMsg::MigAccept {
                pid,
                epoch,
                lease_until,
            } => match self.phase {
                ConductorPhase::AwaitingAccept {
                    dest,
                    pid: p,
                    epoch: e,
                    since,
                } if dest == from && p == pid && e == epoch => {
                    self.phase = ConductorPhase::Sending {
                        dest,
                        pid,
                        epoch,
                        since,
                        lease_until,
                    };
                    // Retries ask for one level less of socket-migration
                    // machinery per failed attempt.
                    let prefer = match self.retry {
                        Some(r) if r.pid == pid => StrategyPreference::for_attempt(r.failures + 1),
                        _ => StrategyPreference::Incremental,
                    };
                    vec![LbEffect::StartMigration {
                        pid,
                        dest,
                        prefer,
                        epoch,
                    }]
                }
                // Duplicate of the accept that started the current
                // transfer: ignore (the old catch-all replied
                // `MigDone { success: false }` here, which would have
                // released the receiver mid-migration).
                ConductorPhase::Sending {
                    dest,
                    pid: p,
                    epoch: e,
                    ..
                } if dest == from && p == pid && e == epoch => Vec::new(),
                // Stale accept (we already timed out, or a newer epoch
                // superseded it): release exactly the reservation it names.
                // The receiver ignores the release unless it still holds
                // that (pid, epoch), so duplicates are harmless.
                _ => vec![LbEffect::Send(
                    from,
                    LbMsg::MigDone {
                        pid,
                        epoch,
                        success: false,
                    },
                )],
            },
            LbMsg::MigReject { pid, epoch } => {
                if let ConductorPhase::AwaitingAccept {
                    dest,
                    pid: p,
                    epoch: e,
                    ..
                } = self.phase
                {
                    if dest == from && p == pid && e == epoch {
                        self.phase = ConductorPhase::Idle;
                        // A rejected retry waits a flat base backoff before
                        // asking again — the rejection is the receiver's
                        // load talking, not a failure of ours.
                        if let Some(r) = self.retry {
                            if r.pid == pid {
                                self.retry = Some(RetryState {
                                    not_before: now + self.cfg.retry_backoff_base_us,
                                    ..r
                                });
                            }
                        }
                    }
                }
                Vec::new()
            }
            LbMsg::MigDone {
                pid,
                epoch,
                success,
            } => {
                if let ConductorPhase::Receiving {
                    from: f,
                    pid: p,
                    epoch: e,
                    ..
                } = self.phase
                {
                    if f == from && p == pid && e == epoch {
                        if success {
                            self.stats.migrations_completed += 1;
                        }
                        self.phase = ConductorPhase::CalmDown {
                            until: now + self.cfg.calm_down_us,
                        };
                    }
                }
                Vec::new()
            }
            LbMsg::Leave => {
                self.peers.remove(from);
                Vec::new()
            }
        }
    }

    /// The migration daemon reports the sender-side outcome.
    ///
    /// Success enters calm-down and clears any pending retry. Failure
    /// blacklists the destination, and either schedules a retry with
    /// exponential backoff (staying out of calm-down so the retry can fire)
    /// or — once `retry_max_attempts` attempts failed — abandons the
    /// migration and calms down.
    pub fn on_migration_finished(&mut self, now: SimTime, success: bool) -> Vec<LbEffect> {
        if let ConductorPhase::Sending {
            dest, pid, epoch, ..
        } = self.phase
        {
            if success {
                self.stats.migrations_completed += 1;
                if self.retry.map(|r| r.pid) == Some(pid) {
                    self.retry = None;
                }
                self.phase = ConductorPhase::CalmDown {
                    until: now + self.cfg.calm_down_us,
                };
            } else {
                self.stats.migrations_failed += 1;
                self.blacklist.push((dest, now + self.cfg.blacklist_us));
                let failures = match self.retry {
                    Some(r) if r.pid == pid => r.failures + 1,
                    _ => 1,
                };
                if failures >= self.cfg.retry_max_attempts {
                    self.stats.migrations_abandoned += 1;
                    self.retry = None;
                    self.phase = ConductorPhase::CalmDown {
                        until: now + self.cfg.calm_down_us,
                    };
                } else {
                    self.retry = Some(RetryState {
                        pid,
                        failures,
                        not_before: now + self.backoff_us(failures),
                    });
                    self.phase = ConductorPhase::Idle;
                }
            }
            vec![LbEffect::Send(
                dest,
                LbMsg::MigDone {
                    pid,
                    epoch,
                    success,
                },
            )]
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvelm_sim::SECOND;

    /// An accept as the receiver would send it: default lease from `at`.
    fn accept(pid: Pid, epoch: u64, at: SimTime) -> LbMsg {
        LbMsg::MigAccept {
            pid,
            epoch,
            lease_until: at + PolicyConfig::default().lease_us,
        }
    }

    /// In-memory bus of conductors: delivers messages instantly.
    struct Bus {
        conds: Vec<Conductor>,
        loads: Vec<f64>,
        now: SimTime,
    }

    impl Bus {
        fn new(loads: &[f64]) -> Bus {
            let conds = (0..loads.len())
                .map(|i| Conductor::new(NodeId(i as u32), PolicyConfig::default()))
                .collect();
            let mut bus = Bus {
                conds,
                loads: loads.to_vec(),
                now: SimTime::from_secs(1),
            };
            // Startup discovery.
            let starts: Vec<(usize, Vec<LbEffect>)> = (0..bus.conds.len())
                .map(|i| {
                    let li = bus.local(i);
                    (i, bus.conds[i].on_start(li))
                })
                .collect();
            for (i, effects) in starts {
                bus.dispatch(i, effects);
            }
            bus
        }

        fn local(&self, i: usize) -> LoadInfo {
            LoadInfo::new(NodeId(i as u32), self.loads[i], 20, self.now)
        }

        fn dispatch(&mut self, from: usize, effects: Vec<LbEffect>) -> Vec<LbEffect> {
            let mut migrations = Vec::new();
            let mut queue: Vec<(usize, LbEffect)> =
                effects.into_iter().map(|a| (from, a)).collect();
            while let Some((src, action)) = queue.pop() {
                match action {
                    LbEffect::Broadcast(msg) => {
                        for i in 0..self.conds.len() {
                            if i != src {
                                let li = self.local(i);
                                let out =
                                    self.conds[i].on_msg(self.now, NodeId(src as u32), msg, li);
                                queue.extend(out.into_iter().map(|a| (i, a)));
                            }
                        }
                    }
                    LbEffect::Send(to, msg) => {
                        let i = to.0 as usize;
                        let li = self.local(i);
                        let out = self.conds[i].on_msg(self.now, NodeId(src as u32), msg, li);
                        queue.extend(out.into_iter().map(|a| (i, a)));
                    }
                    LbEffect::StartMigration { .. } | LbEffect::CancelMigration { .. } => {
                        migrations.push(action)
                    }
                }
            }
            migrations
        }

        fn tick_all(&mut self) -> Vec<(usize, LbEffect)> {
            let mut migs = Vec::new();
            for i in 0..self.conds.len() {
                let li = self.local(i);
                let procs: Vec<(Pid, f64)> = (0..20)
                    .map(|k| (Pid((i * 100 + k) as u64), self.loads[i] / 20.0))
                    .collect();
                let effects = self.conds[i].on_tick(self.now, li, &procs);
                for m in self.dispatch(i, effects) {
                    migs.push((i, m));
                }
            }
            migs
        }
    }

    #[test]
    fn discovery_populates_peer_dbs() {
        let bus = Bus::new(&[50.0, 60.0, 70.0]);
        for c in &bus.conds {
            assert_eq!(c.peers.len(), 2, "{:?} sees both peers", c.node);
        }
    }

    #[test]
    fn overloaded_node_initiates_to_mirror_peer() {
        let mut bus = Bus::new(&[95.0, 75.0, 55.0]);
        let migs = bus.tick_all();
        assert_eq!(migs.len(), 1, "exactly one migration started");
        let (sender, action) = &migs[0];
        assert_eq!(*sender, 0);
        match action {
            LbEffect::StartMigration { dest, .. } => assert_eq!(*dest, NodeId(2)),
            other => panic!("expected StartMigration, got {other:?}"),
        }
        assert!(matches!(
            bus.conds[0].phase(),
            ConductorPhase::Sending { .. }
        ));
        assert!(matches!(
            bus.conds[2].phase(),
            ConductorPhase::Receiving { .. }
        ));
    }

    #[test]
    fn balanced_cluster_stays_quiet() {
        let mut bus = Bus::new(&[75.0, 74.0, 76.0, 75.5]);
        assert!(bus.tick_all().is_empty());
        for c in &bus.conds {
            assert_eq!(c.phase(), ConductorPhase::Idle);
        }
    }

    #[test]
    fn receiver_rejects_second_request_during_migration() {
        let mut bus = Bus::new(&[95.0, 96.0, 40.0]);
        // Both heavy nodes target node2; only one wins the reservation.
        let migs = bus.tick_all();
        assert_eq!(
            migs.len(),
            1,
            "two-phase commit admits exactly one migration"
        );
        let rejected: u64 = bus.conds[2].stats().requests_rejected;
        assert_eq!(rejected, 1);
    }

    #[test]
    fn completion_enters_calm_down_on_both_sides() {
        let mut bus = Bus::new(&[95.0, 75.0, 55.0]);
        bus.tick_all();
        let done = bus.conds[0].on_migration_finished(bus.now, true);
        bus.dispatch(0, done);
        assert!(matches!(
            bus.conds[0].phase(),
            ConductorPhase::CalmDown { .. }
        ));
        assert!(matches!(
            bus.conds[2].phase(),
            ConductorPhase::CalmDown { .. }
        ));
        // Still overloaded, but calm-down suppresses a new request.
        assert!(bus.tick_all().is_empty());
        // After the calm-down expires, balancing resumes. The long silence
        // expired every peer entry, so the first tick only re-populates the
        // peer databases via heartbeats; the next one initiates.
        bus.now = bus.now + PolicyConfig::default().calm_down_us + SECOND;
        assert!(bus.tick_all().is_empty(), "peers must be re-learned first");
        bus.now += SECOND;
        let migs = bus.tick_all();
        assert_eq!(migs.len(), 1);
    }

    #[test]
    fn negotiation_timeout_releases_sender() {
        let mut c = Conductor::new(NodeId(0), PolicyConfig::default());
        let li = |cpu, at| LoadInfo::new(NodeId(0), cpu, 20, at);
        c.peers
            .update(LoadInfo::new(NodeId(1), 40.0, 20, SimTime::from_secs(1)));
        let t1 = SimTime::from_secs(1);
        let effects = c.on_tick(t1, li(95.0, t1), &[(Pid(7), 10.0)]);
        assert!(effects
            .iter()
            .any(|a| matches!(a, LbEffect::Send(_, LbMsg::MigRequest { .. }))));
        assert!(matches!(c.phase(), ConductorPhase::AwaitingAccept { .. }));
        // No answer arrives; next tick after the timeout resets to Idle.
        let t2 = SimTime::from_secs(3);
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t2));
        c.on_tick(t2, li(50.0, t2), &[]);
        assert_eq!(c.phase(), ConductorPhase::Idle);
    }

    #[test]
    fn stale_accept_releases_receiver() {
        let mut c = Conductor::new(NodeId(0), PolicyConfig::default());
        let li = LoadInfo::new(NodeId(0), 50.0, 20, SimTime::from_secs(1));
        // An accept arrives while we are Idle (we already gave up). The
        // release names exactly the reservation the accept carried.
        let t = SimTime::from_secs(1);
        let out = c.on_msg(t, NodeId(1), accept(Pid(5), 3, t), li);
        assert_eq!(
            out,
            vec![LbEffect::Send(
                NodeId(1),
                LbMsg::MigDone {
                    pid: Pid(5),
                    epoch: 3,
                    success: false
                }
            )]
        );
    }

    #[test]
    fn heartbeats_follow_the_period() {
        let mut c = Conductor::new(NodeId(0), PolicyConfig::default());
        let mk = |at| LoadInfo::new(NodeId(0), 50.0, 20, at);
        let t = SimTime::from_secs(1);
        let a1 = c.on_tick(t, mk(t), &[]);
        assert!(a1
            .iter()
            .any(|a| matches!(a, LbEffect::Broadcast(LbMsg::Heartbeat(_)))));
        // 100 ms later: too early.
        let t2 = t + 100_000;
        assert!(c.on_tick(t2, mk(t2), &[]).is_empty());
        // A full period later: due again.
        let t3 = t + SECOND;
        assert!(!c.on_tick(t3, mk(t3), &[]).is_empty());
        assert_eq!(c.stats().heartbeats_sent, 2);
    }

    #[test]
    fn silent_peer_expires_from_db() {
        let mut c = Conductor::new(NodeId(0), PolicyConfig::default());
        c.peers
            .update(LoadInfo::new(NodeId(1), 40.0, 20, SimTime::from_secs(1)));
        let t = SimTime::from_secs(10);
        c.on_tick(t, LoadInfo::new(NodeId(0), 50.0, 20, t), &[]);
        assert!(c.peers.is_empty());
    }

    #[test]
    fn leave_removes_peer() {
        let mut c = Conductor::new(NodeId(0), PolicyConfig::default());
        c.peers
            .update(LoadInfo::new(NodeId(1), 40.0, 20, SimTime::from_secs(1)));
        let li = LoadInfo::new(NodeId(0), 50.0, 20, SimTime::from_secs(1));
        c.on_msg(SimTime::from_secs(1), NodeId(1), LbMsg::Leave, li);
        assert!(c.peers.is_empty());
    }

    #[test]
    fn strategy_preference_degrades_per_attempt() {
        assert_eq!(
            StrategyPreference::for_attempt(1),
            StrategyPreference::Incremental
        );
        assert_eq!(
            StrategyPreference::for_attempt(2),
            StrategyPreference::Collective
        );
        assert_eq!(
            StrategyPreference::for_attempt(3),
            StrategyPreference::Iterative
        );
        assert_eq!(
            StrategyPreference::for_attempt(9),
            StrategyPreference::Iterative
        );
        assert_eq!(
            StrategyPreference::Iterative.degrade(),
            StrategyPreference::Iterative,
            "saturates"
        );
        // The residual family degrades out of itself first: a retry after
        // a post-copy failure must never re-pick a residual strategy.
        assert_eq!(
            StrategyPreference::PostCopy.degrade(),
            StrategyPreference::Hybrid
        );
        assert_eq!(
            StrategyPreference::Hybrid.degrade(),
            StrategyPreference::Incremental
        );
        assert!(StrategyPreference::PostCopy.has_residual_dependencies());
        assert!(StrategyPreference::Hybrid.has_residual_dependencies());
        assert!(!StrategyPreference::Hybrid
            .degrade()
            .has_residual_dependencies());
        // And the attempt ladder never *asks* for a residual strategy.
        for n in 0..12 {
            assert!(!StrategyPreference::for_attempt(n).has_residual_dependencies());
        }
    }

    /// Drives one sender conductor through: attempt 1 (fails) → backoff →
    /// attempt 2 to a non-blacklisted peer with a degraded preference
    /// (fails) → doubled backoff → attempt 3 (fails) → abandoned.
    #[test]
    fn fault_failed_migration_retries_with_backoff_and_blacklist() {
        let cfg = PolicyConfig::default();
        let mut c = Conductor::new(NodeId(0), cfg);
        let local = |cpu: f64, at: SimTime| LoadInfo::new(NodeId(0), cpu, 20, at);
        let learn = |c: &mut Conductor, at: SimTime| {
            c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, at));
            c.peers.update(LoadInfo::new(NodeId(2), 45.0, 20, at));
        };
        let procs = [(Pid(7), 10.0)];

        // Attempt 1: the mirror peer (node1) is chosen.
        let t1 = SimTime::from_secs(1);
        learn(&mut c, t1);
        let out = c.on_tick(t1, local(95.0, t1), &procs);
        assert!(out.iter().any(|e| matches!(
            e,
            LbEffect::Send(NodeId(1), LbMsg::MigRequest { epoch: 1, .. })
        )));
        let out = c.on_msg(t1, NodeId(1), accept(Pid(7), 1, t1), local(95.0, t1));
        assert_eq!(
            out,
            vec![LbEffect::StartMigration {
                pid: Pid(7),
                dest: NodeId(1),
                prefer: StrategyPreference::Incremental,
                epoch: 1,
            }]
        );
        let out = c.on_migration_finished(t1, false);
        assert_eq!(
            out,
            vec![LbEffect::Send(
                NodeId(1),
                LbMsg::MigDone {
                    pid: Pid(7),
                    epoch: 1,
                    success: false
                }
            )]
        );
        assert_eq!(c.phase(), ConductorPhase::Idle, "failure skips calm-down");
        assert_eq!(c.retry_pending(), Some(Pid(7)));
        assert_eq!(c.blacklisted(t1), vec![NodeId(1)]);
        assert_eq!(c.stats().migrations_failed, 1);

        // Inside the backoff window nothing fires — not even a fresh
        // transfer-policy migration (the retry owns the slot).
        let t2 = t1 + SECOND;
        learn(&mut c, t2);
        let out = c.on_tick(t2, local(95.0, t2), &procs);
        assert!(
            !out.iter()
                .any(|e| matches!(e, LbEffect::Send(_, LbMsg::MigRequest { .. }))),
            "backoff not elapsed: {out:?}"
        );

        // Attempt 2 fires after the base backoff, skipping the blacklisted
        // node1 and degrading to the collective strategy.
        let t3 = t1 + cfg.retry_backoff_base_us;
        learn(&mut c, t3);
        let out = c.on_tick(t3, local(95.0, t3), &procs);
        assert!(out.iter().any(|e| matches!(
            e,
            LbEffect::Send(NodeId(2), LbMsg::MigRequest { epoch: 2, .. })
        )));
        assert_eq!(c.stats().retries, 1);
        let out = c.on_msg(t3, NodeId(2), accept(Pid(7), 2, t3), local(95.0, t3));
        assert_eq!(
            out,
            vec![LbEffect::StartMigration {
                pid: Pid(7),
                dest: NodeId(2),
                prefer: StrategyPreference::Collective,
                epoch: 2,
            }]
        );
        c.on_migration_finished(t3, false);
        assert_eq!(c.retry_pending(), Some(Pid(7)));

        // Both peers are blacklisted now; a new one shows up for attempt 3,
        // which only fires after the *doubled* backoff.
        let t4 = t3 + cfg.retry_backoff_base_us;
        learn(&mut c, t4);
        c.peers.update(LoadInfo::new(NodeId(3), 40.0, 20, t4));
        let out = c.on_tick(t4, local(95.0, t4), &procs);
        assert!(
            !out.iter()
                .any(|e| matches!(e, LbEffect::Send(_, LbMsg::MigRequest { .. }))),
            "second backoff is doubled: {out:?}"
        );
        let t5 = t3 + 2 * cfg.retry_backoff_base_us;
        learn(&mut c, t5);
        c.peers.update(LoadInfo::new(NodeId(3), 40.0, 20, t5));
        let out = c.on_tick(t5, local(95.0, t5), &procs);
        assert!(out.iter().any(|e| matches!(
            e,
            LbEffect::Send(NodeId(3), LbMsg::MigRequest { epoch: 3, .. })
        )));
        assert_eq!(c.stats().retries, 2);
        let out = c.on_msg(t5, NodeId(3), accept(Pid(7), 3, t5), local(95.0, t5));
        assert_eq!(
            out,
            vec![LbEffect::StartMigration {
                pid: Pid(7),
                dest: NodeId(3),
                prefer: StrategyPreference::Iterative,
                epoch: 3,
            }]
        );

        // Third failure reaches retry_max_attempts: abandoned, calm-down.
        c.on_migration_finished(t5, false);
        assert_eq!(c.retry_pending(), None);
        assert_eq!(c.stats().migrations_abandoned, 1);
        assert!(matches!(c.phase(), ConductorPhase::CalmDown { .. }));
    }

    #[test]
    fn fault_retry_waits_when_everyone_is_blacklisted() {
        let cfg = PolicyConfig::default();
        let mut c = Conductor::new(NodeId(0), cfg);
        let local = |at: SimTime| LoadInfo::new(NodeId(0), 95.0, 20, at);
        let procs = [(Pid(7), 10.0)];
        let t1 = SimTime::from_secs(1);
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t1));
        c.on_tick(t1, local(t1), &procs);
        c.on_msg(t1, NodeId(1), accept(Pid(7), 1, t1), local(t1));
        c.on_migration_finished(t1, false);

        // Only peer is blacklisted: the due retry re-arms without burning an
        // attempt.
        let t2 = t1 + cfg.retry_backoff_base_us;
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t2));
        let out = c.on_tick(t2, local(t2), &procs);
        assert!(!out
            .iter()
            .any(|e| matches!(e, LbEffect::Send(_, LbMsg::MigRequest { .. }))));
        assert_eq!(c.retry_pending(), Some(Pid(7)), "retry survives");
        assert_eq!(c.stats().retries, 0, "no attempt burned");

        // Once the embargo lapses the retry goes back to the same peer.
        let t3 = t1 + cfg.blacklist_us;
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t3));
        let out = c.on_tick(t3, local(t3), &procs);
        assert!(out
            .iter()
            .any(|e| matches!(e, LbEffect::Send(NodeId(1), LbMsg::MigRequest { .. }))));
        assert_eq!(c.stats().retries, 1);
    }

    #[test]
    fn fault_retry_for_killed_process_is_dropped() {
        let cfg = PolicyConfig::default();
        let mut c = Conductor::new(NodeId(0), cfg);
        let local = |at: SimTime| LoadInfo::new(NodeId(0), 95.0, 20, at);
        let t1 = SimTime::from_secs(1);
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t1));
        c.on_tick(t1, local(t1), &[(Pid(7), 10.0)]);
        c.on_msg(t1, NodeId(1), accept(Pid(7), 1, t1), local(t1));
        c.on_migration_finished(t1, false);
        assert_eq!(c.retry_pending(), Some(Pid(7)));

        // The process list no longer contains Pid(7) when the retry is due.
        let t2 = t1 + cfg.retry_backoff_base_us;
        c.peers.update(LoadInfo::new(NodeId(2), 40.0, 20, t2));
        let out = c.on_tick(t2, local(t2), &[(Pid(9), 10.0)]);
        assert!(!out
            .iter()
            .any(|e| matches!(e, LbEffect::Send(_, LbMsg::MigRequest { .. }))));
        assert_eq!(c.retry_pending(), None);
    }

    #[test]
    fn fault_rejected_retry_rearms_flat_backoff() {
        let cfg = PolicyConfig::default();
        let mut c = Conductor::new(NodeId(0), cfg);
        let local = |at: SimTime| LoadInfo::new(NodeId(0), 95.0, 20, at);
        let procs = [(Pid(7), 10.0)];
        let t1 = SimTime::from_secs(1);
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t1));
        c.on_tick(t1, local(t1), &procs);
        c.on_msg(t1, NodeId(1), accept(Pid(7), 1, t1), local(t1));
        c.on_migration_finished(t1, false);

        // Retry fires toward node2, which rejects.
        let t2 = t1 + cfg.retry_backoff_base_us;
        c.peers.update(LoadInfo::new(NodeId(2), 40.0, 20, t2));
        c.on_tick(t2, local(t2), &procs);
        assert!(matches!(c.phase(), ConductorPhase::AwaitingAccept { .. }));
        c.on_msg(
            t2,
            NodeId(2),
            LbMsg::MigReject {
                pid: Pid(7),
                epoch: 2,
            },
            local(t2),
        );
        assert_eq!(c.phase(), ConductorPhase::Idle);
        assert_eq!(c.retry_pending(), Some(Pid(7)), "rejection keeps the retry");
        assert_eq!(c.stats().migrations_failed, 1, "a rejection is no failure");

        // It re-arms with the flat base backoff, then fires again.
        let t3 = t2 + cfg.retry_backoff_base_us;
        c.peers.update(LoadInfo::new(NodeId(2), 40.0, 20, t3));
        let out = c.on_tick(t3, local(t3), &procs);
        assert!(out
            .iter()
            .any(|e| matches!(e, LbEffect::Send(NodeId(2), LbMsg::MigRequest { .. }))));
        assert_eq!(c.stats().retries, 2);
    }

    #[test]
    fn congested_destination_defers_then_promotes() {
        let cfg = PolicyConfig {
            dest_high_water: 60.0,
            ..PolicyConfig::default()
        };
        let mut c = Conductor::new(NodeId(0), cfg);
        let local = |at: SimTime| LoadInfo::new(NodeId(0), 95.0, 20, at);
        let procs = [(Pid(7), 10.0)];

        // The only peer is below the average but above the high water:
        // the intent parks instead of firing.
        let t1 = SimTime::from_secs(1);
        c.peers.update(LoadInfo::new(NodeId(1), 65.0, 20, t1));
        let out = c.on_tick(t1, local(t1), &procs);
        assert!(!out
            .iter()
            .any(|e| matches!(e, LbEffect::Send(_, LbMsg::MigRequest { .. }))));
        assert_eq!(c.deferred_pids(), vec![Pid(7)]);
        assert_eq!(c.stats().deferrals, 1);
        assert_eq!(c.phase(), ConductorPhase::Idle);

        // Still congested: the intent stays parked, no duplicate deferral.
        let t2 = t1 + SECOND;
        c.peers.update(LoadInfo::new(NodeId(1), 65.0, 20, t2));
        c.on_tick(t2, local(t2), &procs);
        assert_eq!(c.stats().deferrals, 1);

        // The receiver drains below the high water: promotion fires the
        // parked request.
        let t3 = t2 + SECOND;
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t3));
        let out = c.on_tick(t3, local(t3), &procs);
        assert!(out.iter().any(|e| matches!(
            e,
            LbEffect::Send(NodeId(1), LbMsg::MigRequest { pid: Pid(7), .. })
        )));
        assert!(c.deferred_pids().is_empty());
        assert_eq!(c.stats().deferred_promoted, 1);
        assert!(matches!(c.phase(), ConductorPhase::AwaitingAccept { .. }));
    }

    #[test]
    fn deferral_queue_bounds_and_sheds_lowest_priority() {
        let cfg = PolicyConfig {
            dest_high_water: 60.0,
            max_deferred: 1,
            ..PolicyConfig::default()
        };
        let mut c = Conductor::new(NodeId(0), cfg);
        let local = |at: SimTime| LoadInfo::new(NodeId(0), 95.0, 20, at);
        // Two processes; the selection policy picks Pid(1) first (both are
        // equally distant from the 15% target and ties keep list order).
        let procs = [(Pid(1), 10.0), (Pid(2), 20.0)];

        let t1 = SimTime::from_secs(1);
        c.peers.update(LoadInfo::new(NodeId(1), 65.0, 20, t1));
        c.on_tick(t1, local(t1), &procs);
        assert_eq!(c.deferred_pids(), vec![Pid(1)]);

        // Pid(1) is parked, so the next tick defers Pid(2); the bounded
        // queue sheds the smaller-share intent.
        let t2 = t1 + SECOND;
        c.peers.update(LoadInfo::new(NodeId(1), 65.0, 20, t2));
        c.on_tick(t2, local(t2), &procs);
        assert_eq!(c.deferred_pids(), vec![Pid(2)], "lowest priority shed");
        assert_eq!(c.stats().deferrals, 2);
        assert_eq!(c.stats().deferred_shed, 1);

        // Drain: the surviving (highest-priority) intent is promoted.
        let t3 = t2 + SECOND;
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t3));
        let out = c.on_tick(t3, local(t3), &procs);
        assert!(out.iter().any(|e| matches!(
            e,
            LbEffect::Send(NodeId(1), LbMsg::MigRequest { pid: Pid(2), .. })
        )));
    }

    #[test]
    fn deferred_intent_for_killed_process_is_dropped() {
        let cfg = PolicyConfig {
            dest_high_water: 60.0,
            ..PolicyConfig::default()
        };
        let mut c = Conductor::new(NodeId(0), cfg);
        let local = |at: SimTime| LoadInfo::new(NodeId(0), 95.0, 20, at);
        let t1 = SimTime::from_secs(1);
        c.peers.update(LoadInfo::new(NodeId(1), 65.0, 20, t1));
        c.on_tick(t1, local(t1), &[(Pid(7), 10.0)]);
        assert_eq!(c.deferred_pids(), vec![Pid(7)]);

        // The process vanished before the receiver drained.
        let t2 = t1 + SECOND;
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t2));
        let out = c.on_tick(t2, local(t2), &[(Pid(9), 0.1)]);
        assert!(!out
            .iter()
            .any(|e| matches!(e, LbEffect::Send(_, LbMsg::MigRequest { .. }))));
        assert!(c.deferred_pids().is_empty());
        assert_eq!(c.stats().deferred_promoted, 0);
    }

    #[test]
    fn stale_load_sample_blocks_initiation() {
        let mut c = Conductor::new(NodeId(0), PolicyConfig::default());
        let local = |at: SimTime| LoadInfo::new(NodeId(0), 95.0, 20, at);
        // The peer's only sample is 3 s old at tick time: not yet expired
        // from the db (5 s), but past the 2-heartbeat freshness window —
        // it must not be chosen, and it is no reason to defer either.
        let t0 = SimTime::from_secs(1);
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t0));
        let t1 = SimTime::from_secs(4);
        let out = c.on_tick(t1, local(t1), &[(Pid(7), 10.0)]);
        assert!(!out
            .iter()
            .any(|e| matches!(e, LbEffect::Send(_, LbMsg::MigRequest { .. }))));
        assert!(c.deferred_pids().is_empty());
        assert_eq!(c.phase(), ConductorPhase::Idle);

        // A fresh heartbeat restores eligibility.
        let t2 = SimTime::from_secs(5);
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t2));
        let out = c.on_tick(t2, local(t2), &[(Pid(7), 10.0)]);
        assert!(out
            .iter()
            .any(|e| matches!(e, LbEffect::Send(NodeId(1), LbMsg::MigRequest { .. }))));
    }

    #[test]
    fn fault_success_clears_pending_retry() {
        let cfg = PolicyConfig::default();
        let mut c = Conductor::new(NodeId(0), cfg);
        let local = |at: SimTime| LoadInfo::new(NodeId(0), 95.0, 20, at);
        let procs = [(Pid(7), 10.0)];
        let t1 = SimTime::from_secs(1);
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t1));
        c.on_tick(t1, local(t1), &procs);
        c.on_msg(t1, NodeId(1), accept(Pid(7), 1, t1), local(t1));
        c.on_migration_finished(t1, false);

        let t2 = t1 + cfg.retry_backoff_base_us;
        c.peers.update(LoadInfo::new(NodeId(2), 40.0, 20, t2));
        c.on_tick(t2, local(t2), &procs);
        c.on_msg(t2, NodeId(2), accept(Pid(7), 2, t2), local(t2));
        c.on_migration_finished(t2, true);
        assert_eq!(c.retry_pending(), None);
        assert_eq!(c.stats().migrations_completed, 1);
        assert!(matches!(c.phase(), ConductorPhase::CalmDown { .. }));
    }

    // -----------------------------------------------------------------
    // Idempotency under duplication / staleness, per `on_msg` arm.
    // -----------------------------------------------------------------

    /// A receiver at 40% load in a 75%-average cluster, ready to accept.
    fn receiver() -> (Conductor, LoadInfo, SimTime) {
        let mut c = Conductor::new(NodeId(2), PolicyConfig::default());
        let t = SimTime::from_secs(1);
        c.peers.update(LoadInfo::new(NodeId(0), 95.0, 20, t));
        c.peers.update(LoadInfo::new(NodeId(1), 90.0, 20, t));
        let local = LoadInfo::new(NodeId(2), 40.0, 20, t);
        (c, local, t)
    }

    fn request(pid: Pid, epoch: u64) -> LbMsg {
        LbMsg::MigRequest {
            pid,
            epoch,
            share: 10.0,
            sender_load: 95.0,
        }
    }

    #[test]
    fn dup_request_replays_same_accept_without_stats() {
        let (mut c, local, t) = receiver();
        let out1 = c.on_msg(t, NodeId(0), request(Pid(7), 1), local);
        assert_eq!(c.stats().requests_accepted, 1);
        let phase = c.phase();
        // The network duplicates the request: the very same accept (same
        // lease) is re-sent, and nothing else moves.
        let out2 = c.on_msg(t + 50, NodeId(0), request(Pid(7), 1), local);
        assert_eq!(out1, out2, "replayed accept is byte-identical");
        assert_eq!(c.phase(), phase, "reservation untouched");
        assert_eq!(c.stats().requests_accepted, 1, "no double count");
        assert_eq!(c.stats().requests_rejected, 0);
    }

    #[test]
    fn stale_request_is_rejected_without_stats() {
        let (mut c, local, t) = receiver();
        c.on_msg(t, NodeId(0), request(Pid(7), 3), local);
        let stats = c.stats();
        // A reordered leftover of an older negotiation for the same pid
        // (epoch 2 < fence 3) from anyone: silent epoch-matched reject.
        let out = c.on_msg(t + 50, NodeId(1), request(Pid(7), 2), local);
        assert_eq!(
            out,
            vec![LbEffect::Send(
                NodeId(1),
                LbMsg::MigReject {
                    pid: Pid(7),
                    epoch: 2
                }
            )]
        );
        assert_eq!(c.stats(), stats, "stale traffic moves no counters");
        assert!(matches!(c.phase(), ConductorPhase::Receiving { .. }));
    }

    #[test]
    fn newer_epoch_from_same_sender_renews_reservation() {
        let (mut c, local, t) = receiver();
        c.on_msg(t, NodeId(0), request(Pid(7), 1), local);
        // The accept was lost; the sender re-proposed under epoch 2. The
        // reservation is renewed in place — one logical reservation, one
        // accepted count.
        let out = c.on_msg(t + 100, NodeId(0), request(Pid(7), 2), local);
        let lease_until = t + 100 + PolicyConfig::default().lease_us;
        assert_eq!(
            out,
            vec![LbEffect::Send(
                NodeId(0),
                LbMsg::MigAccept {
                    pid: Pid(7),
                    epoch: 2,
                    lease_until,
                }
            )]
        );
        assert_eq!(c.stats().requests_accepted, 1);
        assert!(c.restore_allowed(Pid(7), 2, t + 200));
        assert!(!c.restore_allowed(Pid(7), 1, t + 200), "old epoch fenced");
    }

    /// Regression: a duplicated accept arriving mid-transfer used to hit
    /// the stale catch-all and send `MigDone { success: false }`, releasing
    /// the receiver while the migration was still running.
    #[test]
    fn dup_accept_during_sending_is_ignored() {
        let cfg = PolicyConfig::default();
        let mut c = Conductor::new(NodeId(0), cfg);
        let local = |at: SimTime| LoadInfo::new(NodeId(0), 95.0, 20, at);
        let t1 = SimTime::from_secs(1);
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t1));
        c.on_tick(t1, local(t1), &[(Pid(7), 10.0)]);
        let out = c.on_msg(t1, NodeId(1), accept(Pid(7), 1, t1), local(t1));
        assert!(matches!(out[0], LbEffect::StartMigration { .. }));
        // The duplicate: no effects at all, phase untouched.
        let out = c.on_msg(t1 + 50, NodeId(1), accept(Pid(7), 1, t1), local(t1));
        assert_eq!(out, Vec::new(), "duplicate accept must not release");
        assert!(matches!(c.phase(), ConductorPhase::Sending { .. }));
    }

    #[test]
    fn mismatched_reject_leaves_negotiation_running() {
        let cfg = PolicyConfig::default();
        let mut c = Conductor::new(NodeId(0), cfg);
        let local = |at: SimTime| LoadInfo::new(NodeId(0), 95.0, 20, at);
        let t1 = SimTime::from_secs(1);
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t1));
        c.on_tick(t1, local(t1), &[(Pid(7), 10.0)]);
        assert!(matches!(c.phase(), ConductorPhase::AwaitingAccept { .. }));
        // A stale reject from an older epoch: ignored.
        c.on_msg(
            t1,
            NodeId(1),
            LbMsg::MigReject {
                pid: Pid(7),
                epoch: 0,
            },
            local(t1),
        );
        assert!(matches!(c.phase(), ConductorPhase::AwaitingAccept { .. }));
        // The matching reject lands; a duplicate of it is then a no-op.
        c.on_msg(
            t1,
            NodeId(1),
            LbMsg::MigReject {
                pid: Pid(7),
                epoch: 1,
            },
            local(t1),
        );
        assert_eq!(c.phase(), ConductorPhase::Idle);
        let stats = c.stats();
        c.on_msg(
            t1,
            NodeId(1),
            LbMsg::MigReject {
                pid: Pid(7),
                epoch: 1,
            },
            local(t1),
        );
        assert_eq!(c.phase(), ConductorPhase::Idle);
        assert_eq!(c.stats(), stats);
    }

    #[test]
    fn dup_done_is_idempotent_on_receiver() {
        let (mut c, local, t) = receiver();
        c.on_msg(t, NodeId(0), request(Pid(7), 1), local);
        let done = LbMsg::MigDone {
            pid: Pid(7),
            epoch: 1,
            success: true,
        };
        c.on_msg(t + 100, NodeId(0), done, local);
        assert!(matches!(c.phase(), ConductorPhase::CalmDown { .. }));
        assert_eq!(c.stats().migrations_completed, 1);
        // Duplicate: completion is not counted twice, calm-down untouched.
        let out = c.on_msg(t + 150, NodeId(0), done, local);
        assert_eq!(out, Vec::new());
        assert_eq!(c.stats().migrations_completed, 1);
        // A done for a mismatched epoch while Receiving is equally inert.
        let (mut c2, local2, t2) = receiver();
        c2.on_msg(t2, NodeId(0), request(Pid(7), 1), local2);
        c2.on_msg(
            t2 + 100,
            NodeId(0),
            LbMsg::MigDone {
                pid: Pid(7),
                epoch: 9,
                success: true,
            },
            local2,
        );
        assert!(matches!(c2.phase(), ConductorPhase::Receiving { .. }));
        assert_eq!(c2.stats().migrations_completed, 0);
    }

    #[test]
    fn receiver_lease_expires_on_sender_silence() {
        let (mut c, local, t) = receiver();
        let cfg = PolicyConfig::default();
        c.on_msg(t, NodeId(0), request(Pid(7), 1), local);
        assert!(c.restore_allowed(Pid(7), 1, t + cfg.lease_us));
        // One tick past the lease: the reservation dissolves.
        let t2 = t + cfg.lease_us + 1;
        let li = LoadInfo::new(NodeId(2), 40.0, 20, t2);
        c.on_tick(t2, li, &[]);
        assert_eq!(c.phase(), ConductorPhase::Idle);
        assert_eq!(c.stats().leases_expired, 1);
        assert!(!c.restore_allowed(Pid(7), 1, t2), "expired lease fences");
    }

    #[test]
    fn sender_cancels_only_after_timeout_and_lease() {
        let cfg = PolicyConfig::default();
        let mut c = Conductor::new(NodeId(0), cfg);
        let local = |at: SimTime| LoadInfo::new(NodeId(0), 95.0, 20, at);
        let t1 = SimTime::from_secs(1);
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t1));
        c.on_tick(t1, local(t1), &[(Pid(7), 10.0)]);
        c.on_msg(t1, NodeId(1), accept(Pid(7), 1, t1), local(t1));
        assert!(matches!(c.phase(), ConductorPhase::Sending { .. }));

        // Past the migration timeout but inside the lease: no cancel — the
        // destination could still legitimately resume the process.
        let t2 = t1 + cfg.migration_timeout_us + SECOND;
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t2));
        let out = c.on_tick(t2, local(t2), &[(Pid(7), 10.0)]);
        assert!(
            !out.iter()
                .any(|e| matches!(e, LbEffect::CancelMigration { .. })),
            "lease still live: {out:?}"
        );

        // Past both: the cancel fires, and the phase stays Sending until
        // the daemon reports back.
        let t3 = t1 + cfg.lease_us + SECOND;
        c.peers.update(LoadInfo::new(NodeId(1), 40.0, 20, t3));
        let out = c.on_tick(t3, local(t3), &[(Pid(7), 10.0)]);
        assert!(out.iter().any(|e| matches!(
            e,
            LbEffect::CancelMigration {
                pid: Pid(7),
                epoch: 1
            }
        )));
        assert!(matches!(c.phase(), ConductorPhase::Sending { .. }));
        // The daemon aborts; the usual failure path runs.
        c.on_migration_finished(t3, false);
        assert_eq!(c.stats().migrations_failed, 1);
        assert_eq!(c.retry_pending(), Some(Pid(7)));
    }

    #[test]
    fn epochs_stay_monotone_across_ownership_transfer() {
        let (mut c, local, t) = receiver();
        // Accept pid 7 under epoch 5 (the sender had history with it).
        c.on_msg(t, NodeId(0), request(Pid(7), 5), local);
        assert_eq!(c.fence_of(Pid(7)), 5);
        c.on_msg(
            t + 100,
            NodeId(0),
            LbMsg::MigDone {
                pid: Pid(7),
                epoch: 5,
                success: true,
            },
            local,
        );
        // This node now owns pid 7. When it later initiates a migration of
        // it, the proposal must exceed every epoch it witnessed.
        let t2 = t + PolicyConfig::default().calm_down_us + 2 * SECOND;
        c.peers.update(LoadInfo::new(NodeId(0), 30.0, 20, t2));
        c.peers.update(LoadInfo::new(NodeId(1), 30.0, 20, t2));
        let li = LoadInfo::new(NodeId(2), 95.0, 20, t2);
        let out = c.on_tick(t2, li, &[(Pid(7), 12.0)]);
        let sent_epoch = out.iter().find_map(|e| match e {
            LbEffect::Send(_, LbMsg::MigRequest { pid, epoch, .. }) if *pid == Pid(7) => {
                Some(*epoch)
            }
            _ => None,
        });
        assert_eq!(sent_epoch, Some(6), "proposal = highest witnessed + 1");
    }
}
