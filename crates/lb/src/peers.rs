//! The per-node peer database: latest load info from every other conductor.
//!
//! "Each node also keeps track of the load status of other nodes based on
//! the latest information they sent, practically maintaining an
//! approximation on the overall load of the whole cluster." Entries expire
//! when a peer stops heartbeating (node leave / crash).

use crate::info::LoadInfo;
use dvelm_net::NodeId;
use dvelm_sim::SimTime;
use std::collections::BTreeMap;

/// Last-known load of every peer.
#[derive(Debug, Clone, Default)]
pub struct PeerDb {
    peers: BTreeMap<NodeId, LoadInfo>,
}

impl PeerDb {
    /// An empty database.
    pub fn new() -> PeerDb {
        PeerDb::default()
    }

    /// Record a heartbeat. Newest sample wins: under reordered control
    /// delivery an older heartbeat may arrive after a fresher one, and it
    /// must not clobber it (equal stamps overwrite, keeping the in-order
    /// fast path unchanged).
    pub fn update(&mut self, info: LoadInfo) {
        match self.peers.get(&info.node) {
            Some(existing) if info.at < existing.at => {}
            _ => {
                self.peers.insert(info.node, info);
            }
        }
    }

    /// Drop peers whose last heartbeat is older than `stale_us`. Returns the
    /// departed nodes.
    pub fn expire(&mut self, now: SimTime, stale_us: u64) -> Vec<NodeId> {
        let dead: Vec<NodeId> = self
            .peers
            .iter()
            .filter(|(_, li)| now.saturating_since(li.at) > stale_us)
            .map(|(n, _)| *n)
            .collect();
        for n in &dead {
            self.peers.remove(n);
        }
        dead
    }

    /// Remove one peer explicitly (graceful leave).
    pub fn remove(&mut self, node: NodeId) {
        self.peers.remove(&node);
    }

    /// Known peers, in node order.
    pub fn iter(&self) -> impl Iterator<Item = &LoadInfo> {
        self.peers.values()
    }

    /// Number of known peers.
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Whether no peers are known.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// Latest info about one peer.
    pub fn get(&self, node: NodeId) -> Option<&LoadInfo> {
        self.peers.get(&node)
    }

    /// Approximated cluster-wide average CPU, including the local sample.
    pub fn cluster_average(&self, local_cpu: f64) -> f64 {
        let sum: f64 = self.peers.values().map(|li| li.cpu_pct).sum();
        (sum + local_cpu) / (self.peers.len() as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn li(node: u32, cpu: f64, at_s: u64) -> LoadInfo {
        LoadInfo::new(NodeId(node), cpu, 20, SimTime::from_secs(at_s))
    }

    #[test]
    fn update_keeps_latest() {
        let mut db = PeerDb::new();
        db.update(li(1, 50.0, 1));
        db.update(li(1, 70.0, 2));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(NodeId(1)).unwrap().cpu_pct, 70.0);
    }

    #[test]
    fn reordered_older_sample_does_not_clobber_newer() {
        let mut db = PeerDb::new();
        db.update(li(1, 70.0, 2));
        // A delayed heartbeat from t=1 arrives after the t=2 sample.
        db.update(li(1, 50.0, 1));
        assert_eq!(db.get(NodeId(1)).unwrap().cpu_pct, 70.0);
        // Equal stamps overwrite (in-order fast path).
        db.update(li(1, 55.0, 2));
        assert_eq!(db.get(NodeId(1)).unwrap().cpu_pct, 55.0);
    }

    #[test]
    fn cluster_average_includes_local() {
        let mut db = PeerDb::new();
        db.update(li(1, 90.0, 1));
        db.update(li(2, 70.0, 1));
        // (90 + 70 + 80) / 3
        assert!((db.cluster_average(80.0) - 80.0).abs() < 1e-9);
        // Empty db: average is just the local load.
        assert_eq!(PeerDb::new().cluster_average(42.0), 42.0);
    }

    #[test]
    fn expire_removes_silent_peers() {
        let mut db = PeerDb::new();
        db.update(li(1, 50.0, 1));
        db.update(li(2, 60.0, 9));
        let dead = db.expire(SimTime::from_secs(10), 5_000_000);
        assert_eq!(dead, vec![NodeId(1)]);
        assert_eq!(db.len(), 1);
        assert!(db.get(NodeId(2)).is_some());
    }

    #[test]
    fn explicit_remove() {
        let mut db = PeerDb::new();
        db.update(li(1, 50.0, 1));
        db.remove(NodeId(1));
        assert!(db.is_empty());
    }
}
