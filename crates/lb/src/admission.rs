//! Cluster-wide migration admission control.
//!
//! The paper's conductor protocol already serialises migrations pairwise
//! (one in-flight migration per sender/receiver, two-phase commit), but
//! nothing bounds what the *cluster* commits to at once: under a thundering
//! herd every overloaded node picks the same few light peers and the
//! receivers' memory fills with in-flight checkpoint images. The
//! [`AdmissionControl`] ledger is the single authority the runtime consults
//! before a migration is allowed to start:
//!
//! * a cluster-wide concurrent-migration semaphore,
//! * a per-node semaphore (a node counts against it as source *or*
//!   destination — both sides pay CPU and bandwidth),
//! * a per-destination budget on the summed bytes of in-flight checkpoint
//!   images (the receiver must hold the image in memory until restore).
//!
//! Every limit defaults to "unlimited", so a world that never configures
//! admission behaves exactly like the paper prototype.

use dvelm_net::NodeId;
use std::collections::BTreeMap;

/// Budgets enforced by [`AdmissionControl`]. All default to unlimited.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Maximum concurrently admitted migrations across the whole cluster.
    pub max_cluster_migrations: usize,
    /// Maximum concurrently admitted migrations touching one node, counting
    /// the node's involvement as source or destination.
    pub max_node_migrations: usize,
    /// Maximum summed size, in bytes, of checkpoint images in flight toward
    /// any single destination node.
    pub max_inflight_image_bytes: u64,
}

impl AdmissionConfig {
    /// No limits: the paper-prototype behaviour.
    pub const UNLIMITED: AdmissionConfig = AdmissionConfig {
        max_cluster_migrations: usize::MAX,
        max_node_migrations: usize::MAX,
        max_inflight_image_bytes: u64::MAX,
    };

    /// Whether any budget is actually bounded.
    pub fn is_unlimited(&self) -> bool {
        *self == AdmissionConfig::UNLIMITED
    }
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig::UNLIMITED
    }
}

/// Why a migration was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDenied {
    /// The cluster-wide concurrent-migration semaphore is exhausted.
    ClusterBusy,
    /// The named node is already involved in its maximum number of
    /// migrations (as source or destination).
    NodeBusy(NodeId),
    /// Admitting the image would push the destination's in-flight
    /// checkpoint-image bytes over budget.
    ImageBudget { dst: NodeId, would_be: u64 },
}

impl AdmissionDenied {
    /// Stable label for traces and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionDenied::ClusterBusy => "cluster busy",
            AdmissionDenied::NodeBusy(_) => "node busy",
            AdmissionDenied::ImageBudget { .. } => "image budget",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ActiveEntry {
    token: u64,
    src: NodeId,
    dst: NodeId,
    image_bytes: u64,
}

/// Counters kept by the ledger, for tests and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    pub admitted: u64,
    pub denied_cluster: u64,
    pub denied_node: u64,
    pub denied_image: u64,
    /// High-water mark of concurrently admitted migrations.
    pub peak_active: usize,
    /// High-water mark of in-flight image bytes on any one destination.
    pub peak_inflight_bytes: u64,
}

/// The admission ledger. Admit with an opaque caller-chosen token
/// (the runtime uses the migration id) and release with the same token
/// when the migration completes or aborts.
#[derive(Debug, Clone, Default)]
pub struct AdmissionControl {
    cfg: AdmissionConfig,
    active: Vec<ActiveEntry>,
    stats: AdmissionStats,
}

impl AdmissionControl {
    pub fn new(cfg: AdmissionConfig) -> AdmissionControl {
        AdmissionControl {
            cfg,
            active: Vec::new(),
            stats: AdmissionStats::default(),
        }
    }

    pub fn config(&self) -> AdmissionConfig {
        self.cfg
    }

    pub fn set_config(&mut self, cfg: AdmissionConfig) {
        self.cfg = cfg;
    }

    /// Number of currently admitted migrations.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Number of admitted migrations touching `node` as source or
    /// destination.
    pub fn active_on(&self, node: NodeId) -> usize {
        self.active
            .iter()
            .filter(|e| e.src == node || e.dst == node)
            .count()
    }

    /// Summed bytes of in-flight checkpoint images headed for `dst`.
    pub fn inflight_image_bytes(&self, dst: NodeId) -> u64 {
        self.active
            .iter()
            .filter(|e| e.dst == dst)
            .map(|e| e.image_bytes)
            .sum()
    }

    /// Per-destination in-flight image bytes, for reporting.
    pub fn inflight_by_destination(&self) -> BTreeMap<NodeId, u64> {
        let mut map = BTreeMap::new();
        for e in &self.active {
            *map.entry(e.dst).or_insert(0) += e.image_bytes;
        }
        map
    }

    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Check the budgets without taking a slot.
    pub fn would_admit(
        &self,
        src: NodeId,
        dst: NodeId,
        image_bytes: u64,
    ) -> Result<(), AdmissionDenied> {
        if self.active.len() >= self.cfg.max_cluster_migrations {
            return Err(AdmissionDenied::ClusterBusy);
        }
        if self.active_on(src) >= self.cfg.max_node_migrations {
            return Err(AdmissionDenied::NodeBusy(src));
        }
        if self.active_on(dst) >= self.cfg.max_node_migrations {
            return Err(AdmissionDenied::NodeBusy(dst));
        }
        let would_be = self.inflight_image_bytes(dst).saturating_add(image_bytes);
        if would_be > self.cfg.max_inflight_image_bytes {
            return Err(AdmissionDenied::ImageBudget { dst, would_be });
        }
        Ok(())
    }

    /// Take a slot for a migration of `image_bytes` from `src` to `dst`.
    /// `image_bytes` is the caller's upper-bound estimate of the checkpoint
    /// image (the ledger exists to prevent overload, so it budgets against
    /// the worst case, not the post-precopy residue).
    pub fn admit(
        &mut self,
        token: u64,
        src: NodeId,
        dst: NodeId,
        image_bytes: u64,
    ) -> Result<(), AdmissionDenied> {
        debug_assert!(
            !self.active.iter().any(|e| e.token == token),
            "admission token reused while active"
        );
        if let Err(denied) = self.would_admit(src, dst, image_bytes) {
            match denied {
                AdmissionDenied::ClusterBusy => self.stats.denied_cluster += 1,
                AdmissionDenied::NodeBusy(_) => self.stats.denied_node += 1,
                AdmissionDenied::ImageBudget { .. } => self.stats.denied_image += 1,
            }
            return Err(denied);
        }
        self.active.push(ActiveEntry {
            token,
            src,
            dst,
            image_bytes,
        });
        self.stats.admitted += 1;
        self.stats.peak_active = self.stats.peak_active.max(self.active.len());
        self.stats.peak_inflight_bytes = self
            .stats
            .peak_inflight_bytes
            .max(self.inflight_image_bytes(dst));
        Ok(())
    }

    /// Release the slot taken under `token`. Returns whether the token was
    /// active (releasing an unknown token is a no-op, so completion and
    /// abort paths can both call it unconditionally).
    pub fn release(&mut self, token: u64) -> bool {
        let before = self.active.len();
        self.active.retain(|e| e.token != token);
        self.active.len() != before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1 << 20;

    #[test]
    fn unlimited_admits_everything() {
        let mut ac = AdmissionControl::new(AdmissionConfig::UNLIMITED);
        for t in 0..64 {
            ac.admit(t, NodeId(0), NodeId(1), 100 * MB).unwrap();
        }
        assert_eq!(ac.active_count(), 64);
        assert_eq!(ac.stats().admitted, 64);
    }

    #[test]
    fn cluster_semaphore_bounds_concurrency() {
        let cfg = AdmissionConfig {
            max_cluster_migrations: 2,
            ..AdmissionConfig::UNLIMITED
        };
        let mut ac = AdmissionControl::new(cfg);
        ac.admit(1, NodeId(0), NodeId(1), MB).unwrap();
        ac.admit(2, NodeId(2), NodeId(3), MB).unwrap();
        assert_eq!(
            ac.admit(3, NodeId(4), NodeId(5), MB),
            Err(AdmissionDenied::ClusterBusy)
        );
        assert!(ac.release(1));
        ac.admit(3, NodeId(4), NodeId(5), MB).unwrap();
        assert_eq!(ac.stats().denied_cluster, 1);
        assert_eq!(ac.stats().peak_active, 2);
    }

    #[test]
    fn node_semaphore_counts_both_sides() {
        let cfg = AdmissionConfig {
            max_node_migrations: 1,
            ..AdmissionConfig::UNLIMITED
        };
        let mut ac = AdmissionControl::new(cfg);
        ac.admit(1, NodeId(0), NodeId(1), MB).unwrap();
        // Node 1 is busy as a destination, so it cannot be a source either.
        assert_eq!(
            ac.admit(2, NodeId(1), NodeId(2), MB),
            Err(AdmissionDenied::NodeBusy(NodeId(1)))
        );
        // An unrelated pair is fine.
        ac.admit(3, NodeId(2), NodeId(3), MB).unwrap();
        assert_eq!(ac.stats().denied_node, 1);
    }

    #[test]
    fn image_budget_sums_per_destination() {
        let cfg = AdmissionConfig {
            max_inflight_image_bytes: 100 * MB,
            ..AdmissionConfig::UNLIMITED
        };
        let mut ac = AdmissionControl::new(cfg);
        ac.admit(1, NodeId(0), NodeId(9), 60 * MB).unwrap();
        ac.admit(2, NodeId(1), NodeId(9), 40 * MB).unwrap();
        assert_eq!(
            ac.admit(3, NodeId(2), NodeId(9), 1),
            Err(AdmissionDenied::ImageBudget {
                dst: NodeId(9),
                would_be: 100 * MB + 1
            })
        );
        // A different destination has its own budget.
        ac.admit(4, NodeId(2), NodeId(8), 100 * MB).unwrap();
        assert!(ac.release(2));
        ac.admit(5, NodeId(2), NodeId(9), 40 * MB).unwrap();
        assert_eq!(ac.inflight_image_bytes(NodeId(9)), 100 * MB);
        assert_eq!(ac.stats().peak_inflight_bytes, 100 * MB);
    }

    #[test]
    fn release_unknown_token_is_noop() {
        let mut ac = AdmissionControl::new(AdmissionConfig::UNLIMITED);
        assert!(!ac.release(77));
        ac.admit(1, NodeId(0), NodeId(1), MB).unwrap();
        assert!(ac.release(1));
        assert!(!ac.release(1));
        assert_eq!(ac.active_count(), 0);
    }
}
