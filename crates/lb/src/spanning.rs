//! Spanning-tree load dissemination.
//!
//! The paper's information policy broadcasts every node's load to every
//! other node and notes that "mechanisms for scalable broadcasting, such as
//! utilizing spanning-trees, have been proposed \[18\], and are out of the
//! scope of this paper". This module implements that out-of-scope option: a
//! balanced binary tree rooted at the message's origin, computed
//! deterministically from the sorted member list, so a heartbeat reaches
//! `n-1` nodes with at most 2 transmissions per relay and `O(log n)` depth
//! instead of `n-1` transmissions at the origin.

use dvelm_net::NodeId;

/// How conductors disseminate heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Dissemination {
    /// The paper's configuration: the origin sends to everyone.
    #[default]
    FlatBroadcast,
    /// Balanced binary spanning tree rooted at the origin; every receiver
    /// relays to its children.
    SpanningTree,
}

/// Children of `node` in the binary spanning tree over `members` (sorted,
/// deduplicated) rooted at `root`. Nodes outside the member list have no
/// children; an unknown root falls back to treating the first member as
/// root.
pub fn tree_children(members: &[NodeId], root: NodeId, node: NodeId) -> Vec<NodeId> {
    let mut sorted: Vec<NodeId> = members.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let n = sorted.len();
    if n == 0 {
        return Vec::new();
    }
    let pos = |x: NodeId| sorted.iter().position(|m| *m == x);
    let Some(node_pos) = pos(node) else {
        return Vec::new();
    };
    let root_pos = pos(root).unwrap_or(0);
    // Rotate so the root sits at virtual index 0; heap-index children.
    let virt = (node_pos + n - root_pos) % n;
    let mut out = Vec::with_capacity(2);
    for child_virt in [2 * virt + 1, 2 * virt + 2] {
        if child_virt < n {
            out.push(sorted[(child_virt + root_pos) % n]);
        }
    }
    out
}

/// Depth of the tree over `n` members (relay hops from root to the deepest
/// leaf).
pub fn tree_depth(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros() // ceil(log2(n)) for heap shape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashSet, VecDeque};

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    /// Simulate dissemination from `root`; returns (received set, per-node
    /// send counts, observed depth).
    fn disseminate(members: &[NodeId], root: NodeId) -> (HashSet<NodeId>, Vec<usize>, u32) {
        let mut received = HashSet::new();
        let mut sends = vec![0usize; members.len()];
        let mut depth = 0;
        let mut frontier: VecDeque<(NodeId, u32)> = VecDeque::new();
        frontier.push_back((root, 0));
        while let Some((node, d)) = frontier.pop_front() {
            depth = depth.max(d);
            for child in tree_children(members, root, node) {
                sends[node.0 as usize] += 1;
                assert!(received.insert(child), "{child} received twice");
                frontier.push_back((child, d + 1));
            }
        }
        (received, sends, depth)
    }

    #[test]
    fn every_member_receives_exactly_once() {
        for n in [1u32, 2, 3, 5, 8, 16, 33] {
            let members = nodes(n);
            for root in &members {
                let (received, _, _) = disseminate(&members, *root);
                assert_eq!(received.len() as u32, n - 1, "n={n} root={root}");
                assert!(!received.contains(root), "root does not self-deliver");
            }
        }
    }

    #[test]
    fn fanout_is_at_most_two() {
        let members = nodes(33);
        let (_, sends, _) = disseminate(&members, NodeId(7));
        assert!(sends.iter().all(|s| *s <= 2), "{sends:?}");
        // vs flat broadcast: the origin alone would send 32.
        let total: usize = sends.iter().sum();
        assert_eq!(total, 32, "one transmission per non-root member");
    }

    #[test]
    fn depth_is_logarithmic() {
        let members = nodes(32);
        let (_, _, depth) = disseminate(&members, NodeId(0));
        assert_eq!(depth, tree_depth(32));
        assert_eq!(tree_depth(32), 5);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(1), 0);
    }

    #[test]
    fn rotation_makes_any_member_a_root() {
        let members = nodes(8);
        // Trees rooted at different nodes differ, but all are complete.
        let (r3, _, _) = disseminate(&members, NodeId(3));
        let (r6, _, _) = disseminate(&members, NodeId(6));
        assert_eq!(r3.len(), 7);
        assert_eq!(r6.len(), 7);
        assert!(r3.contains(&NodeId(6)));
        assert!(r6.contains(&NodeId(3)));
    }

    #[test]
    fn non_member_has_no_children() {
        let members = nodes(4);
        assert!(tree_children(&members, NodeId(0), NodeId(99)).is_empty());
        assert!(tree_children(&[], NodeId(0), NodeId(0)).is_empty());
    }
}
