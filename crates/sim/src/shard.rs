//! The sharded event core: N per-shard queues merged into one total order.
//!
//! A [`ShardedScheduler`] behaves observably like a single
//! [`Scheduler`](crate::sched::Scheduler) (same clock, same `(at, seq)`
//! dispatch order, same counters) while storing
//! pending events in per-shard [`EventQueue`]s selected by a caller-supplied
//! routing function. Because every push draws its sequence number from one
//! shared counter, the k-way merge-by-[`DispatchKey`] at pop time reproduces
//! exactly the order a single heap would have produced — that equivalence is
//! property-tested below and is the foundation of the parallel runtime's
//! "byte-identical at any thread count" contract.
//!
//! Cross-shard values produced during a parallel round travel through
//! [`Mailbox`]es: each round task owns one, workers only ever write their own
//! task's mailbox, and the single-threaded barrier phase drains them in task
//! (dispatch) order. No locks, no atomics — the barrier itself is the
//! synchronization (lint rule R6 fences this: shared-state primitives are
//! confined to `dvelm_sim::par`).

use crate::queue::{DispatchKey, EventQueue};
use crate::sched::SchedStats;
use crate::time::SimTime;

/// A clock plus N per-shard event queues popped in merged `(at, seq)` order.
///
/// The router maps an event to a shard *hint*; the scheduler takes it modulo
/// the shard count. Routing affects only which queue stores an event — never
/// dispatch order — so any router is order-correct; a good one keeps each
/// node's events on the same shard for cache locality.
#[derive(Debug)]
pub struct ShardedScheduler<E> {
    now: SimTime,
    shards: Vec<EventQueue<E>>,
    router: fn(&E) -> u64,
    next_seq: u64,
    dispatched: u64,
    clamped: u64,
}

impl<E> ShardedScheduler<E> {
    /// A scheduler at time zero with `shards` empty queues (at least one).
    pub fn new(shards: usize, router: fn(&E) -> u64) -> Self {
        let n = shards.max(1);
        ShardedScheduler {
            now: SimTime::ZERO,
            shards: (0..n).map(|_| EventQueue::new()).collect(),
            router,
            next_seq: 0,
            dispatched: 0,
            clamped: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of shards (always ≥ 1).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Schedule an event at an absolute instant. Instants in the past are
    /// clamped to `now` and counted in [`SchedStats::clamped`]; under
    /// sharding a nonzero count signals a lookahead bug.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        if at < self.now {
            self.clamped += 1;
        }
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = ((self.router)(&event) % self.shards.len() as u64) as usize;
        self.shards[shard].push_keyed(DispatchKey { at, seq }, event);
    }

    /// Schedule an event `delay_us` microseconds from now.
    pub fn schedule_after(&mut self, delay_us: u64, event: E) {
        self.schedule_at(self.now + delay_us, event);
    }

    /// Index of the shard holding the globally next event, if any.
    fn min_shard(&self) -> Option<usize> {
        let mut best: Option<(DispatchKey, usize)> = None;
        for (i, q) in self.shards.iter().enumerate() {
            if let Some(key) = q.peek_key() {
                // Sequence numbers are unique across shards, so keys never
                // tie and the merge order is total.
                if best.map(|(bk, _)| key < bk).unwrap_or(true) {
                    best = Some((key, i));
                }
            }
        }
        best.map(|(_, i)| i)
    }

    /// Pop the next event in merged order, advancing the clock to its due
    /// time — the drop-in equivalent of [`Scheduler::pop_next`].
    ///
    /// [`Scheduler::pop_next`]: crate::Scheduler::pop_next
    pub fn pop_next(&mut self) -> Option<(SimTime, E)> {
        let (key, event) = self.pop_for_round()?;
        self.advance_to(key.at);
        Some((key.at, event))
    }

    /// Pop the next event in merged order *without* advancing the clock.
    ///
    /// This is the round-builder primitive: the parallel executor pops a run
    /// of same-instant events first, then advances the clock once via
    /// [`advance_to`](Self::advance_to) before applying their effects, so
    /// relative scheduling during the apply phase sees the same `now` a
    /// sequential dispatch would have. The event still counts as dispatched.
    pub fn pop_for_round(&mut self) -> Option<(DispatchKey, E)> {
        let shard = self.min_shard()?;
        let (key, event) = self.shards[shard].pop_keyed()?;
        debug_assert!(
            key.at >= self.now,
            "event queue produced an event in the past"
        );
        self.dispatched += 1;
        Some((key, event))
    }

    /// Advance the clock to `t` (monotone; `t` must be ≥ `now`).
    pub fn advance_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now, "clock may not run backwards");
        if t > self.now {
            self.now = t;
        }
    }

    /// The globally next event with its key, without removing it.
    pub fn peek(&self) -> Option<(DispatchKey, &E)> {
        let shard = self.min_shard()?;
        self.shards[shard].peek()
    }

    /// Due time of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek().map(|(key, _)| key.at)
    }

    /// Number of pending events across all shards (exact, not approximate).
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|q| q.len()).sum()
    }

    /// Number of events dispatched so far (global, exact).
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of past-instant `schedule_at` calls clamped to `now`.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Aggregate counters rolled up across all shards.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            dispatched: self.dispatched,
            scheduled: self.next_seq,
            pending: self.pending() as u64,
            clamped: self.clamped,
        }
    }

    /// Number of events pending on one shard (diagnostics / balance checks).
    pub fn shard_pending(&self, shard: usize) -> usize {
        self.shards.get(shard).map(|q| q.len()).unwrap_or(0)
    }
}

/// A single-producer FIFO for values crossing the shard boundary.
///
/// During a parallel round each task owns exactly one mailbox; the worker
/// running the task is the only writer, and the barrier phase that follows is
/// the only reader, draining mailboxes in task dispatch order. Ownership plus
/// the barrier replace locks entirely.
#[derive(Debug)]
pub struct Mailbox<M> {
    msgs: Vec<M>,
}

impl<M> Default for Mailbox<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Mailbox<M> {
    /// An empty mailbox.
    pub fn new() -> Self {
        Mailbox { msgs: Vec::new() }
    }

    /// Append a message (producer side, during the parallel phase).
    pub fn push(&mut self, msg: M) {
        self.msgs.push(msg);
    }

    /// Replace the contents wholesale (producer side, when a phase computes
    /// the full batch at once).
    pub fn fill(&mut self, msgs: Vec<M>) {
        debug_assert!(self.msgs.is_empty(), "mailbox filled twice in one round");
        self.msgs = msgs;
    }

    /// Take every queued message, leaving the mailbox empty but with its
    /// capacity intact (consumer side, at the barrier).
    pub fn take(&mut self) -> Vec<M> {
        std::mem::take(&mut self.msgs)
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the mailbox is empty.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ident(e: &usize) -> u64 {
        *e as u64
    }

    #[test]
    fn mirrors_sequential_scheduler_api() {
        let mut s: ShardedScheduler<usize> = ShardedScheduler::new(4, ident);
        assert_eq!(s.shard_count(), 4);
        s.schedule_after(100, 1);
        s.schedule_after(50, 2);
        assert_eq!(s.pending(), 2);
        let (t, e) = s.pop_next().unwrap();
        assert_eq!((t, e), (SimTime::from_micros(50), 2));
        assert_eq!(s.now(), SimTime::from_micros(50));
        let (t, e) = s.pop_next().unwrap();
        assert_eq!((t, e), (SimTime::from_micros(100), 1));
        assert!(s.pop_next().is_none());
        assert_eq!(s.dispatched(), 2);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let s: ShardedScheduler<usize> = ShardedScheduler::new(0, ident);
        assert_eq!(s.shard_count(), 1);
    }

    #[test]
    fn round_pop_defers_clock_advance() {
        let mut s: ShardedScheduler<usize> = ShardedScheduler::new(2, ident);
        let t = SimTime::from_micros(10);
        s.schedule_at(t, 0);
        s.schedule_at(t, 1);
        let (k0, e0) = s.pop_for_round().unwrap();
        let (k1, e1) = s.pop_for_round().unwrap();
        assert_eq!((e0, e1), (0, 1));
        assert!(k0 < k1);
        // Clock still at zero until the round's apply phase advances it.
        assert_eq!(s.now(), SimTime::ZERO);
        assert_eq!(s.dispatched(), 2);
        s.advance_to(t);
        assert_eq!(s.now(), t);
        // Relative scheduling after the advance is measured from the round's
        // instant, exactly as a sequential dispatch would see it.
        s.schedule_after(5, 9);
        assert_eq!(s.peek_time(), Some(SimTime::from_micros(15)));
    }

    #[test]
    fn clamped_counts_past_instants() {
        let mut s: ShardedScheduler<usize> = ShardedScheduler::new(2, ident);
        s.schedule_after(100, 0);
        s.pop_next();
        s.schedule_at(SimTime::from_micros(1), 1);
        assert_eq!(s.clamped(), 1);
        assert_eq!(s.pop_next().unwrap().0, SimTime::from_micros(100));
    }

    #[test]
    fn stats_roll_up_across_shards() {
        let mut s: ShardedScheduler<usize> = ShardedScheduler::new(3, ident);
        for i in 0..9 {
            s.schedule_after(10 + i as u64, i);
        }
        // Events 0..9 spread over 3 shards by the identity router.
        assert_eq!(
            s.shard_pending(0) + s.shard_pending(1) + s.shard_pending(2),
            9
        );
        s.pop_next();
        s.pop_next();
        let st = s.stats();
        assert_eq!(st.dispatched, 2);
        assert_eq!(st.scheduled, 9);
        assert_eq!(st.pending, 7);
        assert_eq!(st.clamped, 0);
        assert_eq!(st.pending as usize, s.pending());
    }

    #[test]
    fn mailbox_fifo_and_take() {
        let mut mb: Mailbox<u32> = Mailbox::new();
        assert!(mb.is_empty());
        mb.push(1);
        mb.push(2);
        assert_eq!(mb.len(), 2);
        assert_eq!(mb.take(), vec![1, 2]);
        assert!(mb.is_empty());
        mb.fill(vec![7, 8]);
        assert_eq!(mb.take(), vec![7, 8]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::sched::Scheduler;
    use proptest::prelude::*;

    fn by_value(e: &usize) -> u64 {
        *e as u64
    }

    /// One scheduling-or-popping step of the random workload.
    #[derive(Debug, Clone)]
    enum Op {
        Push(u64),
        Pop,
    }

    fn ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                (0u64..5_000).prop_map(Op::Push),
                proptest::strategy::Just(Op::Pop),
            ],
            1..300,
        )
    }

    proptest! {
        /// The satellite-1 merge theorem: for any interleaving of pushes and
        /// pops and any shard count, the N-way merge pops exactly the
        /// sequence a single-queue scheduler pops — same payloads, same
        /// times, same final clock and counters.
        #[test]
        fn n_way_merge_equals_sequential_pop_order(ops in ops(), shards in 1usize..8) {
            let mut seq: Scheduler<usize> = Scheduler::new();
            let mut sh: ShardedScheduler<usize> = ShardedScheduler::new(shards, by_value);
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Op::Push(d) => {
                        seq.schedule_after(*d, i);
                        sh.schedule_after(*d, i);
                    }
                    Op::Pop => {
                        prop_assert_eq!(seq.pop_next(), sh.pop_next());
                        prop_assert_eq!(seq.now(), sh.now());
                    }
                }
            }
            loop {
                let a = seq.pop_next();
                let b = sh.pop_next();
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            prop_assert_eq!(seq.now(), sh.now());
            prop_assert_eq!(seq.stats(), sh.stats());
        }

        /// Routing is irrelevant to order: two sharded schedulers with
        /// different shard counts pop identically.
        #[test]
        fn shard_count_never_changes_order(delays in proptest::collection::vec(0u64..2_000, 1..200)) {
            let mut a: ShardedScheduler<usize> = ShardedScheduler::new(2, by_value);
            let mut b: ShardedScheduler<usize> = ShardedScheduler::new(7, by_value);
            for (i, d) in delays.iter().enumerate() {
                a.schedule_at(SimTime::from_micros(*d), i);
                b.schedule_at(SimTime::from_micros(*d), i);
            }
            for _ in 0..delays.len() {
                prop_assert_eq!(a.pop_next(), b.pop_next());
            }
        }
    }
}
