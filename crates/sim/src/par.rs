//! The worker pool that executes one parallel round at a time.
//!
//! This module is the **only** place in the simulation family allowed to use
//! shared-state concurrency primitives (lint rule R6 enforces that). The
//! model is deliberately tiny: a fixed set of workers parked on a condvar, a
//! caller that publishes one job — "run `f(chunk)` for every chunk index" —
//! participates in the work itself, and blocks until every worker is done.
//! Between rounds nothing runs concurrently, so the simulation proper never
//! observes threads: a round computes per-task results into per-task slots
//! (see [`Mailbox`](crate::Mailbox)), and the deterministic barrier phase
//! reads them back in dispatch order.
//!
//! Chunks are claimed from a shared counter, so which *thread* runs which
//! chunk is scheduling-dependent — but since every chunk writes only its own
//! task, results are independent of that assignment. Determinism holds on
//! any machine, including a single hardware core where the OS interleaves
//! workers adversarially.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

/// A type-erased round job: run `f(c)` for every chunk `c < chunks`.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    chunks: usize,
}

// SAFETY: the pointee is a `Sync` closure borrowed by `WorkerPool::run`,
// which does not return until every worker has finished the round, so the
// pointer is only ever dereferenced while the borrow is live.
unsafe impl Send for Job {}

/// State guarded by the pool mutex; workers wake when `round` changes.
struct RoundState {
    round: u64,
    job: Option<Job>,
    remaining: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<RoundState>,
    work_ready: Condvar,
    round_done: Condvar,
    next_chunk: AtomicUsize,
    poisoned: AtomicBool,
}

/// A persistent pool of `threads - 1` workers plus the calling thread.
///
/// `threads <= 1` degenerates to a pool with no workers whose
/// [`run`](Self::run) executes inline — callers need no special casing for
/// the sequential path.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads())
            .finish()
    }
}

/// Lock helper that shrugs off poisoning: a worker panic is reported through
/// the `poisoned` flag, not by wedging every later round.
fn lock(m: &Mutex<RoundState>) -> std::sync::MutexGuard<'_, RoundState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn run_chunks(shared: &Shared, job: Job) {
    // SAFETY: see the `Send for Job` justification — `run` keeps the
    // closure alive until the round completes.
    let f = unsafe { &*job.f };
    loop {
        let c = shared.next_chunk.fetch_add(1, Ordering::Relaxed);
        if c >= job.chunks {
            break;
        }
        if catch_unwind(AssertUnwindSafe(|| f(c))).is_err() {
            shared.poisoned.store(true, Ordering::SeqCst);
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_round = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.shutdown {
                    return;
                }
                if st.round != seen_round {
                    seen_round = st.round;
                    if let Some(job) = st.job {
                        break job;
                    }
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        run_chunks(shared, job);
        let mut st = lock(&shared.state);
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.round_done.notify_one();
        }
    }
}

impl WorkerPool {
    /// A pool that brings total parallelism to `threads` (the caller counts
    /// as one). Worker threads are named `dvelm-worker-<i>`.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(RoundState {
                round: 0,
                job: None,
                remaining: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            round_done: Condvar::new(),
            next_chunk: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        });
        let workers = (1..threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("dvelm-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .unwrap_or_else(|e| panic!("failed to spawn pool worker: {e}"))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Total parallelism including the calling thread.
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Execute `f(c)` for every chunk `c < chunks`, on the pool plus the
    /// calling thread, returning only when all chunks are done. Each chunk
    /// index is claimed exactly once. Panics if any chunk panicked.
    ///
    /// Not reentrant: `f` must not call back into the pool.
    pub fn run(&self, chunks: usize, f: &(dyn Fn(usize) + Sync)) {
        if self.workers.is_empty() || chunks <= 1 {
            for c in 0..chunks {
                f(c);
            }
            return;
        }
        // Erase the borrow's lifetime to publish it to the workers.
        // SAFETY: fat-pointer layout is identical; `run` blocks below until
        // `remaining == 0`, i.e. until no worker can still dereference it.
        let job = Job {
            f: unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(f)
            },
            chunks,
        };
        {
            let mut st = lock(&self.shared.state);
            st.job = Some(job);
            st.round = st.round.wrapping_add(1);
            st.remaining = self.workers.len();
            self.shared.next_chunk.store(0, Ordering::SeqCst);
            self.shared.work_ready.notify_all();
        }
        run_chunks(&self.shared, job);
        let mut st = lock(&self.shared.state);
        while st.remaining != 0 {
            st = self
                .shared
                .round_done
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        drop(st);
        if self.shared.poisoned.swap(false, Ordering::SeqCst) {
            panic!("a worker panicked during a parallel round");
        }
    }

    /// Run `each` over every task in `tasks`, one chunk per task. Tasks are
    /// mutated in place; each is touched by exactly one thread per round.
    pub fn run_tasks<T: Send>(&self, tasks: &mut [T], each: impl Fn(&mut T) + Sync) {
        struct TaskBase<T>(*mut T, usize);
        // SAFETY: workers receive disjoint indices (each chunk claimed
        // exactly once), so no two threads alias the same task.
        unsafe impl<T: Send> Sync for TaskBase<T> {}
        impl<T> TaskBase<T> {
            fn get(&self, c: usize) -> *mut T {
                debug_assert!(c < self.1);
                // SAFETY: `c < self.1`, the slice's length.
                unsafe { self.0.add(c) }
            }
        }
        let base = TaskBase(tasks.as_mut_ptr(), tasks.len());
        let f = move |c: usize| {
            // SAFETY: `run` claims each chunk index `c < len` exactly once,
            // so this is the only live reference to task `c`.
            each(unsafe { &mut *base.get(c) });
        };
        self.run(tasks.len(), &f);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared.state);
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_when_single_threaded() {
        let pool = WorkerPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut out = vec![0usize; 16];
        pool.run_tasks(&mut out, |slot| *slot += 1);
        assert!(out.iter().all(|&v| v == 1));
    }

    #[test]
    fn all_chunks_run_exactly_once() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        let counters: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(counters.len(), &|c| {
            counters[c].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn pool_rounds_are_reusable_and_deterministic() {
        let pool = WorkerPool::new(3);
        let mut tasks: Vec<(u64, u64)> = (0..257).map(|i| (i, 0)).collect();
        for _ in 0..50 {
            pool.run_tasks(&mut tasks, |t| t.1 += t.0 * t.0);
        }
        for (i, (_, acc)) in tasks.iter().enumerate() {
            assert_eq!(*acc, 50 * (i as u64) * (i as u64));
        }
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let hit = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, &|c| {
                hit.fetch_add(1, Ordering::SeqCst);
                if c == 13 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "round with a panicking chunk must panic");
        // The pool survives the panic and runs clean rounds afterwards.
        let mut out = vec![0u32; 8];
        pool.run_tasks(&mut out, |slot| *slot = 7);
        assert!(out.iter().all(|&v| v == 7));
    }
}
