//! Deterministic discrete-event simulation (DES) core.
//!
//! Everything in the reproduction runs on simulated time: the network fabric,
//! the TCP/UDP stack timers, the precopy loop of the live-migration engine and
//! the load-balancing heartbeats are all events on a single totally-ordered
//! queue. Two runs with the same seed produce bit-identical traces, which is
//! what makes the paper's figures regenerable as tests.
//!
//! The crate deliberately has no dependencies: time is a `u64` of
//! microseconds, the RNG is SplitMix64/xoshiro-style and the queue is a binary
//! heap with a monotone tie-breaking sequence number (FIFO among simultaneous
//! events).
//!
//! # Example
//!
//! ```
//! use dvelm_sim::{Scheduler, SimTime};
//!
//! let mut sched: Scheduler<&str> = Scheduler::new();
//! sched.schedule_after(50_000, "snapshot");
//! sched.schedule_after(10_000, "usercmd");
//! let (t, ev) = sched.pop_next().unwrap();
//! assert_eq!((t, ev), (SimTime::from_millis(10), "usercmd"));
//! assert_eq!(sched.now(), SimTime::from_millis(10));
//! ```

pub mod par;
pub mod queue;
pub mod rng;
pub mod sched;
pub mod shard;
pub mod time;

pub use par::WorkerPool;
pub use queue::{DispatchKey, EventQueue};
pub use rng::DetRng;
pub use sched::{SchedStats, Scheduler};
pub use shard::{Mailbox, ShardedScheduler};
pub use time::{Jiffies, SimTime, JIFFY, MICROSECOND, MILLISECOND, SECOND};
