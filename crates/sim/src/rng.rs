//! A small deterministic RNG (SplitMix64 state advance + xorshift-style
//! output mixing).
//!
//! The simulation must be bit-reproducible across runs and across dependency
//! upgrades, so we do not rely on an external RNG crate whose algorithm may
//! change between versions. SplitMix64 is tiny, fast and has well-understood
//! statistical quality — more than sufficient for workload generation (client
//! movement, packet jitter, page-dirtying patterns).

/// Deterministic pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

impl DetRng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point and decorrelate trivial seeds.
        let mut rng = DetRng {
            state: seed.wrapping_add(GOLDEN_GAMMA),
        };
        rng.next_u64();
        rng
    }

    /// Derive an independent child stream; children with distinct `stream`
    /// tags are decorrelated from each other and from the parent.
    pub fn fork(&self, stream: u64) -> DetRng {
        DetRng::new(self.state ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping (Lemire); bias is < 2^-64 per
        // draw, irrelevant for workload generation.
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal deviate (Box–Muller; one value per call, the pair's
    /// second value is discarded to keep the stream position predictable).
    pub fn normal(&mut self) -> f64 {
        loop {
            let u1 = self.f64();
            if u1 > f64::EPSILON {
                let u2 = self.f64();
                return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
        }
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Exponential deviate with the given mean (for inter-arrival jitter).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_are_decorrelated() {
        let parent = DetRng::new(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = DetRng::new(3);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = DetRng::new(4);
        for _ in 0..10_000 {
            let x = rng.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn range_mean_is_roughly_centred() {
        let mut rng = DetRng::new(5);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.range_u64(0, 100)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::new(6);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = DetRng::new(8);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(10);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.0)));
    }
}
