//! The scheduler: a clock plus an event queue.
//!
//! The runtime (in `dvelm-cluster`) drives the loop: `pop_next` advances the
//! clock to the event's due time and hands the event back for dispatch.
//! Generic over the event payload so every layer can be tested with its own
//! little event enum.

use crate::queue::{DispatchKey, EventQueue};
use crate::time::SimTime;

/// Aggregate scheduler counters, identical in shape for the sequential
/// [`Scheduler`] and the sharded one, so callers (benchmarks, tests) read
/// exact totals rather than per-shard approximations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Events dispatched so far.
    pub dispatched: u64,
    /// Events ever scheduled (across all shards, if sharded).
    pub scheduled: u64,
    /// Events still pending.
    pub pending: u64,
    /// `schedule_at` calls whose instant lay in the past and was clamped to
    /// `now`. Zero in a fault-free run; nonzero under sharding would mean a
    /// lookahead bug (an event generated behind the merged clock).
    pub clamped: u64,
}

/// A simulated clock with a pending-event queue.
#[derive(Debug)]
pub struct Scheduler<E> {
    now: SimTime,
    queue: EventQueue<E>,
    dispatched: u64,
    clamped: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// A scheduler at time zero with no pending events.
    pub fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            dispatched: 0,
            clamped: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an event at an absolute instant. Instants in the past are
    /// clamped to `now` (the event fires immediately, after already-pending
    /// events for `now`) and counted in [`SchedStats::clamped`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        if at < self.now {
            self.clamped += 1;
        }
        self.queue.push(at.max(self.now), event);
    }

    /// Schedule an event `delay_us` microseconds from now.
    pub fn schedule_after(&mut self, delay_us: u64, event: E) {
        self.queue.push(self.now + delay_us, event);
    }

    /// Pop the next event, advancing the clock to its due time.
    pub fn pop_next(&mut self) -> Option<(SimTime, E)> {
        let (at, event) = self.queue.pop()?;
        debug_assert!(at >= self.now, "event queue produced an event in the past");
        self.now = at;
        self.dispatched += 1;
        Some((at, event))
    }

    /// Due time of the next pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// The next pending event with its dispatch key, without removing it.
    pub fn peek(&self) -> Option<(DispatchKey, &E)> {
        self.queue.peek()
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of past-instant `schedule_at` calls clamped to `now`.
    pub fn clamped(&self) -> u64 {
        self.clamped
    }

    /// Aggregate counters in one struct.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            dispatched: self.dispatched,
            scheduled: self.queue.scheduled_total(),
            pending: self.queue.len() as u64,
            clamped: self.clamped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_pops() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_after(100, "b");
        s.schedule_after(50, "a");
        assert_eq!(s.now(), SimTime::ZERO);
        let (t, e) = s.pop_next().unwrap();
        assert_eq!((t, e), (SimTime::from_micros(50), "a"));
        assert_eq!(s.now(), SimTime::from_micros(50));
        let (t, e) = s.pop_next().unwrap();
        assert_eq!((t, e), (SimTime::from_micros(100), "b"));
        assert_eq!(s.now(), SimTime::from_micros(100));
        assert!(s.pop_next().is_none());
    }

    #[test]
    fn past_events_clamp_to_now_and_are_counted() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_after(100, 1);
        s.pop_next();
        assert_eq!(s.clamped(), 0);
        s.schedule_at(SimTime::from_micros(10), 2); // in the past
        let (t, e) = s.pop_next().unwrap();
        assert_eq!(e, 2);
        assert_eq!(t, SimTime::from_micros(100)); // clamped, clock monotone
        assert_eq!(s.clamped(), 1);
        // Scheduling exactly at `now` is not a clamp.
        s.schedule_at(s.now(), 3);
        assert_eq!(s.clamped(), 1);
    }

    #[test]
    fn relative_scheduling_is_from_current_time() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.schedule_after(10, 0);
        s.pop_next();
        s.schedule_after(10, 1);
        assert_eq!(s.pop_next().unwrap().0, SimTime::from_micros(20));
    }

    #[test]
    fn counters() {
        let mut s: Scheduler<()> = Scheduler::new();
        s.schedule_after(1, ());
        s.schedule_after(2, ());
        assert_eq!(s.pending(), 2);
        assert_eq!(s.dispatched(), 0);
        s.pop_next();
        assert_eq!(s.pending(), 1);
        assert_eq!(s.dispatched(), 1);
        assert_eq!(
            s.stats(),
            SchedStats {
                dispatched: 1,
                scheduled: 2,
                pending: 1,
                clamped: 0,
            }
        );
    }

    #[test]
    fn peek_exposes_key_without_dispatching() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.schedule_after(5, "x");
        let (key, e) = s.peek().unwrap();
        assert_eq!((key.at, key.seq, *e), (SimTime::from_micros(5), 0, "x"));
        assert_eq!(s.dispatched(), 0);
        assert_eq!(s.now(), SimTime::ZERO);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always come out in nondecreasing time order and the clock
        /// never runs backwards, for any scheduling pattern.
        #[test]
        fn pop_order_is_monotone(delays in proptest::collection::vec(0u64..10_000, 1..200)) {
            let mut s: Scheduler<usize> = Scheduler::new();
            for (i, d) in delays.iter().enumerate() {
                s.schedule_at(SimTime::from_micros(*d), i);
            }
            let mut last = SimTime::ZERO;
            let mut popped = 0;
            while let Some((t, _)) = s.pop_next() {
                prop_assert!(t >= last);
                last = t;
                popped += 1;
            }
            prop_assert_eq!(popped, delays.len());
        }

        /// FIFO among equal timestamps regardless of surrounding events.
        #[test]
        fn equal_times_fifo(n in 1usize..100) {
            let mut s: Scheduler<usize> = Scheduler::new();
            let t = SimTime::from_micros(500);
            for i in 0..n {
                s.schedule_at(t, i);
            }
            for i in 0..n {
                prop_assert_eq!(s.pop_next().unwrap().1, i);
            }
        }
    }
}
