//! Simulated time.
//!
//! [`SimTime`] is an absolute instant measured in microseconds since the start
//! of the simulation. Durations are plain `u64` microsecond counts — the
//! handful of helper constants below keep call-sites readable
//! (`3 * MILLISECOND`, `900 * SECOND`, …).
//!
//! [`Jiffies`] model the Linux kernel tick counter the paper's TCP timestamp
//! adjustment relies on (§V-C1): one jiffy is 10 ms and every node boots with
//! a different base value, so timestamps recorded on the source node are
//! meaningless on the destination until shifted by the source/destination
//! delta.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// One microsecond, the base unit of simulated durations.
pub const MICROSECOND: u64 = 1;
/// One millisecond in microseconds.
pub const MILLISECOND: u64 = 1_000;
/// One second in microseconds.
pub const SECOND: u64 = 1_000_000;
/// One Linux jiffy (HZ=100 as on the paper's 2.6 kernels): 10 ms.
pub const JIFFY: u64 = 10 * MILLISECOND;

/// An absolute simulated instant, microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "inactive timer" marker).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * MILLISECOND)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * SECOND)
    }

    /// This instant as microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant as (fractional) milliseconds since simulation start.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MILLISECOND as f64
    }

    /// This instant as (fractional) seconds since simulation start.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SECOND as f64
    }

    /// Microseconds elapsed since `earlier`; zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, us: u64) {
        self.0 += us;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// A node-local kernel tick counter (10 ms granularity).
///
/// Different nodes have different bases, exactly like uptime-based jiffies on
/// two different machines. TCP timestamps are recorded in local jiffies; the
/// migration engine records the source's jiffies at checkpoint time and the
/// destination shifts every timestamp by `dst_now - src_then` on restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Jiffies(pub u64);

impl Jiffies {
    /// The jiffies value on a node with boot offset `base` at instant `now`.
    #[inline]
    pub fn at(base: u64, now: SimTime) -> Jiffies {
        Jiffies(base + now.0 / JIFFY)
    }

    /// Raw tick count.
    #[inline]
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Signed difference in ticks (`self - other`).
    #[inline]
    pub fn delta(self, other: Jiffies) -> i64 {
        self.0 as i64 - other.0 as i64
    }

    /// Shift this timestamp by a signed tick delta (saturating at zero).
    #[inline]
    pub fn shifted(self, delta: i64) -> Jiffies {
        Jiffies((self.0 as i64 + delta).max(0) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_constructors_agree() {
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_secs(2), SimTime::from_micros(2_000_000));
        assert_eq!(SimTime::from_secs(1).as_micros(), SECOND);
    }

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_millis(10);
        assert_eq!(t + 500, SimTime::from_micros(10_500));
        assert_eq!((t + 500) - t, 500);
        assert_eq!(t.saturating_since(t + 500), 0);
        assert_eq!((t + 500).saturating_since(t), 500);
    }

    #[test]
    fn simtime_float_views() {
        let t = SimTime::from_micros(1_500);
        assert!((t.as_millis_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_secs_f64() - 0.0015).abs() < 1e-12);
    }

    #[test]
    fn simtime_display_is_millis() {
        assert_eq!(format!("{}", SimTime::from_micros(20_250)), "20.250ms");
    }

    #[test]
    fn jiffies_advance_every_10ms() {
        let base = 1_000_000;
        assert_eq!(Jiffies::at(base, SimTime::ZERO).ticks(), base);
        assert_eq!(Jiffies::at(base, SimTime::from_millis(9)).ticks(), base);
        assert_eq!(
            Jiffies::at(base, SimTime::from_millis(10)).ticks(),
            base + 1
        );
        assert_eq!(Jiffies::at(base, SimTime::from_secs(1)).ticks(), base + 100);
    }

    #[test]
    fn jiffies_delta_and_shift_roundtrip() {
        // Two nodes with different boot bases observe the same instant.
        let src = Jiffies::at(5_000, SimTime::from_secs(3));
        let dst = Jiffies::at(90_000, SimTime::from_secs(3));
        let delta = dst.delta(src);
        assert_eq!(src.shifted(delta), dst);
        // Shifting a recorded source timestamp lands at the equivalent
        // destination timestamp.
        let recorded = Jiffies::at(5_000, SimTime::from_secs(2));
        assert_eq!(
            recorded.shifted(delta),
            Jiffies::at(90_000, SimTime::from_secs(2))
        );
    }

    #[test]
    fn jiffies_shift_saturates_at_zero() {
        assert_eq!(Jiffies(3).shifted(-10), Jiffies(0));
    }
}
