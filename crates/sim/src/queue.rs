//! The pending-event set: a binary heap ordered by (time, insertion sequence).
//!
//! The sequence number guarantees FIFO order among events scheduled for the
//! same instant, which makes the whole simulation deterministic regardless of
//! heap internals.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event with its due time and tie-breaking sequence number.
#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, with insertion order breaking ties.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A time-ordered queue of pending events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Remove and return the earliest pending event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Due time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (the next tie-break sequence).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), "c");
        q.push(SimTime::from_micros(10), "a");
        q.push(SimTime::from_micros(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(7), ());
        q.push(SimTime::from_micros(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }

    #[test]
    fn counters_track_len_and_total() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_micros(7), 2);
        // 7µs fires before the still-pending 10µs event.
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}
