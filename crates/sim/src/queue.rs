//! The pending-event set: a binary heap ordered by (time, insertion sequence).
//!
//! The sequence number guarantees FIFO order among events scheduled for the
//! same instant, which makes the whole simulation deterministic regardless of
//! heap internals. The ordering pair is public as [`DispatchKey`] so the
//! sharded scheduler's barrier merge and the heap provably sort by the same
//! key.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The total order every event dispatches in: due time first, then the
/// globally monotone insertion sequence as the tie-break. Two queues (or N
/// shards) merged by `DispatchKey` reproduce exactly the pop order a single
/// queue would have produced, which is the invariant the parallel core's
/// barrier merge rests on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DispatchKey {
    /// Absolute due instant.
    pub at: SimTime,
    /// Insertion sequence; unique across all shards of one scheduler.
    pub seq: u64,
}

/// An event with its dispatch key.
#[derive(Debug)]
struct Scheduled<E> {
    key: DispatchKey,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, with insertion order breaking ties.
        other.key.cmp(&self.key)
    }
}

/// A time-ordered queue of pending events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `event` to fire at absolute instant `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            key: DispatchKey { at, seq },
            event,
        });
    }

    /// Schedule `event` under an externally allocated dispatch key. Used by
    /// the sharded scheduler, which hands out sequence numbers from a single
    /// counter shared by all shards so the N-way merge stays a total order.
    pub fn push_keyed(&mut self, key: DispatchKey, event: E) {
        self.next_seq = self.next_seq.max(key.seq + 1);
        self.heap.push(Scheduled { key, event });
    }

    /// Remove and return the earliest pending event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.key.at, s.event))
    }

    /// Remove and return the earliest pending event with its full key.
    pub fn pop_keyed(&mut self) -> Option<(DispatchKey, E)> {
        self.heap.pop().map(|s| (s.key, s.event))
    }

    /// Dispatch key of the earliest pending event, if any.
    pub fn peek_key(&self) -> Option<DispatchKey> {
        self.heap.peek().map(|s| s.key)
    }

    /// The earliest pending event and its key, without removing it.
    pub fn peek(&self) -> Option<(DispatchKey, &E)> {
        self.heap.peek().map(|s| (s.key, &s.event))
    }

    /// Due time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.key.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (the next tie-break sequence).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), "c");
        q.push(SimTime::from_micros(10), "a");
        q.push(SimTime::from_micros(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(7), ());
        q.push(SimTime::from_micros(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
    }

    #[test]
    fn counters_track_len_and_total() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10), 1);
        q.push(SimTime::from_micros(5), 0);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime::from_micros(7), 2);
        // 7µs fires before the still-pending 10µs event.
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn dispatch_key_orders_time_then_seq() {
        let a = DispatchKey {
            at: SimTime::from_micros(10),
            seq: 9,
        };
        let b = DispatchKey {
            at: SimTime::from_micros(10),
            seq: 10,
        };
        let c = DispatchKey {
            at: SimTime::from_micros(11),
            seq: 0,
        };
        assert!(a < b && b < c);
    }

    #[test]
    fn keyed_push_preserves_external_sequencing() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(4);
        q.push_keyed(DispatchKey { at: t, seq: 7 }, "late");
        q.push_keyed(DispatchKey { at: t, seq: 2 }, "early");
        assert_eq!(q.peek().map(|(k, e)| (k.seq, *e)), Some((2, "early")));
        assert_eq!(q.pop_keyed().map(|(k, e)| (k.seq, e)), Some((2, "early")));
        assert_eq!(q.pop_keyed().map(|(k, e)| (k.seq, e)), Some((7, "late")));
        // next_seq advanced past the largest external key.
        q.push(t, "fresh");
        assert_eq!(q.peek_key().map(|k| k.seq), Some(8));
    }
}
