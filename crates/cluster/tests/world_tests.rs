//! Integration tests of the cluster runtime: applications exchanging real
//! traffic over the simulated fabric, live migrations driven through the
//! event loop, and conductor-initiated automatic balancing.

use bytes::Bytes;
use dvelm_cluster::{App, AppCtx, World, WorldConfig};
use dvelm_migrate::Strategy;
use dvelm_net::{Ip, Port, SockAddr};
use dvelm_proc::Fd;
use dvelm_sim::{MILLISECOND, SECOND};
use dvelm_stack::udp::Datagram;
use dvelm_stack::Skb;
use std::cell::RefCell;
use std::rc::Rc;

/// TCP echo server: echoes every byte back, counts what it saw.
struct EchoServer {
    seen: Rc<RefCell<Vec<u8>>>,
}

impl App for EchoServer {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.touch_memory(2);
    }
    fn on_tcp_data(&mut self, ctx: &mut AppCtx<'_>, fd: Fd, data: &[Skb]) {
        for skb in data {
            self.seen.borrow_mut().extend_from_slice(&skb.payload);
            ctx.send(fd, skb.payload.clone());
        }
    }
}

/// TCP client: sends a fixed message every tick once connected, collects
/// echoes.
struct EchoClient {
    fd: Option<Fd>,
    sent: u32,
    max: u32,
    echoed: Rc<RefCell<Vec<u8>>>,
}

impl App for EchoClient {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        if let Some(fd) = self.fd {
            if self.sent < self.max {
                self.sent += 1;
                ctx.send(fd, Bytes::from(format!("m{:03}|", self.sent)));
            }
        }
    }
    fn on_connected(&mut self, _ctx: &mut AppCtx<'_>, fd: Fd) {
        self.fd = Some(fd);
    }
    fn on_tcp_data(&mut self, _ctx: &mut AppCtx<'_>, _fd: Fd, data: &[Skb]) {
        for skb in data {
            self.echoed.borrow_mut().extend_from_slice(&skb.payload);
        }
    }
}

/// UDP "game server": replies a snapshot to every datagram.
struct UdpResponder {
    got: Rc<RefCell<u64>>,
}

impl App for UdpResponder {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.touch_memory(4);
    }
    fn on_udp_data(&mut self, ctx: &mut AppCtx<'_>, fd: Fd, dgrams: &[Datagram]) {
        for d in dgrams {
            *self.got.borrow_mut() += 1;
            ctx.send_udp_to(fd, d.from, Bytes::from(vec![0u8; 256]));
        }
    }
}

/// UDP client: fires a command every tick, counts responses.
struct UdpPinger {
    fd: Option<Fd>,
    server: SockAddr,
    responses: Rc<RefCell<u64>>,
}

impl App for UdpPinger {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        if self.fd.is_none() {
            self.fd = ctx.socket_fds().first().copied();
        }
        if let Some(fd) = self.fd {
            ctx.send_udp_to(fd, self.server, Bytes::from_static(b"+forward"));
        }
    }
    fn on_udp_data(&mut self, _ctx: &mut AppCtx<'_>, _fd: Fd, dgrams: &[Datagram]) {
        *self.responses.borrow_mut() += dgrams.len() as u64;
    }
}

/// A synthetic CPU hog for load-balancing tests.
struct Hog {
    share: f64,
}

impl App for Hog {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.set_cpu_share(self.share);
        ctx.touch_memory(1);
    }
    fn tick_period_us(&self) -> u64 {
        200 * MILLISECOND
    }
}

#[test]
fn tcp_echo_between_cluster_nodes() {
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();

    let seen = Rc::new(RefCell::new(Vec::new()));
    let server = w.spawn_process(
        n0,
        "echo_srv",
        16,
        64,
        Box::new(EchoServer { seen: seen.clone() }),
    );
    let saddr = SockAddr::new(w.hosts[n0].stack.local_ip, 7000);
    w.app_tcp_listen(n0, server, saddr);

    let echoed = Rc::new(RefCell::new(Vec::new()));
    let client = w.spawn_process(
        n1,
        "client",
        8,
        16,
        Box::new(EchoClient {
            fd: None,
            sent: 0,
            max: 10,
            echoed: echoed.clone(),
        }),
    );
    w.app_tcp_connect(n1, client, saddr, true);

    w.run_for(2 * SECOND);
    let seen = seen.borrow();
    let echoed = echoed.borrow();
    assert_eq!(String::from_utf8_lossy(&seen).matches('|').count(), 10);
    assert_eq!(&*echoed, &*seen, "everything echoed back");
    assert!(String::from_utf8_lossy(&seen).starts_with("m001|m002|"));
}

#[test]
fn udp_client_server_through_broadcast_router() {
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let _n1 = w.add_server_node();
    let c = w.add_client_host();

    let got = Rc::new(RefCell::new(0));
    let server = w.spawn_process(
        n0,
        "oa",
        16,
        64,
        Box::new(UdpResponder { got: got.clone() }),
    );
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 27960);
    w.app_udp_bind(n0, server, addr);

    let responses = Rc::new(RefCell::new(0));
    let client = w.spawn_process(
        c,
        "player",
        4,
        8,
        Box::new(UdpPinger {
            fd: None,
            server: addr,
            responses: responses.clone(),
        }),
    );
    let _fd = w.app_udp_socket(c, client, Some(addr));

    w.run_for(3 * SECOND);
    assert!(
        *got.borrow() > 40,
        "server received a steady 20 Hz stream: {}",
        got.borrow()
    );
    assert!(
        *responses.borrow() > 40,
        "client saw snapshots: {}",
        responses.borrow()
    );
}

#[test]
fn live_migration_through_event_loop_keeps_service_up() {
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let c = w.add_client_host();

    let got = Rc::new(RefCell::new(0u64));
    let server = w.spawn_process(
        n0,
        "oa",
        32,
        256,
        Box::new(UdpResponder { got: got.clone() }),
    );
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 27960);
    w.app_udp_bind(n0, server, addr);

    let responses = Rc::new(RefCell::new(0u64));
    let client = w.spawn_process(
        c,
        "player",
        4,
        8,
        Box::new(UdpPinger {
            fd: None,
            server: addr,
            responses: responses.clone(),
        }),
    );
    let _fd = w.app_udp_socket(c, client, Some(addr));

    w.run_for(2 * SECOND);
    let before = *responses.borrow();
    assert!(before > 30);

    let mig = w
        .begin_migration(server, n1, Strategy::IncrementalCollective)
        .expect("migration starts");
    w.run_for(3 * SECOND);
    assert_eq!(w.active_migrations(), 0, "migration finished");
    assert_eq!(w.host_of(server), Some(n1), "process lives on node1 now");
    assert!(w.hosts[n0].procs.is_empty(), "source is clean");
    assert_eq!(w.hosts[n0].stack.socket_count(), 0, "no residual sockets");

    let report = &w.reports[0];
    assert!(
        report.freeze_us() < 60 * MILLISECOND,
        "freeze {}µs",
        report.freeze_us()
    );
    assert!(report.sockets_migrated >= 1);

    // Service still running after migration.
    let after_migration = *responses.borrow();
    w.run_for(2 * SECOND);
    assert!(
        *responses.borrow() > after_migration + 30,
        "snapshots keep flowing after migration"
    );
    let _ = mig;
}

#[test]
fn conductor_balances_synthetic_hogs() {
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let n2 = w.add_server_node();

    // node0 heavily loaded: 6 hogs at 15% each (+5 base = 95%).
    for i in 0..6 {
        let pid = w.spawn_process(n0, &format!("hog{i}"), 8, 32, Box::new(Hog { share: 15.0 }));
        let _ = pid;
    }
    // node1 / node2 light: one small hog each.
    w.spawn_process(n1, "small1", 8, 32, Box::new(Hog { share: 10.0 }));
    w.spawn_process(n2, "small2", 8, 32, Box::new(Hog { share: 10.0 }));

    // Let the apps declare their shares once before the conductors look.
    w.run_for(300 * MILLISECOND);
    w.enable_load_balancing();
    w.run_for(60 * SECOND);

    assert!(
        !w.reports.is_empty(),
        "at least one automatic migration happened"
    );
    let loads: Vec<f64> = [n0, n1, n2].iter().map(|h| w.hosts[*h].cpu_pct()).collect();
    let spread = loads.iter().fold(f64::NEG_INFINITY, |a, b| a.max(*b))
        - loads.iter().fold(f64::INFINITY, |a, b| a.min(*b));
    assert!(
        spread < 40.0,
        "cluster should be much closer to balanced, loads: {loads:?}"
    );
    assert!(
        w.hosts[n0].procs.len() < 6,
        "the overloaded node shed at least one process"
    );
}

#[test]
fn packet_log_records_traffic() {
    let mut w = World::new(WorldConfig::default());
    let n0 = w.add_server_node();
    let c = w.add_client_host();
    w.enable_packet_log(Port(27960));

    let got = Rc::new(RefCell::new(0));
    let server = w.spawn_process(n0, "oa", 16, 64, Box::new(UdpResponder { got }));
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 27960);
    w.app_udp_bind(n0, server, addr);

    let responses = Rc::new(RefCell::new(0));
    let client = w.spawn_process(
        c,
        "player",
        4,
        8,
        Box::new(UdpPinger {
            fd: None,
            server: addr,
            responses,
        }),
    );
    let _fd = w.app_udp_socket(c, client, Some(addr));
    w.run_for(SECOND);
    assert!(w.packet_log.len() > 20);
    assert!(w
        .packet_log
        .iter()
        .all(|e| e.src.port == Port(27960) || e.dst.port == Port(27960)));
    // Log is time-ordered.
    assert!(w.packet_log.windows(2).all(|p| p[0].at <= p[1].at));
}
