//! The world's event alphabet.

use dvelm_faults::Fault;
use dvelm_lb::LbMsg;
use dvelm_net::NodeId;
use dvelm_proc::Pid;
use dvelm_stack::xlate::XlateRule;
use dvelm_stack::{Segment, SockId};

/// Everything that can happen in the simulated cluster.
#[derive(Debug)]
pub enum Event {
    /// A frame reaches a host's interface.
    PacketArrival { host: usize, seg: Segment },
    /// One broadcast frame reaches several hosts' interfaces at the same
    /// instant (the single-IP router's inbound fan-out, §II-A). Batching
    /// the fan-out into one event keeps the scheduler's in-flight set
    /// O(frames) instead of O(frames × nodes); hosts are delivered in
    /// order, which is exactly the dispatch order the per-host events had
    /// (consecutive scheduler sequence numbers at an equal instant).
    BroadcastArrival { hosts: Vec<usize>, seg: Segment },
    /// A socket retransmission timer fires.
    SockTimer { host: usize, sock: SockId, gen: u64 },
    /// One iteration of an application's real-time loop. `gen` names the
    /// tick chain: events from a chain that was replaced (the process was
    /// suspended and resumed, killed and restarted) are stale and ignored,
    /// so a resumed process never double-ticks.
    AppTick { host: usize, pid: Pid, gen: u64 },
    /// An application consumes readable data from one of its sockets.
    AppRead { host: usize, pid: Pid, sock: SockId },
    /// A conductor daemon's periodic tick (monitor + heartbeat + policies).
    ConductorTick { host: usize },
    /// A conductor-to-conductor message arrives.
    LbMessage {
        host: usize,
        from: NodeId,
        msg: LbMsg,
    },
    /// The migration engine asked to be stepped.
    MigrationStep { mig: u64 },
    /// A translation rule reaches an in-cluster peer (transd, §II-B).
    InstallXlate { host: usize, rule: XlateRule },
    /// A translation-rule revocation reaches a peer (abort rollback).
    RemoveXlate { host: usize, rule: XlateRule },
    /// A scheduled fault fires (see [`World::install_fault_plan`]).
    ///
    /// [`World::install_fault_plan`]: crate::World::install_fault_plan
    Fault { fault: Fault },
    /// A timed [`Fault::Overload`] surge expires. `gen` names the surge
    /// installation that scheduled this restore: if a newer surge replaced
    /// it on the same host in the meantime, the stale restore is ignored
    /// instead of cutting the new surge short.
    SurgeRestore { host: usize, gen: u64 },
    /// A timed [`Fault::Partition`] heals. `gen` names the partition
    /// installation that scheduled this heal: each partition is healed by
    /// exactly its own event, so overlapping partitions compose.
    PartitionHeal { gen: u64 },
    /// Periodic sweep evicting stale translation rules on every live host
    /// (only scheduled when `WorldConfig::xlate_gc_ttl_us` is set).
    XlateGc,
}

impl Event {
    /// Which shard's local queue the event belongs on: host-addressed
    /// events go to their host's shard, cluster-global events (migration
    /// stepping, scripted faults, GC sweeps) to shard 0, and a broadcast to
    /// the shard of its first recipient. Routing is a locality hint only —
    /// dispatch order is fixed by the global `(at, seq)` key regardless.
    pub fn shard_hint(&self) -> u64 {
        match self {
            Event::PacketArrival { host, .. }
            | Event::SockTimer { host, .. }
            | Event::AppTick { host, .. }
            | Event::AppRead { host, .. }
            | Event::ConductorTick { host }
            | Event::LbMessage { host, .. }
            | Event::InstallXlate { host, .. }
            | Event::RemoveXlate { host, .. }
            | Event::SurgeRestore { host, .. } => *host as u64,
            Event::BroadcastArrival { hosts, .. } => hosts.first().copied().unwrap_or(0) as u64,
            Event::MigrationStep { .. }
            | Event::Fault { .. }
            | Event::PartitionHeal { .. }
            | Event::XlateGc => 0,
        }
    }

    /// Whether the event is a pure packet reception — the class the parallel
    /// executor may batch into an rx round, because handling it only runs
    /// the *receiving* host's stack (`HostStack::on_rx`) before any world
    /// state is touched in the ordered apply phase.
    pub fn is_rx(&self) -> bool {
        match self {
            Event::PacketArrival { .. } | Event::BroadcastArrival { .. } => true,
            Event::SockTimer { .. }
            | Event::AppTick { .. }
            | Event::AppRead { .. }
            | Event::ConductorTick { .. }
            | Event::LbMessage { .. }
            | Event::MigrationStep { .. }
            | Event::InstallXlate { .. }
            | Event::RemoveXlate { .. }
            | Event::Fault { .. }
            | Event::SurgeRestore { .. }
            | Event::PartitionHeal { .. }
            | Event::XlateGc => false,
        }
    }
}
