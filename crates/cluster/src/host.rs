//! One simulated machine: stack + processes + (on server nodes) a conductor.

use crate::app::App;
use dvelm_lb::{Conductor, LoadMonitor};
use dvelm_proc::{Fd, Pid, Process};
use dvelm_stack::{HostStack, SockId};
use std::collections::BTreeMap;

/// What role a host plays in the testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostKind {
    /// DVE server node: public (shared IP) + local interface, runs zone
    /// servers, a conductor, migd and transd.
    Server,
    /// Client host on the WAN side of the router.
    Client,
    /// Database server on the local network only.
    Database,
}

/// A process together with its application.
pub struct ProcEntry {
    pub process: Process,
    pub app: Box<dyn App>,
    /// Frozen by a migration freeze phase: no ticks, no reads.
    pub suspended: bool,
    /// Real-time loop period, µs.
    pub tick_period_us: u64,
    /// Generation of the live tick chain; `Event::AppTick` events stamped
    /// with an older generation are stale and dropped.
    pub tick_gen: u64,
}

/// One simulated machine.
pub struct Host {
    pub kind: HostKind,
    /// False once the host crashed ([`World::crash_node`]): events targeting
    /// it are discarded and it no longer appears on the fabric.
    ///
    /// [`World::crash_node`]: crate::World::crash_node
    pub alive: bool,
    pub stack: HostStack,
    pub procs: BTreeMap<Pid, ProcEntry>,
    pub conductor: Option<Conductor>,
    /// Which process+fd owns each socket (for effect dispatch).
    pub sock_owner: BTreeMap<SockId, (Pid, Fd)>,
    /// Base (OS + services) CPU load, percent.
    pub base_cpu: f64,
    /// EWMA smoother over CPU samples (the atop-style indicator the
    /// conductor reads).
    pub load_monitor: LoadMonitor,
}

impl Host {
    /// A host around a stack.
    pub fn new(kind: HostKind, stack: HostStack) -> Host {
        Host {
            kind,
            alive: true,
            stack,
            procs: BTreeMap::new(),
            conductor: None,
            sock_owner: BTreeMap::new(),
            base_cpu: 5.0,
            load_monitor: LoadMonitor::default(),
        }
    }

    /// Total CPU consumption of this host, percent (capped at 100).
    pub fn cpu_pct(&self) -> f64 {
        let procs: f64 = self.procs.values().map(|p| p.process.cpu_share).sum();
        (self.base_cpu + procs).min(100.0)
    }

    /// Pids hosted here, sorted (deterministic iteration).
    pub fn pids(&self) -> Vec<Pid> {
        let mut v: Vec<Pid> = self.procs.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// (pid, cpu share) list for the selection policy.
    pub fn proc_loads(&self) -> Vec<(Pid, f64)> {
        let mut v: Vec<(Pid, f64)> = self
            .procs
            .iter()
            .map(|(pid, e)| (*pid, e.process.cpu_share))
            .collect();
        v.sort_by_key(|(pid, _)| *pid);
        v
    }

    /// Register a socket as owned by (pid, fd).
    pub fn register_sock(&mut self, sock: SockId, pid: Pid, fd: Fd) {
        self.sock_owner.insert(sock, (pid, fd));
    }

    /// Rebuild the socket-owner index for one process (after migration).
    pub fn reindex_proc_sockets(&mut self, pid: Pid) {
        if let Some(entry) = self.procs.get(&pid) {
            for (fd, sid) in entry.process.fds.sockets() {
                self.sock_owner.insert(sid, (pid, fd));
            }
        }
    }

    /// Drop index entries for sockets owned by `pid`.
    pub fn unindex_proc_sockets(&mut self, pid: Pid) {
        self.sock_owner.retain(|_, (p, _)| *p != pid);
    }
}
