//! The simulated DVE cluster runtime.
//!
//! Composes every layer of the reproduction into one deterministic
//! discrete-event world (Fig. 1 + Fig. 2):
//!
//! * hosts — server nodes (shared public IP + unique local IP), client hosts
//!   on the WAN side, database hosts on the local network only;
//! * the broadcast router and the in-cluster switch (`dvelm-net`);
//! * per-host network stacks (`dvelm-stack`) and processes (`dvelm-proc`);
//! * applications (zone servers, game servers, clients, databases) written
//!   against the [`App`] trait, running a real-time loop inside
//!   their process;
//! * the migration daemon: [`MigrationEngine`](dvelm_migrate::MigrationEngine)
//!   tasks stepped by events (`migd` in Fig. 2);
//! * the conductor daemons (`dvelm-lb`) wired to heartbeat broadcasts and
//!   migration initiation (`cond` in Fig. 2).
//!
//! # Example
//!
//! Build a two-node cluster, run a process, migrate it live:
//!
//! ```
//! use dvelm_cluster::{App, AppCtx, World, WorldConfig};
//! use dvelm_migrate::Strategy;
//!
//! struct Idle;
//! impl App for Idle {
//!     fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
//!         ctx.touch_memory(8);
//!     }
//! }
//!
//! let mut world = World::new(WorldConfig::default());
//! let n0 = world.add_server_node();
//! let n1 = world.add_server_node();
//! let pid = world.spawn_process(n0, "svc", 16, 128, Box::new(Idle));
//! world.run_for(1_000_000); // 1 s
//! world.begin_migration(pid, n1, Strategy::IncrementalCollective).unwrap();
//! world.run_for(2_000_000);
//! assert_eq!(world.host_of(pid), Some(n1));
//! assert!(world.reports[0].freeze_us() < 50_000);
//! ```

pub mod app;
pub mod event;
pub mod host;
pub mod world;

pub use app::{App, AppCtx};
pub use dvelm_faults::{Fault, FaultPlan};
pub use event::Event;
pub use host::{Host, HostKind, ProcEntry};
pub use world::{
    shards_from_env, MigId, MigrationOutcome, PacketLogEntry, Recovery, ResourceUsage, World,
    WorldConfig,
};
