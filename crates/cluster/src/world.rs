//! The event-driven cluster world.

use crate::app::{App, AppCtx};
use crate::event::Event;
use crate::host::{Host, HostKind, ProcEntry};
use dvelm_faults::{CtrlDir, Fault, FaultPlan, HostSet};
use dvelm_lb::{
    AdmissionConfig, AdmissionControl, Conductor, LbEffect, LbMsg, LoadInfo, PolicyConfig,
    StrategyPreference,
};
use dvelm_metrics::TraceRecorder;
use dvelm_migrate::{
    AbortIo, AbortReason, AbortRecovery, CostModel, Effect, EffectBuf, MigrationAborted,
    MigrationEngine, OverloadGuard, PhaseId, Side, StepIo, Strategy,
};
use dvelm_monitor::{InvariantMonitor, InvariantViolation};
use dvelm_net::{
    BroadcastRouter, ClusterSwitch, Ip, LossModel, NodeId, Port, RouteError, SockAddr, ZoneId,
};
use dvelm_proc::{Fd, FdEntry, Pid, Process, PAGE_SIZE};
use dvelm_sim::{DetRng, Mailbox, ShardedScheduler, SimTime, WorkerPool};
use dvelm_stack::{
    CaptureBudget, CaptureKey, HostStack, PressureKind, Segment, SockId, StackEffect,
};
use std::collections::{BTreeMap, BTreeSet};

// The parallel rx phase hands per-host stacks and shared segments to pool
// workers; both must be thread-safe by construction (plain data, BTreeMaps,
// atomically refcounted payload bytes). Compile-time proof:
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<HostStack>();
    assert_send::<StackEffect>();
    assert_send::<Segment>();
    assert_sync::<Segment>();
};

/// A migration task identifier.
pub type MigId = u64;

/// World-level tunables.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    pub seed: u64,
    pub cost: CostModel,
    pub lb: PolicyConfig,
    /// Socket-migration strategy used by conductor-initiated migrations.
    pub strategy: Strategy,
    /// Conductor tick period, µs.
    pub conductor_tick_us: u64,
    /// Delay between data becoming readable and the app consuming it, µs.
    pub app_read_delay_us: u64,
    /// One-way latency of control messages (xlate requests, lb messages), µs.
    pub ctrl_latency_us: u64,
    /// Cluster-wide migration admission budgets (default: unlimited — the
    /// paper-prototype behaviour).
    pub admission: AdmissionConfig,
    /// Per-migration overload guard (deadline + precopy convergence);
    /// default disabled.
    pub overload_guard: OverloadGuard,
    /// Capture-queue budget installed on every host stack; default
    /// unlimited.
    pub capture_budget: CaptureBudget,
    /// When set, translation rules unused for this long are periodically
    /// evicted (default `None`: rules live until revoked).
    pub xlate_gc_ttl_us: Option<u64>,
    /// Epoch fencing of migration restores (default on). When enabled, a
    /// destination refuses to commit a restore whose (pid, epoch) no longer
    /// matches a live reservation lease — the guarantee that a partition
    /// heal can never yield two running copies of one process. Disabling it
    /// reproduces the unfenced protocol so tests can demonstrate the
    /// invariant monitor catching the resulting split-brain.
    pub fence_enabled: bool,
    /// Worker threads for the parallel event core (also the shard count of
    /// the event queue). `1` is the sequential loop; any value produces
    /// byte-identical output — threads change wall-clock time only. The
    /// default honours the `DVELM_SHARDS` environment variable (the CI
    /// matrix knob) and falls back to 1.
    pub threads: usize,
    /// Interest-managed (AOI) inbound routing. When enabled, inbound WAN
    /// frames whose destination port is mapped to a zone are delivered only
    /// to that zone's subscribers instead of broadcast to every node.
    /// Default off: the legacy broadcast fabric, byte-identical to every
    /// committed figure and trace.
    pub aoi: bool,
}

/// Worker-thread count requested via the `DVELM_SHARDS` environment
/// variable; `None` when unset or unparsable. [`WorldConfig::default`]
/// consults this so an externally set matrix value shards every world a
/// test suite builds, without touching each construction site.
pub fn shards_from_env() -> Option<usize> {
    std::env::var("DVELM_SHARDS")
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0xd0e5,
            cost: CostModel::default(),
            lb: PolicyConfig::default(),
            strategy: Strategy::IncrementalCollective,
            conductor_tick_us: 500_000,
            app_read_delay_us: 100,
            ctrl_latency_us: 75,
            admission: AdmissionConfig::UNLIMITED,
            overload_guard: OverloadGuard::DISABLED,
            capture_budget: CaptureBudget::UNLIMITED,
            xlate_gc_ttl_us: None,
            fence_enabled: true,
            threads: shards_from_env().unwrap_or(1),
            aoi: false,
        }
    }
}

/// One packet delivery of a parallel rx round. The receiving host's stack
/// runs `on_rx` in the parallel phase; its effects land in the task's
/// [`Mailbox`] and are applied in dispatch order at the barrier.
struct RxTask {
    host: usize,
    stack: *mut HostStack,
    at: SimTime,
    /// The arriving frame, shared across the round (a broadcast batch has
    /// many recipients of one frame). Workers clone it — `Bytes` payloads
    /// are atomically refcounted, so the clone is cheap and thread-safe.
    seg: *const Segment,
    out: Mailbox<StackEffect>,
}

// SAFETY: the round builder admits each host at most once per round, so
// tasks reference pairwise-disjoint `HostStack`s; segments are only read;
// and `WorkerPool::run` does not return until every worker is done, so no
// access outlives the borrowed world state the pointers came from.
unsafe impl Send for RxTask {}

struct MigTask {
    engine: MigrationEngine,
    src: usize,
    dst: usize,
    pid: Pid,
    /// Folds the engine's effect stream into the migration's report and
    /// phase timeline (the trace spine).
    recorder: TraceRecorder,
    /// [`Fault::FetchStall`]: engine steps are deferred (not dropped) until
    /// this instant. `None` in fault-free runs.
    stall_until: Option<SimTime>,
}

/// How the process of an aborted migration fared — the payload-free mirror
/// of [`AbortRecovery`] (which carries the surviving [`Process`] image),
/// suitable for querying after the fact via
/// [`World::migration_outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recovery {
    /// Precopy abort: the source copy never stopped running.
    SourceKeptRunning,
    /// Freeze-phase abort before detach: the frozen source copy resumed.
    ResumedOnSource,
    /// Post-detach abort: sockets reinstalled and process restored on the
    /// source from the captured image; captured packets drained into it.
    RestoredOnSource,
    /// The source died too: only the captured image survived (kept in
    /// [`World::lost_images`], cold-restartable elsewhere).
    ImageOnly,
    /// Nothing survives.
    Lost,
}

impl From<&AbortRecovery> for Recovery {
    fn from(r: &AbortRecovery) -> Recovery {
        match r {
            AbortRecovery::SourceKeptRunning => Recovery::SourceKeptRunning,
            AbortRecovery::ResumedOnSource => Recovery::ResumedOnSource,
            AbortRecovery::RestoredOnSource(_) => Recovery::RestoredOnSource,
            AbortRecovery::ImageOnly(_) => Recovery::ImageOnly,
            AbortRecovery::Lost => Recovery::Lost,
        }
    }
}

/// Terminal state of a migration, kept per [`MigId`] after the task is
/// gone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MigrationOutcome {
    /// The migration completed; its report is `World::reports[report]`.
    Completed { report: usize },
    /// The migration aborted in `phase` because of `reason`; its report
    /// (with [`is_aborted`](dvelm_migrate::MigrationReport::is_aborted) set)
    /// is also in `World::reports`.
    Aborted {
        phase: PhaseId,
        reason: AbortReason,
        recovery: Recovery,
    },
}

impl MigrationOutcome {
    /// Whether the migration completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, MigrationOutcome::Completed { .. })
    }
}

/// Snapshot of the resources bounded by the overload machinery (see
/// [`World::resource_usage`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// Migrations currently admitted and in flight.
    pub active_migrations: usize,
    /// Checkpoint-image bytes in flight, summed over all destinations.
    pub inflight_image_bytes: u64,
    /// Packets parked in capture queues, cluster-wide.
    pub queued_capture_packets: u64,
    /// Bytes parked in capture queues, cluster-wide.
    pub queued_capture_bytes: u64,
    /// Hosts currently under a [`Fault::Overload`] surge.
    pub surged_hosts: usize,
}

/// Freelist cap for the pooled effect/arrival buffers: enough for any
/// realistic re-entrancy depth while keeping the idle memory bounded (some
/// callers hand the pool vectors the stack allocated itself).
const FX_POOL_CAP: usize = 32;

/// One transmitted-frame record (the tcpdump of Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketLogEntry {
    pub at: SimTime,
    pub from_host: usize,
    pub src: SockAddr,
    pub dst: SockAddr,
    pub bytes: u64,
}

/// The simulated cluster.
pub struct World {
    pub cfg: WorldConfig,
    pub sched: ShardedScheduler<Event>,
    pub hosts: Vec<Host>,
    pub router: BroadcastRouter,
    pub switch: ClusterSwitch,
    pub rng: DetRng,
    migrations: BTreeMap<MigId, MigTask>,
    /// Pids with a migration in flight (kept in sync with `migrations`;
    /// O(1) duplicate check in [`begin_migration`](World::begin_migration)).
    migrating: BTreeSet<Pid>,
    next_mig: MigId,
    next_pid: u64,
    /// Terminal state of every finished migration, by id.
    outcomes: BTreeMap<MigId, MigrationOutcome>,
    /// Process images orphaned by aborts whose source host died (sockets
    /// lost, BLCR semantics); cold-restart fodder.
    pub lost_images: Vec<Process>,
    /// Hosts whose conductor is dark on control messages until the instant,
    /// in the recorded direction ([`Fault::CtrlBlackout`]).
    ctrl_dark_until: BTreeMap<usize, (CtrlDir, SimTime)>,
    /// Active network partitions ([`Fault::Partition`]), by installation
    /// generation. Overlapping partitions compose: a frame is dropped if
    /// *any* active partition separates its endpoints, and each heals on
    /// its own [`Event::PartitionHeal`].
    partitions: BTreeMap<u64, [HostSet; 2]>,
    next_partition_gen: u64,
    /// Migrations parked because their endpoints are partitioned. No
    /// polling: [`on_migration_step`](World::on_migration_step) parks a
    /// step that finds the path cut, and the heal event re-schedules it —
    /// a fault-free run never touches this set.
    stalled_migs: BTreeSet<MigId>,
    /// Stale source copies left by an unfenced post-copy rollback that
    /// raced a surviving destination (pid → source host). The first app
    /// tick of such a copy is the [`StaleSourceWrite`] hazard; the monitor
    /// records it once and the entry is dropped.
    ///
    /// [`StaleSourceWrite`]: dvelm_monitor::InvariantViolation::StaleSourceWrite
    stale_source_pids: BTreeMap<Pid, usize>,
    /// Unreliable control delivery windows ([`Fault::CtrlLoss`] /
    /// [`Fault::CtrlDup`] / [`Fault::CtrlReorder`]): `(pct, until)` and,
    /// for reorder, the max extra delay. The RNG is only consulted while a
    /// window is open, so fault-free runs draw nothing and stay
    /// byte-identical.
    ctrl_loss: Option<(u32, SimTime)>,
    ctrl_dup: Option<(u32, SimTime)>,
    ctrl_reorder: Option<(u32, u64, SimTime)>,
    /// The always-on invariant monitor (`None` until
    /// [`enable_monitor`](World::enable_monitor); every hook site is one
    /// `if let` on this option, so a disabled monitor costs nothing and an
    /// enabled one never schedules events or draws RNG).
    monitor: Option<InvariantMonitor>,
    /// The migration admission ledger (semaphores + image-byte budgets),
    /// consulted in [`begin_migration`](World::begin_migration).
    admission: AdmissionControl,
    /// Hosts under a traffic surge ([`Fault::Overload`]): tick-rate
    /// multiplier per host index.
    surge: BTreeMap<usize, u32>,
    /// Generation of the surge currently installed per host; a scheduled
    /// [`Event::SurgeRestore`] only clears the surge if its generation
    /// still matches (a newer surge invalidates older timed restores).
    surge_gen: BTreeMap<usize, u64>,
    next_surge_gen: u64,
    /// Monotonic stamp for `Event::AppTick` chains (see
    /// [`Event::AppTick`]).
    next_tick_gen: u64,
    /// Completed migration reports, derived from each task's recorder.
    pub reports: Vec<dvelm_migrate::MigrationReport>,
    /// Transmit log (when a filter is enabled).
    pub packet_log: Vec<PacketLogEntry>,
    log_port: Option<Port>,
    /// Rendered migration effect stream (when enabled): one line per effect.
    effect_log: Option<Vec<String>>,
    /// Frames the router could not route (unknown client/node — a crashed
    /// or departed endpoint raced an in-flight frame). Each one also lands
    /// in the effect log when enabled.
    route_errors: u64,
    /// Outbound frames dropped because their client host departed
    /// gracefully while the frame was in flight. A benign race, counted
    /// separately so tests can assert `route_errors == 0` under churn.
    benign_route_races: u64,
    /// Zone interest per process: pid → (inbound port, zone) pairs, one
    /// per zone the process serves. Source of truth for which zones follow
    /// a pid through a migration ([`begin_migration`](World::begin_migration)
    /// copies them into the engine) and for the monitor's
    /// subscription-leak sweep.
    zone_interest: BTreeMap<Pid, Vec<(Port, ZoneId)>>,
    /// Owning pid per zone (a zone is served by exactly one process).
    zone_owner: BTreeMap<ZoneId, Pid>,
    /// Which migration installed each capture entry, by (dst host, key).
    /// Two concurrent migrations into one host can share a capture key —
    /// `CaptureTable::enable` is idempotent — so pressure events must be
    /// attributed by this index, not by scanning for any migration whose
    /// key set contains the key (the first-match scan charged siblings).
    capture_owner: BTreeMap<(usize, CaptureKey), MigId>,
    /// Client hosts that departed gracefully ([`detach_client_host`]
    /// (World::detach_client_host)); outbound frames to them are dropped as
    /// benign races instead of router errors.
    departed_clients: BTreeSet<usize>,
    /// Reusable broadcast fan-out buffer: one inbound frame produces one
    /// arrival per node, every tick — pooling the vector keeps the
    /// per-packet hot path allocation-free.
    arrival_buf: Vec<(NodeId, SimTime)>,
    /// Pooled per-step migration effect buffers (engine steps and aborts
    /// can re-enter through effect dispatch, hence a pool, not one slot).
    mig_fx_pool: Vec<Vec<(SimTime, Effect)>>,
    /// Pooled stack-effect vectors for application callbacks (same
    /// re-entrancy argument).
    stack_fx_pool: Vec<Vec<StackEffect>>,
    /// Pooled host lists for [`Event::BroadcastArrival`] (one list travels
    /// through the scheduler per broadcast frame and comes back here).
    bcast_pool: Vec<Vec<usize>>,
    /// Worker pool for parallel rx rounds (`None` when `cfg.threads <= 1`:
    /// the world then runs today's literal sequential loop).
    pool: Option<WorkerPool>,
    /// Conservative lookahead (smallest link latency in the fabric), cached
    /// at the first parallel round; `run_rx_round` requires it positive.
    min_link_latency_us: Option<u64>,
    /// Round scratch: events popped for the current rx round (kept so the
    /// broadcast host lists can be recycled after the barrier).
    round_events: Vec<Event>,
    /// Round scratch: per-delivery tasks (capacity reused across rounds).
    round_tasks: Vec<RxTask>,
    /// Generation stamps marking hosts already claimed by the current round
    /// (`host_mark[h] == round_gen`), O(1) per check with no per-round
    /// clearing.
    host_mark: Vec<u64>,
    round_gen: u64,
}

impl World {
    /// An empty world.
    pub fn new(cfg: WorldConfig) -> World {
        let rng = DetRng::new(cfg.seed);
        let threads = cfg.threads.max(1);
        let mut sched = ShardedScheduler::new(threads, Event::shard_hint);
        if let Some(ttl) = cfg.xlate_gc_ttl_us {
            sched.schedule_after(ttl.max(1), Event::XlateGc);
        }
        let pool = (threads > 1).then(|| WorkerPool::new(threads));
        let admission = AdmissionControl::new(cfg.admission);
        World {
            cfg,
            sched,
            hosts: Vec::new(),
            router: BroadcastRouter::default_testbed(),
            switch: ClusterSwitch::gige(),
            rng,
            migrations: BTreeMap::new(),
            migrating: BTreeSet::new(),
            next_mig: 1,
            next_pid: 1,
            outcomes: BTreeMap::new(),
            lost_images: Vec::new(),
            ctrl_dark_until: BTreeMap::new(),
            partitions: BTreeMap::new(),
            next_partition_gen: 0,
            stalled_migs: BTreeSet::new(),
            stale_source_pids: BTreeMap::new(),
            ctrl_loss: None,
            ctrl_dup: None,
            ctrl_reorder: None,
            monitor: None,
            admission,
            surge: BTreeMap::new(),
            surge_gen: BTreeMap::new(),
            next_surge_gen: 0,
            next_tick_gen: 0,
            reports: Vec::new(),
            packet_log: Vec::new(),
            log_port: None,
            effect_log: None,
            route_errors: 0,
            benign_route_races: 0,
            zone_interest: BTreeMap::new(),
            zone_owner: BTreeMap::new(),
            capture_owner: BTreeMap::new(),
            departed_clients: BTreeSet::new(),
            arrival_buf: Vec::new(),
            mig_fx_pool: Vec::new(),
            stack_fx_pool: Vec::new(),
            bcast_pool: Vec::new(),
            pool,
            min_link_latency_us: None,
            round_events: Vec::new(),
            round_tasks: Vec::new(),
            host_mark: Vec::new(),
            round_gen: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Record every transmitted frame touching this port (Fig. 4 tcpdump).
    pub fn enable_packet_log(&mut self, port: Port) {
        self.log_port = Some(port);
    }

    /// Record every migration effect as a rendered line (diagnostics and
    /// determinism checks; memory grows with traffic, so test-sized runs
    /// only).
    pub fn enable_effect_log(&mut self) {
        self.effect_log = Some(Vec::new());
    }

    /// The rendered migration effect stream (empty unless
    /// [`enable_effect_log`](World::enable_effect_log) was called).
    pub fn effect_log(&self) -> &[String] {
        self.effect_log.as_deref().unwrap_or(&[])
    }

    /// Frames the router refused to route (unknown client or node). Nonzero
    /// counts are expected when hosts crash with traffic in flight; steady
    /// growth without faults indicates a topology bug.
    pub fn route_errors(&self) -> u64 {
        self.route_errors
    }

    /// Turn on the invariant monitor, seeding its ownership model with
    /// every process currently alive. From here on the world feeds it
    /// ownership events as they happen; call
    /// [`monitor_sweep`](World::monitor_sweep) periodically for the
    /// reconciliation and budget checks, and read the findings via
    /// [`violations`](World::violations). The monitor is passive — it never
    /// schedules events or draws from the RNG, so enabling it leaves every
    /// deterministic output byte-identical.
    pub fn enable_monitor(&mut self) {
        let now = self.now();
        let mut m = InvariantMonitor::new();
        for (h, host) in self.hosts.iter().enumerate() {
            if host.alive {
                for pid in host.procs.keys() {
                    m.on_spawn(now, *pid, h);
                }
            }
        }
        self.monitor = Some(m);
    }

    /// Invariant violations observed so far (empty while the monitor is
    /// disabled).
    pub fn violations(&self) -> &[InvariantViolation] {
        self.monitor.as_ref().map(|m| m.violations()).unwrap_or(&[])
    }

    /// One reconciliation pass of the invariant monitor against world
    /// reality: the live process placement (split brains and lost processes
    /// in either direction of drift) and every live host's capture-queue
    /// peaks against the configured budget. No-op while the monitor is
    /// disabled.
    pub fn monitor_sweep(&mut self) {
        let Some(mut m) = self.monitor.take() else {
            return;
        };
        let now = self.now();
        let mut live: Vec<(Pid, usize)> = Vec::new();
        for (h, host) in self.hosts.iter().enumerate() {
            if host.alive {
                live.extend(host.procs.keys().map(|pid| (*pid, h)));
            }
        }
        let alive: Vec<bool> = self.hosts.iter().map(|h| h.alive).collect();
        m.reconcile(now, &live, |h| alive.get(h).copied().unwrap_or(false));
        if !self.cfg.capture_budget.is_unlimited() {
            for host in &self.hosts {
                if !host.alive {
                    continue;
                }
                let stats = host.stack.capture.stats();
                m.check_capture(
                    now,
                    stats.peak_queued_packets,
                    self.cfg.capture_budget.max_packets as u64,
                    stats.peak_queued_bytes,
                    self.cfg.capture_budget.max_bytes as u64,
                );
            }
        }
        // Interest-table audit: every subscription must point at the host
        // owning the zone's serving process. Pids mid-migration are
        // exempt — the destination subscribes during the capture window by
        // design — as is a subscription whose node no longer maps to any
        // host (the fabric already dropped it).
        for (zone, subs) in self.router.interest().iter() {
            let Some(&pid) = self.zone_owner.get(&zone) else {
                continue; // zone mapped but ownerless: dark, not leaked
            };
            if self.migrating.contains(&pid) {
                continue;
            }
            for &node in subs {
                if let Some(h) = self.host_by_node(node) {
                    m.check_subscription(now, pid, zone.0, h);
                }
            }
        }
        self.monitor = Some(m);
    }

    // ------------------------------------------------------------------
    // topology construction
    // ------------------------------------------------------------------

    fn next_node(&self) -> NodeId {
        NodeId(self.hosts.len() as u32)
    }

    /// Add a DVE server node (public + local interface, router + switch).
    pub fn add_server_node(&mut self) -> usize {
        let node = self.next_node();
        let jiffies_base = self.rng.fork(node.0 as u64 ^ 0x1ff).next_u64() % 100_000_000;
        let mut stack = HostStack::server_node(node, jiffies_base, self.cfg.seed ^ node.0 as u64);
        stack.capture.set_budget(self.cfg.capture_budget);
        self.router.attach_node(node);
        self.switch.attach(node);
        self.hosts.push(Host::new(HostKind::Server, stack));
        self.hosts.len() - 1
    }

    /// Add a client host on the WAN side.
    pub fn add_client_host(&mut self) -> usize {
        let node = self.next_node();
        let jiffies_base = self.rng.fork(node.0 as u64 ^ 0x2ff).next_u64() % 100_000_000;
        let mut stack = HostStack::client_host(node, jiffies_base, self.cfg.seed ^ node.0 as u64);
        stack.capture.set_budget(self.cfg.capture_budget);
        self.router.attach_client(node);
        self.hosts.push(Host::new(HostKind::Client, stack));
        self.hosts.len() - 1
    }

    /// Add a database host (local network only).
    pub fn add_database_host(&mut self) -> usize {
        let node = self.next_node();
        let jiffies_base = self.rng.fork(node.0 as u64 ^ 0x3ff).next_u64() % 100_000_000;
        let local = Ip::local_of(node);
        let mut stack = HostStack::new(
            node,
            local,
            local,
            jiffies_base,
            self.cfg.seed ^ node.0 as u64,
        );
        stack.capture.set_budget(self.cfg.capture_budget);
        self.switch.attach(node);
        self.hosts.push(Host::new(HostKind::Database, stack));
        self.hosts.len() - 1
    }

    /// Enable the load-balancing middleware on every server node: create
    /// conductors, run discovery and schedule their periodic ticks.
    pub fn enable_load_balancing(&mut self) {
        let now = self.now();
        for h in 0..self.hosts.len() {
            if self.hosts[h].kind != HostKind::Server {
                continue;
            }
            let node = self.hosts[h].stack.node;
            let mut cond = Conductor::new(node, self.cfg.lb);
            let local = self.local_load(h, now);
            let effects = cond.on_start(local);
            self.hosts[h].conductor = Some(cond);
            self.apply_lb_effects(h, effects);
            // Stagger ticks a little so nodes do not broadcast in lockstep.
            let offset = self.rng.range_u64(0, 50_000);
            self.sched
                .schedule_after(offset + 1_000, Event::ConductorTick { host: h });
        }
    }

    // ------------------------------------------------------------------
    // processes and sockets
    // ------------------------------------------------------------------

    /// Spawn a process running `app` on a host.
    pub fn spawn_process(
        &mut self,
        host: usize,
        name: &str,
        text_pages: usize,
        data_pages: usize,
        app: Box<dyn App>,
    ) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let process = Process::new(pid, name, text_pages, data_pages);
        let period = app.tick_period_us();
        let gen = self.fresh_tick_gen();
        self.hosts[host].procs.insert(
            pid,
            ProcEntry {
                process,
                app,
                suspended: false,
                tick_period_us: period,
                tick_gen: gen,
            },
        );
        let offset = self.rng.range_u64(0, period.max(1));
        self.sched
            .schedule_after(offset, Event::AppTick { host, pid, gen });
        if let Some(m) = &mut self.monitor {
            m.on_spawn(self.sched.now(), pid, host);
        }
        pid
    }

    /// A stamp for a new tick chain; every chain gets its own so events of
    /// a replaced chain are recognizably stale.
    fn fresh_tick_gen(&mut self) -> u64 {
        self.next_tick_gen += 1;
        self.next_tick_gen
    }

    /// Start a fresh real-time-loop chain for `pid` (after restore, resume
    /// or restart), invalidating any still-scheduled ticks of older chains.
    fn restart_ticks(&mut self, host: usize, pid: Pid) {
        let gen = self.fresh_tick_gen();
        let Some(entry) = self.hosts[host].procs.get_mut(&pid) else {
            return;
        };
        entry.tick_gen = gen;
        self.sched
            .schedule_after(0, Event::AppTick { host, pid, gen });
    }

    /// Schedule reads draining whatever queued on `pid`'s sockets (after a
    /// freeze ends, queued-up data does not announce itself again).
    fn drain_proc_sockets(&mut self, host: usize, pid: Pid) {
        let Some(entry) = self.hosts[host].procs.get(&pid) else {
            return;
        };
        let socks: Vec<SockId> = entry.process.fds.sockets().map(|(_, s)| s).collect();
        for sock in socks {
            self.sched.schedule_after(
                self.cfg.app_read_delay_us,
                Event::AppRead { host, pid, sock },
            );
        }
    }

    /// Which host currently runs `pid`.
    pub fn host_of(&self, pid: Pid) -> Option<usize> {
        self.hosts.iter().position(|h| h.procs.contains_key(&pid))
    }

    /// Create a TCP listener owned by a process.
    pub fn app_tcp_listen(&mut self, host: usize, pid: Pid, addr: SockAddr) -> Fd {
        let sid = self.hosts[host]
            .stack
            .tcp_listen(addr)
            .expect("listen address free");
        self.attach_fd(host, pid, sid)
    }

    /// Bind a UDP socket owned by a process.
    pub fn app_udp_bind(&mut self, host: usize, pid: Pid, addr: SockAddr) -> Fd {
        let sid = self.hosts[host]
            .stack
            .udp_bind(addr)
            .expect("bind address free");
        self.attach_fd(host, pid, sid)
    }

    /// Bind an ephemeral UDP socket owned by a process, optionally with a
    /// default peer.
    pub fn app_udp_socket(&mut self, host: usize, pid: Pid, peer: Option<SockAddr>) -> Fd {
        let sid = self.hosts[host].stack.udp_bind_ephemeral();
        if let Some(p) = peer {
            self.hosts[host].stack.udp_connect(sid, p);
        }
        self.attach_fd(host, pid, sid)
    }

    /// Actively open a TCP connection owned by a process. `via_local`
    /// selects the in-cluster interface (zone server → database); otherwise
    /// the public/WAN interface is used (clients → cluster).
    pub fn app_tcp_connect(
        &mut self,
        host: usize,
        pid: Pid,
        remote: SockAddr,
        via_local: bool,
    ) -> Fd {
        let now = self.now();
        let (sid, fx) = if via_local {
            self.hosts[host].stack.tcp_connect_local(remote, now)
        } else {
            self.hosts[host].stack.tcp_connect_public(remote, now)
        };
        let fd = self.attach_fd(host, pid, sid);
        self.apply_effects(host, fx);
        fd
    }

    fn attach_fd(&mut self, host: usize, pid: Pid, sid: SockId) -> Fd {
        let h = &mut self.hosts[host];
        let entry = h.procs.get_mut(&pid).expect("process exists on host");
        let fd = entry.process.fds.insert(FdEntry::Socket(sid));
        h.register_sock(sid, pid, fd);
        fd
    }

    // ------------------------------------------------------------------
    // interest management (AOI)
    // ------------------------------------------------------------------

    /// Declare `pid` (running on `host`) the zone server for `zone`,
    /// reachable on inbound `port`. Maps the port to the zone in the
    /// router's interest table and subscribes the host's node. A zone has
    /// exactly one serving process; re-registering a zone under a second
    /// pid is a caller bug.
    pub fn register_zone_interest(&mut self, host: usize, pid: Pid, port: Port, zone: ZoneId) {
        assert!(
            self.hosts[host].procs.contains_key(&pid),
            "register_zone_interest: {pid:?} not on host {host}"
        );
        let prev = self.zone_owner.insert(zone, pid);
        assert!(
            prev.is_none() || prev == Some(pid),
            "zone {zone} already owned by {prev:?}"
        );
        self.zone_interest
            .entry(pid)
            .or_default()
            .push((port, zone));
        let node = self.hosts[host].stack.node;
        let interest = self.router.interest_mut();
        interest.map_port(port, zone);
        interest.subscribe(zone, node);
    }

    /// The zones a process serves (empty slice for non-zoned pids).
    pub fn zones_of(&self, pid: Pid) -> Vec<ZoneId> {
        self.zone_interest
            .get(&pid)
            .map(|pairs| pairs.iter().map(|&(_, z)| z).collect())
            .unwrap_or_default()
    }

    /// Current subscriber nodes of a zone (snapshot, for tests).
    pub fn zone_subscribers(&self, zone: ZoneId) -> Vec<NodeId> {
        self.router
            .interest()
            .subscribers(zone)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Drop a pid's zone registrations: unsubscribe its host, unmap the
    /// ports and forget the ownership rows. Called when the process exits
    /// or its image is lost for good.
    fn forget_zone_interest(&mut self, pid: Pid) {
        let Some(pairs) = self.zone_interest.remove(&pid) else {
            return;
        };
        for (port, zone) in pairs {
            let interest = self.router.interest_mut();
            interest.unmap_port(port);
            // Clear every subscriber, not just the owner's host: the pid
            // may die mid-migration with both ends subscribed.
            if let Some(subs) = interest.subscribers(zone) {
                let subs: Vec<NodeId> = subs.iter().copied().collect();
                for node in subs {
                    self.router.interest_mut().unsubscribe(zone, node);
                }
            }
            self.zone_owner.remove(&zone);
        }
    }

    /// Outbound frames dropped as benign departed-client races (never
    /// counted in `route_errors`).
    pub fn benign_route_races(&self) -> u64 {
        self.benign_route_races
    }

    // ------------------------------------------------------------------
    // migration
    // ------------------------------------------------------------------

    /// Begin migrating `pid` to the server node at `dst_host`. Returns the
    /// migration id, or `None` if the pid is unknown or already migrating.
    pub fn begin_migration(
        &mut self,
        pid: Pid,
        dst_host: usize,
        strategy: Strategy,
    ) -> Option<MigId> {
        let src_host = self.host_of(pid)?;
        if src_host == dst_host {
            return None;
        }
        if !self.hosts[src_host].alive || !self.hosts[dst_host].alive {
            return None;
        }
        // One migration per process at a time; the pid index makes the
        // duplicate check O(1) regardless of how many tasks are in flight.
        if !self.migrating.insert(pid) {
            return None;
        }
        // Admission control: the ledger bounds cluster/per-node concurrency
        // and the in-flight image bytes a destination must hold. Budgets
        // against the full address space — the worst case the receiver pays.
        let mig = self.next_mig;
        let image_bytes = self.hosts[src_host]
            .procs
            .get(&pid)
            .map(|e| e.process.addr_space.total_pages() as u64 * PAGE_SIZE)
            .unwrap_or(0);
        let src_node = self.hosts[src_host].stack.node;
        let dst_node = self.hosts[dst_host].stack.node;
        if self
            .admission
            .admit(mig, src_node, dst_node, image_bytes)
            .is_err()
        {
            self.migrating.remove(&pid);
            return None;
        }
        let mut engine = MigrationEngine::new(pid, src_node, dst_node, strategy, self.cfg.cost);
        engine.guard = self.cfg.overload_guard;
        // Zone subscriptions travel with the sockets: the engine emits
        // Subscribe/Unsubscribe effects at the same phase boundaries that
        // move the capture hooks, so the interest table stays consistent on
        // every abort row. Empty for non-zoned pids — zero new effects.
        if let Some(pairs) = self.zone_interest.get(&pid) {
            engine.zones = pairs.iter().map(|&(_, z)| z).collect();
        }
        self.next_mig += 1;
        self.migrations.insert(
            mig,
            MigTask {
                engine,
                src: src_host,
                dst: dst_host,
                pid,
                recorder: TraceRecorder::new(pid, strategy, self.now()),
                stall_until: None,
            },
        );
        self.sched.schedule_after(0, Event::MigrationStep { mig });
        Some(mig)
    }

    /// Number of migrations in progress.
    pub fn active_migrations(&self) -> usize {
        self.migrations.len()
    }

    /// The admission ledger (budgets, occupancy, denial counters).
    pub fn admission(&self) -> &AdmissionControl {
        &self.admission
    }

    /// A consistent snapshot of the resources the overload machinery
    /// budgets, for invariant checks in tests.
    pub fn resource_usage(&self) -> ResourceUsage {
        let mut queued_capture_packets = 0u64;
        let mut queued_capture_bytes = 0u64;
        for h in &self.hosts {
            if h.alive {
                queued_capture_packets += h.stack.capture.total_queued_packets() as u64;
                queued_capture_bytes += h.stack.capture.total_queued_bytes() as u64;
            }
        }
        ResourceUsage {
            active_migrations: self.migrations.len(),
            inflight_image_bytes: self.admission.inflight_by_destination().values().sum(),
            queued_capture_packets,
            queued_capture_bytes,
            surged_hosts: self.surge.len(),
        }
    }

    /// Gracefully drain a server node ("machines may join and leave at any
    /// time", §IV): live-migrate every process away, spreading them over the
    /// least-loaded other server nodes. Returns the migration ids; once they
    /// complete the node holds nothing and can be detached.
    pub fn drain_node(&mut self, host: usize, strategy: Strategy) -> Vec<MigId> {
        assert_eq!(
            self.hosts[host].kind,
            HostKind::Server,
            "only server nodes drain"
        );
        let pids = self.hosts[host].pids();
        let mut migs = Vec::new();
        // Loads only change once migrations complete, so weight each
        // candidate by what has already been planned onto it.
        let mut planned: BTreeMap<usize, usize> = BTreeMap::new();
        for pid in pids {
            let share = self.hosts[host].procs[&pid].process.cpu_share.max(1.0);
            let dest = self
                .hosts
                .iter()
                .enumerate()
                .filter(|(i, h)| *i != host && h.kind == HostKind::Server)
                .min_by(|(i, a), (j, b)| {
                    let la = a.cpu_pct() + share * *planned.get(i).unwrap_or(&0) as f64;
                    let lb = b.cpu_pct() + share * *planned.get(j).unwrap_or(&0) as f64;
                    la.partial_cmp(&lb).expect("loads are finite")
                })
                .map(|(i, _)| i);
            let Some(dest) = dest else {
                break; // nowhere to go
            };
            if let Some(m) = self.begin_migration(pid, dest, strategy) {
                *planned.entry(dest).or_insert(0) += 1;
                migs.push(m);
            }
        }
        migs
    }

    /// Detach an empty server node from the fabric (it stops receiving
    /// broadcast copies and leaves the switch). Migrations still targeting
    /// the node are aborted first (their processes return to their
    /// sources). Panics if it still hosts processes — drain first.
    pub fn detach_node(&mut self, host: usize) {
        let mut migs: Vec<MigId> = self
            .migrations
            .iter()
            .filter(|(_, t)| t.src == host || t.dst == host)
            .map(|(m, _)| *m)
            .collect();
        migs.sort_unstable();
        for m in migs {
            self.abort_migration(m, AbortReason::NodeDetached);
        }
        assert!(
            self.hosts[host].procs.is_empty(),
            "detach of a non-empty node; drain_node first"
        );
        let node = self.hosts[host].stack.node;
        self.router.detach_node(node);
        self.switch.detach(node);
        self.hosts[host].conductor = None;
    }

    /// A client host leaves gracefully (the player logs off): its
    /// processes exit, its WAN links are released, and the host goes dark.
    /// Frames already scheduled toward it — outbound unicasts in flight,
    /// or its membership in an already-batched broadcast — die silently:
    /// membership was snapshotted when the frame was scheduled, and a
    /// departure racing those deliveries is expected churn, counted in
    /// [`benign_route_races`](World::benign_route_races), never in the
    /// route-error tally.
    pub fn detach_client_host(&mut self, host: usize) {
        assert_eq!(self.hosts[host].kind, HostKind::Client, "not a client host");
        if !self.hosts[host].alive {
            return;
        }
        let now = self.now();
        let pids: Vec<Pid> = self.hosts[host].procs.keys().copied().collect();
        if let Some(m) = &mut self.monitor {
            for &pid in &pids {
                m.on_exit(now, pid, host);
            }
        }
        self.hosts[host].procs.clear();
        self.hosts[host].sock_owner.clear();
        self.hosts[host].alive = false;
        self.departed_clients.insert(host);
        let node = self.hosts[host].stack.node;
        self.router.detach_client(node);
    }

    // ------------------------------------------------------------------
    // fault tolerance (checkpoint / crash / cold restart) — the other use
    // case the paper's conclusion names for connection-preserving C/R
    // ------------------------------------------------------------------

    /// Take a full (non-live) checkpoint of a process. The image contains
    /// memory, files, threads and signal handlers — no sockets (BLCR
    /// semantics); contrast with live migration, which carries them.
    pub fn checkpoint_process(&self, pid: Pid) -> Option<dvelm_ckpt::CheckpointImage> {
        let h = self.host_of(pid)?;
        Some(dvelm_ckpt::full_checkpoint(
            &self.hosts[h].procs[&pid].process,
        ))
    }

    /// Crash a process: the process and all its sockets vanish from its
    /// host (peers see silence, then retransmission timeouts). A migration
    /// in flight for the pid is aborted first, so engine-held state
    /// (captures, in-flight sockets, peer rules) is cleaned up rather than
    /// leaked.
    pub fn kill_process(&mut self, pid: Pid) -> bool {
        if let Some(mig) = self.migration_of(pid) {
            self.abort_migration(mig, AbortReason::ProcessKilled);
        }
        let Some(h) = self.host_of(pid) else {
            return false;
        };
        if let Some(m) = &mut self.monitor {
            m.on_exit(self.sched.now(), pid, h);
        }
        let entry = self.hosts[h]
            .procs
            .remove(&pid)
            .expect("host_of said it is here");
        let socks: Vec<SockId> = entry.process.fds.sockets().map(|(_, s)| s).collect();
        for s in socks {
            self.hosts[h].stack.release(s);
        }
        self.hosts[h].unindex_proc_sockets(pid);
        // A dead zone server serves nobody: its zones go dark (delivered to
        // no subscriber) until a new process registers them.
        self.forget_zone_interest(pid);
        true
    }

    /// Restart a process from a checkpoint image on `host`, with a fresh
    /// application object. Memory, files and threads are restored; sockets
    /// are *not* (clients must reconnect) — exactly the gap live migration
    /// closes.
    pub fn cold_restart(
        &mut self,
        img: &dvelm_ckpt::CheckpointImage,
        host: usize,
        app: Box<dyn App>,
    ) -> Pid {
        let mut process = dvelm_ckpt::restore_process(img);
        process.resume_all();
        let pid = process.pid;
        self.next_pid = self.next_pid.max(pid.0 + 1);
        let period = app.tick_period_us();
        let gen = self.fresh_tick_gen();
        self.hosts[host].procs.insert(
            pid,
            ProcEntry {
                process,
                app,
                suspended: false,
                tick_period_us: period,
                tick_gen: gen,
            },
        );
        self.sched
            .schedule_after(0, Event::AppTick { host, pid, gen });
        // A cold restart adopts the image's pid: legitimate only if no
        // other live copy exists — exactly what the monitor's adopt hook
        // checks.
        if let Some(m) = &mut self.monitor {
            m.on_adopt(self.sched.now(), pid, host);
        }
        pid
    }

    // ------------------------------------------------------------------
    // fault injection and abort
    // ------------------------------------------------------------------

    /// The in-flight migration of `pid`, if any.
    pub fn migration_of(&self, pid: Pid) -> Option<MigId> {
        self.migrations
            .iter()
            .find(|(_, t)| t.pid == pid)
            .map(|(m, _)| *m)
    }

    /// Whether an in-flight migration is past its detach point (the point
    /// of no free return: an abort now restores from the captured image
    /// instead of resuming the still-hashed source copy). `None` once the
    /// migration finished or if the id is unknown.
    pub fn migration_past_detach(&self, mig: MigId) -> Option<bool> {
        self.migrations.get(&mig).map(|t| t.engine.past_detach())
    }

    /// Whether the migration is resolving residual pages on demand
    /// (post-copy family, destination copy already running). `None` for
    /// unknown/finished ids.
    pub fn migration_in_demand_resolve(&self, mig: MigId) -> Option<bool> {
        self.migrations
            .get(&mig)
            .map(|t| t.engine.in_demand_resolve())
    }

    /// Residual-dependency ledger depth of an in-flight migration: pages
    /// the source still holds authoritatively. `None` for unknown ids.
    pub fn migration_residual_pages(&self, mig: MigId) -> Option<u64> {
        self.migrations.get(&mig).map(|t| t.engine.residual_pages())
    }

    /// Terminal state of a finished migration (`None` while still in
    /// flight or for unknown ids).
    pub fn migration_outcome(&self, mig: MigId) -> Option<MigrationOutcome> {
        self.outcomes.get(&mig).copied()
    }

    /// Schedule every entry of a fault plan as a world event.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        for (at, fault) in plan.into_entries() {
            self.sched.schedule_at(at, Event::Fault { fault });
        }
    }

    /// Apply one fault right now (scheduled faults route here too).
    pub fn inject_fault(&mut self, fault: Fault) {
        let now = self.now();
        match fault {
            Fault::NodeCrash { host } => self.crash_node(host),
            Fault::DownlinkLoss {
                host,
                model,
                for_us,
            } => {
                let node = self.hosts[host].stack.node;
                if self.hosts[host].kind == HostKind::Client {
                    // Clients sit behind the shared WAN access network; the
                    // router models its loss on every client link.
                    self.router.set_client_loss(model);
                } else if let Some(link) = self.router.node_downlink_mut(node) {
                    link.set_loss(model);
                } else if let Some(link) = self.switch.downlink_mut(node) {
                    link.set_loss(model);
                }
                if for_us > 0 && model != LossModel::None {
                    self.sched.schedule_after(
                        for_us,
                        Event::Fault {
                            fault: Fault::DownlinkLoss {
                                host,
                                model: LossModel::None,
                                for_us: 0,
                            },
                        },
                    );
                }
            }
            Fault::TransferStall { pid } => {
                if let Some(mig) = self.migration_of(pid) {
                    self.abort_migration(mig, AbortReason::TransferStalled);
                }
            }
            Fault::FetchStall { pid, for_us } => {
                // Freeze the residual-page stream of an in-flight post-copy
                // migration: steps defer until the stall lifts. Only
                // meaningful once the engine is resolving demand fetches —
                // a ledger that does not exist yet cannot stall.
                if let Some(mig) = self.migration_of(pid) {
                    if let Some(task) = self.migrations.get_mut(&mig) {
                        if task.engine.in_demand_resolve() {
                            task.stall_until = Some(now + for_us);
                        }
                    }
                }
            }
            Fault::CaptureInstallFail { host } => {
                self.hosts[host].stack.capture.arm_enable_failures(1);
            }
            Fault::RestoreFail { host } => {
                self.hosts[host].stack.arm_install_failures(1);
            }
            Fault::CtrlBlackout { host, dir, for_us } => {
                self.ctrl_dark_until.insert(host, (dir, now + for_us));
            }
            Fault::Partition { groups, for_us } => {
                let gen = self.next_partition_gen;
                self.next_partition_gen += 1;
                self.partitions.insert(gen, groups);
                if for_us > 0 {
                    self.sched
                        .schedule_after(for_us, Event::PartitionHeal { gen });
                }
                // In-flight migrations crossing the cut park themselves at
                // their next step; nothing to do here.
            }
            Fault::CtrlLoss { pct, for_us } => {
                self.ctrl_loss = Some((pct, chaos_until(now, for_us)));
            }
            Fault::CtrlDup { pct, for_us } => {
                self.ctrl_dup = Some((pct, chaos_until(now, for_us)));
            }
            Fault::CtrlReorder {
                pct,
                max_extra_us,
                for_us,
            } => {
                self.ctrl_reorder = Some((pct, max_extra_us, chaos_until(now, for_us)));
            }
            Fault::Overload {
                host,
                factor,
                for_us,
            } => {
                if !self.hosts[host].alive {
                    return;
                }
                if factor <= 1 {
                    self.surge.remove(&host);
                    self.surge_gen.remove(&host);
                } else {
                    let gen = self.next_surge_gen;
                    self.next_surge_gen += 1;
                    self.surge.insert(host, factor);
                    self.surge_gen.insert(host, gen);
                    if for_us > 0 {
                        // Self-scheduled restore, like DownlinkLoss — but
                        // generation-tagged, so a newer surge installed
                        // before this one expires is not cut short by the
                        // stale restore.
                        self.sched
                            .schedule_after(for_us, Event::SurgeRestore { host, gen });
                    }
                }
                self.restart_host_ticks(host);
            }
        }
    }

    /// Restart every running process's tick chain on `host` so a changed
    /// surge factor takes effect now rather than after the currently
    /// scheduled tick.
    fn restart_host_ticks(&mut self, host: usize) {
        let pids: Vec<Pid> = self.hosts[host].procs.keys().copied().collect();
        for pid in pids {
            if self.hosts[host]
                .procs
                .get(&pid)
                .is_some_and(|e| !e.suspended)
            {
                self.restart_ticks(host, pid);
            }
        }
    }

    /// A host dies abruptly: every migration touching it aborts with the
    /// phase-appropriate recovery, its processes and conductor vanish, and
    /// it leaves the fabric. Events already queued for it are discarded on
    /// delivery.
    pub fn crash_node(&mut self, host: usize) {
        if !self.hosts[host].alive {
            return;
        }
        // Dead before the aborts run, so the engine sees its stack as gone.
        self.hosts[host].alive = false;
        // Its residents die with it — casualties, not violations.
        if let Some(m) = &mut self.monitor {
            m.on_host_down(host);
        }
        let mut migs: Vec<(MigId, AbortReason)> = self
            .migrations
            .iter()
            .filter(|(_, t)| t.src == host || t.dst == host)
            .map(|(m, t)| {
                let reason = if t.src == host {
                    AbortReason::SourceCrashed
                } else {
                    AbortReason::DestinationCrashed
                };
                (*m, reason)
            })
            .collect();
        migs.sort_unstable_by_key(|(m, _)| *m);
        for (m, reason) in migs {
            self.abort_migration(m, reason);
        }
        // Zone registrations of the casualties die with them; capture
        // entries installed on the dead host can no longer fire pressure.
        let dead_pids: Vec<Pid> = self.hosts[host].procs.keys().copied().collect();
        for pid in dead_pids {
            self.forget_zone_interest(pid);
        }
        self.capture_owner.retain(|(h, _), _| *h != host);
        self.hosts[host].procs.clear();
        self.hosts[host].sock_owner.clear();
        self.hosts[host].conductor = None;
        self.surge.remove(&host);
        self.surge_gen.remove(&host);
        let node = self.hosts[host].stack.node;
        match self.hosts[host].kind {
            HostKind::Server => {
                self.router.detach_node(node);
                self.switch.detach(node);
            }
            HostKind::Database => self.switch.detach(node),
            // Release the client's WAN access links so they stop leaking:
            // frames toward the dead client now surface as route errors at
            // the router instead of serializing onto an unread downlink.
            HostKind::Client => self.router.detach_client(node),
        }
    }

    /// Abort an in-flight migration: the engine emits its compensating
    /// effects (rollback, resume or restore-on-source, see the engine's
    /// module docs) and the terminal [`Effect::Aborted`], which routes
    /// through the same dispatch path as every other effect. Returns false
    /// for unknown/finished ids.
    pub fn abort_migration(&mut self, mig: MigId, reason: AbortReason) -> bool {
        let now = self.now();
        let Some(task) = self.migrations.get_mut(&mig) else {
            return false;
        };
        let (src, dst, pid) = (task.src, task.dst, task.pid);
        // Effect buffers are pooled, not a single slot: dispatching an
        // effect can re-enter this path (abort chains), so each activation
        // takes its own buffer off the freelist.
        let mut buf = EffectBuf::with_storage(self.mig_fx_pool.pop().unwrap_or_default());
        {
            let (lo, hi) = if src < dst { (src, dst) } else { (dst, src) };
            let (left, right) = self.hosts.split_at_mut(hi);
            let (src_host, dst_host) = if src < dst {
                (&mut left[lo], &mut right[0])
            } else {
                (&mut right[0], &mut left[lo])
            };
            let src_stack = src_host.alive.then_some(&mut src_host.stack);
            let dst_stack = dst_host.alive.then_some(&mut dst_host.stack);
            task.engine.abort(
                reason,
                AbortIo {
                    now,
                    src_stack,
                    dst_stack,
                },
                &mut buf,
            );
        }
        let mut effects = buf.take();
        for (at, effect) in &effects {
            task.recorder.observe(*at, effect);
        }
        if let Some(log) = &mut self.effect_log {
            for (at, effect) in &effects {
                log.push(render_effect(mig, *at, effect));
            }
        }
        for (_, effect) in effects.drain(..) {
            self.apply_effect(mig, src, dst, pid, effect);
        }
        if self.mig_fx_pool.len() < FX_POOL_CAP {
            self.mig_fx_pool.push(effects);
        }
        true
    }

    /// Terminal bookkeeping of an abort, driven by [`Effect::Aborted`]
    /// (always the migration's last effect).
    fn finish_abort(&mut self, mig: MigId, src: usize, pid: Pid, aborted: MigrationAborted) {
        let MigrationAborted {
            phase,
            reason,
            recovery,
        } = aborted;
        let task = self
            .migrations
            .remove(&mig)
            .expect("aborting an active migration");
        self.stalled_migs.remove(&mig);
        self.migrating.remove(&pid);
        self.admission.release(mig);
        self.capture_owner.retain(|_, m| *m != mig);
        let dst = task.dst;
        let now = self.now();
        let recovery_tag = Recovery::from(&recovery);
        match recovery {
            // The source copy never stopped (precopy abort) or was resumed
            // via Effect::ResumeApp (which already restarted its ticks).
            AbortRecovery::SourceKeptRunning | AbortRecovery::ResumedOnSource => {}
            AbortRecovery::RestoredOnSource(process) => {
                // With fencing off, a restore-phase abort across an active
                // partition is exactly the split-brain window: the
                // destination holds the complete image, cannot hear the
                // cancel, and commits its copy while the source restores
                // its own. Model the second copy so the invariant monitor
                // can catch what the epoch fence would have prevented.
                // `PhaseId::FreezeDetach` is the abort-report id of an
                // internal post-detach (restore-phase) abort — the point
                // where the destination holds the complete image.
                // `PhaseId::DemandResolve` is its post-copy sibling: the
                // destination copy is *running* (on a partially-fetched
                // image) and cannot hear the cancel either.
                if !self.cfg.fence_enabled
                    && (phase == PhaseId::FreezeDetach || phase == PhaseId::DemandResolve)
                    && self.hosts[dst].alive
                    && self.partitioned(src, dst)
                {
                    let gen = self.fresh_tick_gen();
                    self.hosts[dst].procs.insert(
                        pid,
                        ProcEntry {
                            process: process.clone(),
                            app: Box::new(OrphanApp),
                            suspended: false,
                            tick_period_us: 0,
                            tick_gen: gen,
                        },
                    );
                    if let Some(m) = &mut self.monitor {
                        m.on_adopt(now, pid, dst);
                        // The orphan survived with residual pages still
                        // owed: nobody will ever serve its demand fetches.
                        if phase == PhaseId::DemandResolve {
                            m.on_residual_leak(now, pid, task.engine.residual_pages());
                        }
                    }
                    // The source copy about to be restored below is stale
                    // the moment the orphan keeps running: its first app
                    // write is the StaleSourceWrite hazard.
                    if phase == PhaseId::DemandResolve {
                        self.stale_source_pids.insert(pid, src);
                    }
                }
                // A demand-resolve abort loses the connections: socket
                // state lived on the destination since switch-over and is
                // not reinstalled (DESIGN.md §12). Collect the descriptors
                // the app still believes open so it can be told below —
                // exactly as a peer RST would — before it writes to them.
                let mut stale_fds: Vec<_> = if phase == PhaseId::DemandResolve {
                    self.hosts[src]
                        .procs
                        .get(&pid)
                        .map(|e| e.process.fds.sockets().map(|(fd, _)| fd).collect())
                        .unwrap_or_default()
                } else {
                    Vec::new()
                };
                // The rebuilt process: its fd table names the sockets the
                // engine reinstalled on the source stack.
                if let Some(entry) = self.hosts[src].procs.get_mut(&pid) {
                    entry.process = process;
                    entry.suspended = false;
                    stale_fds.retain(|fd| entry.process.fds.sockets().all(|(f, _)| f != *fd));
                }
                self.hosts[src].unindex_proc_sockets(pid);
                self.hosts[src].reindex_proc_sockets(pid);
                self.restart_ticks(src, pid);
                self.drain_proc_sockets(src, pid);
                for fd in stale_fds {
                    self.with_app(src, pid, |app, ctx| app.on_conn_closed(ctx, fd));
                }
            }
            AbortRecovery::ImageOnly(process) => {
                if let Some(m) = &mut self.monitor {
                    m.on_lost(now, pid, self.hosts[src].alive);
                }
                self.lost_images.push(process);
                // No live copy remains: the pid's zones go dark rather
                // than point at a host that no longer runs it.
                self.forget_zone_interest(pid);
            }
            AbortRecovery::Lost => {
                if let Some(m) = &mut self.monitor {
                    m.on_lost(now, pid, self.hosts[src].alive);
                }
                self.forget_zone_interest(pid);
            }
        }
        self.reports.push(task.recorder.into_report());
        self.outcomes.insert(
            mig,
            MigrationOutcome::Aborted {
                phase,
                reason,
                recovery: recovery_tag,
            },
        );
        // The sender-side conductor learns of the failure (blacklists the
        // destination, schedules the retry with backoff).
        if self.hosts[src].alive {
            if let Some(c) = self.hosts[src].conductor.as_mut() {
                let effects = c.on_migration_finished(now, false);
                self.apply_lb_effects(src, effects);
            }
        }
    }

    // ------------------------------------------------------------------
    // running
    // ------------------------------------------------------------------

    /// Run the event loop until `deadline` (events at the deadline are
    /// processed).
    ///
    /// With `cfg.threads > 1` the loop batches runs of packet-reception
    /// events into parallel rx rounds (`run_rx_round`); every other event —
    /// and every event at `threads == 1` — takes the classic sequential
    /// dispatch. Output is byte-identical either way.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((key, ev)) = self.sched.peek() {
            if key.at > deadline {
                break;
            }
            if ev.is_rx() && self.rx_rounds_active() {
                self.run_rx_round();
            } else {
                let (_, event) = self.sched.pop_next().expect("peeked event exists");
                self.dispatch(event);
            }
        }
    }

    /// Whether rx events may be batched into parallel rounds right now.
    ///
    /// The only way applying one reception's effects can synchronously
    /// mutate *another* host's stack is a capture-queue hard-fail aborting a
    /// migration (source and destination stacks both change). That path
    /// requires a bounded capture budget *and* a migration in flight, so
    /// when either is absent the receptions of one instant are pairwise
    /// independent and safe to stack-process in parallel. The predicate
    /// depends only on simulation state, never on the thread count, so the
    /// chosen path — and therefore the output — is identical at any
    /// parallelism.
    fn rx_rounds_active(&self) -> bool {
        self.pool.is_some()
            && (self.cfg.capture_budget.is_unlimited() || self.migrations.is_empty())
    }

    /// Execute one parallel rx round: the maximal run of consecutive (in
    /// dispatch order) same-instant packet receptions addressed to pairwise
    /// distinct hosts.
    ///
    /// Phase 1 runs each delivery's `HostStack::on_rx` on the worker pool —
    /// receptions only touch the receiving stack, so distinct hosts never
    /// race. Phase 2 is the barrier: effects are applied strictly in the
    /// popped dispatch order, which is where all shared world state (router,
    /// switch, RNG, scheduler, apps) is touched — sequentially, exactly as
    /// the classic loop would have.
    ///
    /// Restricting a round to one instant is what keeps the batch closed:
    /// every frame an apply transmits arrives at least one link propagation
    /// latency later (`min_link_latency_us`, asserted positive), and any
    /// event an apply schedules for the current instant draws a higher
    /// sequence number than every round member, so nothing that phase 2
    /// creates could have dispatched before anything phase 1 consumed.
    fn run_rx_round(&mut self) {
        if self.min_link_latency_us.is_none() {
            let lat = self
                .router
                .min_latency_us()
                .min(self.switch.min_latency_us());
            assert!(
                lat > 0,
                "parallel rx rounds need positive link latency for conservative lookahead"
            );
            self.min_link_latency_us = Some(lat);
        }
        let Some(t0) = self.sched.peek_time() else {
            return;
        };
        self.round_gen += 1;
        let gen = self.round_gen;
        if self.host_mark.len() < self.hosts.len() {
            self.host_mark.resize(self.hosts.len(), 0);
        }
        // Pass A: pop the round members. Popping does not advance the clock
        // (`pop_for_round`); the apply phase advances it once, so relative
        // scheduling during applies sees the same `now` as the classic loop.
        debug_assert!(self.round_events.is_empty());
        while let Some((key, ev)) = self.sched.peek() {
            if key.at != t0 || !ev.is_rx() {
                break;
            }
            let disjoint = if let Event::PacketArrival { host, .. } = ev {
                self.host_mark[*host] != gen
            } else if let Event::BroadcastArrival { hosts, .. } = ev {
                hosts.iter().all(|&h| self.host_mark[h] != gen)
            } else {
                false // unreachable: is_rx() held above
            };
            if !disjoint {
                break;
            }
            let Some((_, ev)) = self.sched.pop_for_round() else {
                break;
            };
            if let Event::PacketArrival { host, .. } = &ev {
                self.host_mark[*host] = gen;
            } else if let Event::BroadcastArrival { hosts, .. } = &ev {
                for &h in hosts {
                    self.host_mark[h] = gen;
                }
            }
            self.round_events.push(ev);
        }
        self.sched.advance_to(t0);
        // Pass B: one task per live delivery. Segment pointers into
        // `round_events` are stable from here on (no more pushes).
        let mut tasks = std::mem::take(&mut self.round_tasks);
        debug_assert!(tasks.is_empty());
        for ev in &self.round_events {
            if let Event::PacketArrival { host, seg } = ev {
                if self.hosts[*host].alive {
                    tasks.push(RxTask {
                        host: *host,
                        stack: &mut self.hosts[*host].stack,
                        at: t0,
                        seg,
                        out: Mailbox::new(),
                    });
                }
            } else if let Event::BroadcastArrival { hosts, seg } = ev {
                for &h in hosts {
                    // A host may have crashed after the frame was scheduled:
                    // the frame dies at its doorstep, as in the classic arm.
                    if self.hosts[h].alive {
                        tasks.push(RxTask {
                            host: h,
                            stack: &mut self.hosts[h].stack,
                            at: t0,
                            seg,
                            out: Mailbox::new(),
                        });
                    }
                }
            }
        }
        // Phase 1 (parallel): run every reception against its own stack.
        if let Some(pool) = &self.pool {
            pool.run_tasks(&mut tasks, |t| {
                // SAFETY: see `RxTask`'s `Send` justification — stacks are
                // pairwise disjoint and segments immutable for the round.
                let stack = unsafe { &mut *t.stack };
                let seg = unsafe { (*t.seg).clone() };
                t.out.fill(stack.on_rx(seg, t.at));
            });
        }
        // Phase 2 (barrier): apply effects in dispatch order — the only
        // place shared world state is touched.
        for t in &mut tasks {
            debug_assert!(
                self.hosts[t.host].alive,
                "no rx apply may kill a host mid-round (gated by rx_rounds_active)"
            );
            let host = t.host;
            let fx = t.out.take();
            self.apply_effects(host, fx);
            self.drain_capture_pressure(host);
        }
        tasks.clear();
        self.round_tasks = tasks;
        for ev in self.round_events.drain(..) {
            if let Event::BroadcastArrival { hosts, .. } = ev {
                if self.bcast_pool.len() < FX_POOL_CAP {
                    self.bcast_pool.push(hosts);
                }
            }
        }
    }

    /// Run for `us` microseconds of simulated time.
    pub fn run_for(&mut self, us: u64) {
        let deadline = self.now() + us;
        self.run_until(deadline);
    }

    fn dispatch(&mut self, event: Event) {
        // Events addressed to a crashed host die at its doorstep.
        let target_host = match &event {
            // Broadcast batches carry several hosts; liveness is checked
            // per host at delivery.
            Event::BroadcastArrival { .. } => None,
            Event::PacketArrival { host, .. }
            | Event::SockTimer { host, .. }
            | Event::AppTick { host, .. }
            | Event::AppRead { host, .. }
            | Event::ConductorTick { host }
            | Event::LbMessage { host, .. }
            | Event::InstallXlate { host, .. }
            | Event::RemoveXlate { host, .. } => Some(*host),
            Event::MigrationStep { .. }
            | Event::Fault { .. }
            | Event::SurgeRestore { .. }
            | Event::PartitionHeal { .. }
            | Event::XlateGc => None,
        };
        if let Some(h) = target_host {
            if !self.hosts[h].alive {
                return;
            }
        }
        match event {
            Event::PacketArrival { host, seg } => {
                let now = self.now();
                let fx = self.hosts[host].stack.on_rx(seg, now);
                self.apply_effects(host, fx);
                self.drain_capture_pressure(host);
            }
            Event::BroadcastArrival { hosts, seg } => {
                let now = self.now();
                for &host in &hosts {
                    // A host may have crashed after the frame was scheduled
                    // (or mid-batch, through an effect of an earlier
                    // delivery): the frame dies at its doorstep.
                    if !self.hosts[host].alive {
                        continue;
                    }
                    let fx = self.hosts[host].stack.on_rx(seg.clone(), now);
                    self.apply_effects(host, fx);
                    self.drain_capture_pressure(host);
                }
                if self.bcast_pool.len() < FX_POOL_CAP {
                    self.bcast_pool.push(hosts);
                }
            }
            Event::SockTimer { host, sock, gen } => {
                let now = self.now();
                let fx = self.hosts[host].stack.on_timer(sock, gen, now);
                self.apply_effects(host, fx);
            }
            Event::AppTick { host, pid, gen } => self.on_app_tick(host, pid, gen),
            Event::AppRead { host, pid, sock } => self.on_app_read(host, pid, sock),
            Event::ConductorTick { host } => self.on_conductor_tick(host),
            Event::LbMessage { host, from, msg } => self.on_lb_message(host, from, msg),
            Event::MigrationStep { mig } => self.on_migration_step(mig),
            Event::InstallXlate { host, rule } => {
                let now = self.now();
                self.hosts[host].stack.xlate.install_at(rule, now);
            }
            Event::RemoveXlate { host, rule } => {
                self.hosts[host].stack.xlate.remove(
                    rule.peer_local,
                    rule.old_remote_ip,
                    rule.remote_port,
                );
            }
            Event::Fault { fault } => self.inject_fault(fault),
            Event::SurgeRestore { host, gen } => {
                if self.surge_gen.get(&host) != Some(&gen) {
                    return; // a newer surge superseded this restore
                }
                self.surge.remove(&host);
                self.surge_gen.remove(&host);
                if self.hosts[host].alive {
                    self.restart_host_ticks(host);
                }
            }
            Event::PartitionHeal { gen } => {
                if self.partitions.remove(&gen).is_none() {
                    return; // already healed (manual heal raced the timer)
                }
                // Wake the parked migrations whose path is whole again;
                // ones an overlapping partition still cuts stay parked.
                let stalled: Vec<MigId> = self.stalled_migs.iter().copied().collect();
                for mig in stalled {
                    let Some(task) = self.migrations.get(&mig) else {
                        self.stalled_migs.remove(&mig);
                        continue;
                    };
                    if !self.partitioned(task.src, task.dst) {
                        self.stalled_migs.remove(&mig);
                        self.sched.schedule_after(0, Event::MigrationStep { mig });
                    }
                }
            }
            Event::XlateGc => {
                let Some(ttl) = self.cfg.xlate_gc_ttl_us else {
                    return;
                };
                let now = self.now();
                for h in &mut self.hosts {
                    if h.alive {
                        h.stack.xlate.gc(now, ttl);
                    }
                }
                self.sched.schedule_after(ttl.max(1), Event::XlateGc);
            }
        }
    }

    /// Turn capture-queue pressure recorded by `host`'s stack into
    /// [`Effect::QueuePressure`] on the migration whose destination this
    /// host is, and abort it (reason [`AbortReason::Overloaded`]) when the
    /// hard-fail shed policy refused a TCP segment whose state dedup could
    /// not have recovered.
    fn drain_capture_pressure(&mut self, host: usize) {
        let events = self.hosts[host].stack.capture.take_pressure_events();
        if events.is_empty() {
            return;
        }
        let now = self.now();
        for ev in events {
            // The owning migration is the one that *installed* this event's
            // capture entry on the destination stack, per the
            // `capture_owner` index maintained from InstallCapture /
            // RemoveCapture effects. Two concurrent migrations into one
            // host can carry the same capture key (`CaptureTable::enable`
            // is idempotent, so they silently share one entry); scanning
            // for any engine whose key set contains the key picked
            // whichever sorted first and could charge — and HardFail-abort
            // — the wrong sibling.
            let owner = self.capture_owner.get(&(host, ev.key)).copied();
            // No engine claims the key (it was already drained by an abort
            // in this same batch): record the pressure on the earliest
            // migration into this host for observability, but never abort
            // a migration that does not own the queue.
            let mig = owner.or_else(|| {
                self.migrations
                    .iter()
                    .filter(|(_, t)| t.dst == host)
                    .map(|(m, _)| *m)
                    .min()
            });
            let Some(mig) = mig else {
                continue; // hook outlived its migration; nothing to charge
            };
            let effect = Effect::QueuePressure {
                key: ev.key,
                queued_packets: ev.queued_packets,
                queued_bytes: ev.queued_bytes,
                shed_packets: ev.shed_packets,
            };
            if let Some(task) = self.migrations.get_mut(&mig) {
                task.recorder.observe(now, &effect);
            }
            if let Some(log) = &mut self.effect_log {
                log.push(render_effect(mig, now, &effect));
            }
            if ev.kind == PressureKind::HardFail && owner == Some(mig) {
                self.abort_migration(mig, AbortReason::Overloaded);
            }
        }
    }

    // ------------------------------------------------------------------
    // application callbacks
    // ------------------------------------------------------------------

    fn with_app<R>(
        &mut self,
        host: usize,
        pid: Pid,
        f: impl FnOnce(&mut dyn App, &mut AppCtx<'_>) -> R,
    ) -> Option<R> {
        let now = self.now();
        // App callbacks run once per tick per process — the stack-effect
        // buffer comes from a freelist (callbacks can nest through effect
        // dispatch, so a single reusable slot would not be re-entrant).
        let mut effects = self.stack_fx_pool.pop().unwrap_or_default();
        let h = &mut self.hosts[host];
        let r = match h.procs.get_mut(&pid) {
            Some(entry) if !entry.suspended => {
                let mut ctx = AppCtx {
                    now,
                    pid,
                    rng: &mut self.rng,
                    proc: &mut entry.process,
                    stack: &mut h.stack,
                    effects: &mut effects,
                };
                Some(f(entry.app.as_mut(), &mut ctx))
            }
            _ => None,
        };
        if r.is_some() {
            self.apply_effects(host, effects);
        } else if self.stack_fx_pool.len() < FX_POOL_CAP {
            self.stack_fx_pool.push(effects);
        }
        r
    }

    fn on_app_tick(&mut self, host: usize, pid: Pid, gen: u64) {
        let Some(entry) = self.hosts[host].procs.get(&pid) else {
            return; // process moved away or exited; its new host rescheduled
        };
        if entry.tick_gen != gen {
            return; // stale chain: the process was resumed/restarted since
        }
        if entry.suspended {
            return; // frozen: the tick chain resumes after restore
        }
        // A surged host ([`Fault::Overload`]) ticks `factor`× faster: the
        // same app logic runs more often, multiplying send and dirty rates.
        let factor = self.surge.get(&host).copied().unwrap_or(1).max(1) as u64;
        let period = (entry.tick_period_us / factor).max(1);
        // The stale-source hazard: this copy was restored by an unfenced
        // post-copy rollback while the destination orphan kept running.
        // Its first application write lands outside the (dead) ledger —
        // recorded once, then the pid ticks on as an ordinary split brain
        // for the monitor sweep to track.
        if self.stale_source_pids.get(&pid) == Some(&host) {
            self.stale_source_pids.remove(&pid);
            let now = self.now();
            if let Some(m) = &mut self.monitor {
                m.on_stale_source_write(now, pid);
            }
        }
        self.with_app(host, pid, |app, ctx| app.on_tick(ctx));
        self.sched
            .schedule_after(period, Event::AppTick { host, pid, gen });
    }

    fn on_app_read(&mut self, host: usize, pid: Pid, sock: SockId) {
        // The socket may have moved or closed since the event was scheduled.
        let Some(&(owner_pid, fd)) = self.hosts[host].sock_owner.get(&sock) else {
            return;
        };
        if owner_pid != pid {
            return;
        }
        let now = self.now();
        let is_tcp = match self.hosts[host].stack.sock(sock) {
            Some(s) => s.is_tcp(),
            None => return,
        };
        if is_tcp {
            let data = self.hosts[host].stack.read_tcp(sock, now);
            if !data.is_empty() {
                // §V-C fidelity: while the application processes the data it
                // holds the socket lock, so segments arriving meanwhile park
                // on the backlog and are processed at unlock.
                self.hosts[host].stack.set_user_locked(sock, true, now);
                self.with_app(host, pid, |app, ctx| app.on_tcp_data(ctx, fd, &data));
                let fx = self.hosts[host].stack.set_user_locked(sock, false, now);
                self.apply_effects(host, fx);
            }
        } else {
            let dgrams = self.hosts[host].stack.read_udp(sock);
            if !dgrams.is_empty() {
                self.with_app(host, pid, |app, ctx| app.on_udp_data(ctx, fd, &dgrams));
            }
        }
    }

    // ------------------------------------------------------------------
    // conductor wiring
    // ------------------------------------------------------------------

    /// Latest smoothed load indicator for a host (raw CPU if no sample yet).
    fn local_load(&self, host: usize, now: SimTime) -> LoadInfo {
        let h = &self.hosts[host];
        let cpu = h.load_monitor.current().unwrap_or_else(|| h.cpu_pct());
        let zones = self.router.interest().node_subscriptions(h.stack.node);
        LoadInfo::new(h.stack.node, cpu, h.procs.len() as u32, now).with_zones(zones)
    }

    fn on_conductor_tick(&mut self, host: usize) {
        let now = self.now();
        if self.hosts[host].conductor.is_none() {
            return;
        }
        // Sample the atop-style monitor at every tick.
        let raw = self.hosts[host].cpu_pct();
        self.hosts[host].load_monitor.sample(raw);
        let local = self.local_load(host, now);
        let procs = self.hosts[host].proc_loads();
        let effects = self.hosts[host]
            .conductor
            .as_mut()
            .expect("checked above")
            .on_tick(now, local, &procs);
        self.apply_lb_effects(host, effects);
        self.sched
            .schedule_after(self.cfg.conductor_tick_us, Event::ConductorTick { host });
    }

    fn on_lb_message(&mut self, host: usize, from: NodeId, msg: LbMsg) {
        let now = self.now();
        if self.hosts[host].conductor.is_none() {
            return;
        }
        // An inbound-blocking control blackout (Fault::CtrlBlackout)
        // swallows the message at the receiver's door.
        if self
            .ctrl_dark_until
            .get(&host)
            .is_some_and(|&(dir, u)| now < u && dir.blocks_inbound())
        {
            return;
        }
        // A partition between sender and receiver drops it on the wire.
        // The check runs at delivery, so a frame in flight when the
        // partition lands is cut too, and one sent just before a heal only
        // arrives if the cut is gone by then.
        if self
            .host_by_node(from)
            .is_some_and(|f| self.partitioned(f, host))
        {
            return;
        }
        let local = self.local_load(host, now);
        let effects = self.hosts[host]
            .conductor
            .as_mut()
            .expect("checked above")
            .on_msg(now, from, msg, local);
        self.apply_lb_effects(host, effects);
    }

    fn apply_lb_effects(&mut self, host: usize, effects: Vec<LbEffect>) {
        let now = self.now();
        let node = self.hosts[host].stack.node;
        // An outbound-blocking control blackout swallows this conductor's
        // own sends at the source (its daemon-local effects still run).
        let dark_out = self
            .ctrl_dark_until
            .get(&host)
            .is_some_and(|&(dir, u)| now < u && dir.blocks_outbound());
        for action in effects {
            match action {
                LbEffect::Broadcast(msg) => {
                    if dark_out {
                        continue;
                    }
                    let arrivals =
                        self.switch
                            .broadcast(now, node, msg.wire_bytes(), &mut self.rng);
                    for (dest, at) in arrivals {
                        if let Some(h) = self.host_by_node(dest) {
                            if self.hosts[h].conductor.is_some() {
                                self.schedule_lb_message(at, h, node, msg);
                            }
                        }
                    }
                }
                LbEffect::Send(dest, msg) => {
                    if dark_out {
                        continue;
                    }
                    // The destination may have crashed or left (e.g. MigDone
                    // toward a dead receiver): the frame goes dark.
                    if !self.switch.is_attached(dest) {
                        continue;
                    }
                    if let Some(at) =
                        self.switch
                            .unicast(now, node, dest, msg.wire_bytes(), &mut self.rng)
                    {
                        if let Some(h) = self.host_by_node(dest) {
                            self.schedule_lb_message(at, h, node, msg);
                        }
                    }
                }
                LbEffect::StartMigration {
                    pid,
                    dest,
                    prefer,
                    epoch,
                } => {
                    let Some(dst_host) = self.host_by_node(dest) else {
                        continue;
                    };
                    // Map the conductor's preference onto the configured
                    // strategy, never exceeding it: retries degrade toward
                    // per-socket iteration. The residual (post-copy) family
                    // is reachable only while the preference itself asks
                    // for it — `Incremental` and below clamp a residual
                    // ceiling down to `IncrementalCollective`, so a retry
                    // after a post-copy failure can never re-enter
                    // demand-resolve against a suspect destination.
                    let ceiling = self.cfg.strategy;
                    let strategy = match prefer {
                        StrategyPreference::PostCopy | StrategyPreference::Hybrid => ceiling,
                        StrategyPreference::Incremental if ceiling.has_demand_resolve() => {
                            Strategy::IncrementalCollective
                        }
                        StrategyPreference::Incremental => ceiling,
                        StrategyPreference::Collective => {
                            if ceiling == Strategy::Iterative {
                                Strategy::Iterative
                            } else {
                                Strategy::Collective
                            }
                        }
                        StrategyPreference::Iterative => Strategy::Iterative,
                    };
                    match self.begin_migration(pid, dst_host, strategy) {
                        Some(mig) => {
                            // Conductor-initiated migrations carry the
                            // negotiated epoch: the destination's fenced
                            // restore checks it against the live lease.
                            self.migrations
                                .get_mut(&mig)
                                .expect("just created")
                                .engine
                                .epoch = epoch;
                            if let Some(m) = &mut self.monitor {
                                m.on_epoch(now, pid, epoch);
                            }
                        }
                        None => {
                            // Could not start (pid vanished): release both
                            // sides.
                            if let Some(c) = self.hosts[host].conductor.as_mut() {
                                let effects = c.on_migration_finished(now, false);
                                self.apply_lb_effects(host, effects);
                            }
                        }
                    }
                }
                LbEffect::CancelMigration { pid, epoch } => {
                    // The sender's force-cancel (migration timeout AND lease
                    // both expired): abort the matching in-flight migration.
                    // `finish_abort` reports back to the conductor, which
                    // leaves Sending through the normal failure path.
                    let matching = self.migration_of(pid).filter(|m| {
                        self.migrations
                            .get(m)
                            .is_some_and(|t| t.engine.epoch == epoch)
                    });
                    match matching {
                        Some(mig) => {
                            self.abort_migration(mig, AbortReason::TransferStalled);
                        }
                        None => {
                            // No such migration (it just finished, or the
                            // daemon never started it): release the
                            // conductor directly so it cannot wedge in
                            // Sending.
                            if let Some(c) = self.hosts[host].conductor.as_mut() {
                                let effects = c.on_migration_finished(now, false);
                                self.apply_lb_effects(host, effects);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Schedule one control-message delivery, applying the unreliable-
    /// delivery faults. The RNG is consulted only while a fault window is
    /// open, so fault-free effect streams are byte-identical with this path
    /// compiled in.
    fn schedule_lb_message(&mut self, mut at: SimTime, host: usize, from: NodeId, msg: LbMsg) {
        let now = self.now();
        if let Some((pct, until)) = self.ctrl_loss {
            if now < until && self.rng.range_u64(0, 100) < pct as u64 {
                return; // dropped on the wire
            }
        }
        if let Some((pct, max_extra_us, until)) = self.ctrl_reorder {
            if now < until && self.rng.range_u64(0, 100) < pct as u64 {
                // Extra delay pushes the frame behind later sends.
                at += self.rng.range_u64(1, max_extra_us.max(1));
            }
        }
        self.sched
            .schedule_at(at, Event::LbMessage { host, from, msg });
        if let Some((pct, until)) = self.ctrl_dup {
            if now < until && self.rng.range_u64(0, 100) < pct as u64 {
                let extra = self.rng.range_u64(1, 2_000);
                self.sched
                    .schedule_at(at + extra, Event::LbMessage { host, from, msg });
            }
        }
    }

    /// Whether any active partition separates hosts `a` and `b` (traffic
    /// within a group, or touching hosts in neither group, is unaffected).
    fn partitioned(&self, a: usize, b: usize) -> bool {
        self.partitions.values().any(|[g0, g1]| {
            (g0.contains(a) && g1.contains(b)) || (g1.contains(a) && g0.contains(b))
        })
    }

    fn host_by_node(&self, node: NodeId) -> Option<usize> {
        // Node ids are assigned as `NodeId(hosts.len())` at creation and
        // hosts are never removed from the vector (crashes only mark them
        // dead), so the id doubles as the index. The equality check keeps
        // this honest should that invariant ever change.
        let idx = node.0 as usize;
        (self.hosts.get(idx)?.stack.node == node).then_some(idx)
    }

    // ------------------------------------------------------------------
    // migration stepping
    // ------------------------------------------------------------------

    fn on_migration_step(&mut self, mig: MigId) {
        let now = self.now();
        let Some(task) = self.migrations.get_mut(&mig) else {
            return;
        };
        let (src, dst, pid) = (task.src, task.dst, task.pid);
        let (epoch, past_detach) = (task.engine.epoch, task.engine.past_detach());

        // [`Fault::FetchStall`]: the residual-page stream is frozen until
        // the stall lifts — defer the step, don't drop it. The clock keeps
        // running, so a deadline-guarded transfer can still time out.
        if let Some(until) = task.stall_until {
            if now < until {
                let delay = until.saturating_since(now).max(1);
                self.sched
                    .schedule_after(delay, Event::MigrationStep { mig });
                return;
            }
            task.stall_until = None;
        }

        // A partition between the endpoints stalls the transfer: park the
        // migration (no polling — the heal event resumes it). The sender's
        // conductor force-cancels it if the partition outlives both the
        // migration timeout and the destination lease.
        if self.partitioned(src, dst) {
            self.stalled_migs.insert(mig);
            return;
        }

        // Fenced restore: past the detach point the destination commits the
        // process, which it may only do under a live epoch-matching
        // reservation. A stale epoch (the receiver re-leased to a newer
        // negotiation) or an expired lease (the receiver gave up while a
        // partition stalled the transfer) refuses the resume — this is the
        // single-ownership guarantee under partition heal.
        if self.cfg.fence_enabled && epoch > 0 && past_detach {
            let allowed = self.hosts[dst]
                .conductor
                .as_ref()
                .is_some_and(|c| c.restore_allowed(pid, epoch, now));
            if !allowed {
                self.abort_migration(mig, AbortReason::FencedStaleEpoch);
                return;
            }
        }

        // Split the borrows: engine lives in self.migrations, stacks and the
        // process in self.hosts. The step's side effects land in `buf`, a
        // pooled buffer (steps run at 10 ms cadence per migration; pooling
        // keeps the per-step cost allocation-free, and a freelist — not a
        // single slot — because effect dispatch can re-enter stepping).
        let mut buf = EffectBuf::with_storage(self.mig_fx_pool.pop().unwrap_or_default());
        let task = self
            .migrations
            .get_mut(&mig)
            .expect("checked above, not removed since");
        let plan = {
            let (lo, hi) = if src < dst { (src, dst) } else { (dst, src) };
            let (left, right) = self.hosts.split_at_mut(hi);
            let (src_host, dst_host) = if src < dst {
                (&mut left[lo], &mut right[0])
            } else {
                (&mut right[0], &mut left[lo])
            };
            let entry = src_host
                .procs
                .get_mut(&pid)
                .expect("migrating process on source");
            task.engine.step(
                StepIo {
                    now,
                    src_stack: &mut src_host.stack,
                    dst_stack: &mut dst_host.stack,
                    proc: &mut entry.process,
                },
                &mut buf,
            )
        };

        // Feed the trace spine, then dispatch each effect in emission
        // order. A Complete effect (always last) consumes the task — hence
        // the two passes.
        let mut effects = buf.take();
        for (at, effect) in &effects {
            task.recorder.observe(*at, effect);
        }
        if let Some(log) = &mut self.effect_log {
            for (at, effect) in &effects {
                log.push(render_effect(mig, *at, effect));
            }
        }
        for (_, effect) in effects.drain(..) {
            self.apply_effect(mig, src, dst, pid, effect);
        }
        if self.mig_fx_pool.len() < FX_POOL_CAP {
            self.mig_fx_pool.push(effects);
        }
        if let Some(after) = plan.next_step_after_us {
            self.sched
                .schedule_after(after, Event::MigrationStep { mig });
        }
    }

    /// Route one migration effect — the single dispatch path that replaces
    /// the per-`Vec` plumbing (`suspend_app` flag, `xlate_requests`,
    /// `src_effects`/`dst_effects`, `complete` slot) of the old `StepPlan`.
    fn apply_effect(&mut self, mig: MigId, src: usize, dst: usize, pid: Pid, effect: Effect) {
        match effect {
            Effect::SuspendApp => {
                self.hosts[src]
                    .procs
                    .get_mut(&pid)
                    .expect("migrating process on source")
                    .suspended = true;
            }
            Effect::SendXlate { peer, rule } => {
                // The peer endpoint may itself have migrated since the
                // connection was created; deliver the rule to whichever host
                // currently runs its socket, falling back to the host its
                // address names.
                let owner = self.hosts.iter().position(|h| {
                    h.stack.has_established(
                        rule.peer_local,
                        dvelm_net::SockAddr {
                            ip: rule.old_remote_ip,
                            port: rule.remote_port,
                        },
                    )
                });
                let target = owner.or_else(|| self.host_by_node(peer));
                if let Some(h) = target {
                    self.sched.schedule_after(
                        self.cfg.ctrl_latency_us,
                        Event::InstallXlate { host: h, rule },
                    );
                }
            }
            Effect::Stack { side, effect } => {
                let host = match side {
                    Side::Src => src,
                    Side::Dst => dst,
                };
                self.apply_stack_effect(host, effect);
            }
            Effect::ResumeApp => {
                if let Some(entry) = self.hosts[src].procs.get_mut(&pid) {
                    entry.suspended = false;
                }
                // The old tick chain died at suspension; start a new one and
                // drain whatever queued on the sockets during the freeze.
                self.restart_ticks(src, pid);
                self.drain_proc_sockets(src, pid);
            }
            Effect::RevokeXlate { peer, rule } => {
                // Mirror of SendXlate: recall the rule from whichever host
                // got it. One extra microsecond on top of the control
                // latency guarantees the revoke lands after a simultaneous
                // install of the same rule.
                let owner = self.hosts.iter().position(|h| {
                    h.stack.has_established(
                        rule.peer_local,
                        dvelm_net::SockAddr {
                            ip: rule.old_remote_ip,
                            port: rule.remote_port,
                        },
                    )
                });
                let target = owner.or_else(|| self.host_by_node(peer));
                if let Some(h) = target {
                    self.sched.schedule_after(
                        self.cfg.ctrl_latency_us + 1,
                        Event::RemoveXlate { host: h, rule },
                    );
                }
            }
            Effect::Complete(complete) => self.finish_migration(mig, complete.process),
            Effect::Aborted(aborted) => self.finish_abort(mig, src, pid, aborted),
            // Interest handoff: subscriptions move with the sockets. The
            // engine emits these at the same phase boundaries as the
            // capture hooks, so the destination hears the zone's traffic
            // for the whole capture window and every abort row compensates
            // back to exactly one subscriber.
            Effect::Subscribe { zone, side } => {
                let host = if side == Side::Src { src } else { dst };
                let node = self.hosts[host].stack.node;
                self.router.interest_mut().subscribe(zone, node);
            }
            Effect::Unsubscribe { zone, side } => {
                let host = if side == Side::Src { src } else { dst };
                let node = self.hosts[host].stack.node;
                self.router.interest_mut().unsubscribe(zone, node);
            }
            // Capture entries are installed/removed by the engine directly
            // (it owns the destination stack during a step); the world only
            // indexes which migration did it, so pressure events can be
            // attributed exactly. `or_insert` mirrors the table's idempotent
            // `enable`: when two migrations share a key, the first installer
            // owns the entry until it removes it.
            Effect::InstallCapture { key } => {
                self.capture_owner.entry((dst, key)).or_insert(mig);
            }
            Effect::RemoveCapture { key } => {
                if self.capture_owner.get(&(dst, key)) == Some(&mig) {
                    self.capture_owner.remove(&(dst, key));
                }
            }
            // Trace-only effects: the recorder already folded them.
            Effect::PhaseEntered(_)
            | Effect::SocketDetached { .. }
            | Effect::Shipped { .. }
            | Effect::QueuePressure { .. }
            | Effect::PacketReinjected => {}
        }
    }

    fn finish_migration(&mut self, mig: MigId, process: Process) {
        let task = self
            .migrations
            .remove(&mig)
            .expect("finishing an active migration");
        let MigTask {
            src,
            dst,
            pid,
            recorder,
            ..
        } = task;
        self.migrating.remove(&pid);
        self.stalled_migs.remove(&mig);
        self.admission.release(mig);
        self.capture_owner.retain(|_, m| *m != mig);
        if let Some(m) = &mut self.monitor {
            m.on_transfer(self.sched.now(), pid, src, dst);
        }

        // Move the application object; replace the process with the restored
        // one. The source keeps nothing (no residual dependencies).
        let old = self.hosts[src]
            .procs
            .remove(&pid)
            .expect("process on source");
        self.hosts[src].unindex_proc_sockets(pid);
        let tick_period_us = old.tick_period_us;
        self.hosts[dst].procs.insert(
            pid,
            ProcEntry {
                process,
                app: old.app,
                suspended: false,
                tick_period_us,
                tick_gen: old.tick_gen,
            },
        );
        self.hosts[dst].reindex_proc_sockets(pid);
        self.reports.push(recorder.into_report());
        self.outcomes.insert(
            mig,
            MigrationOutcome::Completed {
                report: self.reports.len() - 1,
            },
        );

        // Resume the real-time loop on the destination and drain anything
        // that queued up during the freeze.
        self.restart_ticks(dst, pid);
        self.drain_proc_sockets(dst, pid);

        // Tell the sender-side conductor (which releases the receiver via
        // MigDone).
        let now = self.now();
        if let Some(c) = self.hosts[src].conductor.as_mut() {
            let effects = c.on_migration_finished(now, true);
            self.apply_lb_effects(src, effects);
        }
    }

    // ------------------------------------------------------------------
    // effect routing
    // ------------------------------------------------------------------

    fn apply_effects(&mut self, host: usize, mut fx: Vec<StackEffect>) {
        for effect in fx.drain(..) {
            self.apply_stack_effect(host, effect);
        }
        // Recycle the emptied vector so the next app callback or stack
        // unlock starts with a warm buffer. Callers also hand in vectors the
        // stack allocated itself, so the pool is capped to stay bounded.
        if self.stack_fx_pool.len() < FX_POOL_CAP {
            self.stack_fx_pool.push(fx);
        }
    }

    fn apply_stack_effect(&mut self, host: usize, effect: StackEffect) {
        match effect {
            StackEffect::Tx { seg, route } => self.transmit(host, seg, route),
            StackEffect::DataReadable { sock } => {
                if let Some(&(pid, _)) = self.hosts[host].sock_owner.get(&sock) {
                    let suspended = self.hosts[host].procs.get(&pid).is_none_or(|e| e.suspended);
                    if !suspended {
                        self.sched.schedule_after(
                            self.cfg.app_read_delay_us,
                            Event::AppRead { host, pid, sock },
                        );
                    }
                }
            }
            StackEffect::ArmTimer { sock, gen, at } => {
                self.sched
                    .schedule_at(at, Event::SockTimer { host, sock, gen });
            }
            StackEffect::Established { sock } => {
                if let Some(&(pid, fd)) = self.hosts[host].sock_owner.get(&sock) {
                    self.with_app(host, pid, |app, ctx| app.on_connected(ctx, fd));
                }
            }
            StackEffect::NewConnection { listener, child } => {
                if let Some(&(pid, lfd)) = self.hosts[host].sock_owner.get(&listener) {
                    let cfd = {
                        let h = &mut self.hosts[host];
                        let entry = h.procs.get_mut(&pid).expect("listener owner exists");
                        let cfd = entry.process.fds.insert(FdEntry::Socket(child));
                        h.register_sock(child, pid, cfd);
                        cfd
                    };
                    self.with_app(host, pid, |app, ctx| app.on_new_connection(ctx, lfd, cfd));
                }
            }
            StackEffect::PeerFin { sock } => {
                if let Some(&(pid, fd)) = self.hosts[host].sock_owner.get(&sock) {
                    self.with_app(host, pid, |app, ctx| app.on_conn_closed(ctx, fd));
                }
            }
            StackEffect::SockClosed { sock } => {
                self.hosts[host].sock_owner.remove(&sock);
            }
        }
    }

    fn transmit(&mut self, host: usize, seg: Segment, route: Ip) {
        let now = self.now();
        let from = self.hosts[host].stack.node;
        if let Some(port) = self.log_port {
            if seg.src.port == port || seg.dst.port == port {
                self.packet_log.push(PacketLogEntry {
                    at: now,
                    from_host: host,
                    src: seg.src,
                    dst: seg.dst,
                    bytes: seg.wire_size(),
                });
            }
        }
        let bytes = seg.wire_size();
        if route == Ip::CLUSTER_PUBLIC {
            // Client → cluster. Legacy: the router broadcasts to every
            // node. AOI: a frame for a zone-mapped port fans out only to
            // that zone's subscribers (unmapped ports still broadcast).
            // The arrival buffer is pooled — the fan-out is the hottest
            // loop in the world (every client frame × every recipient).
            let mut arrivals = std::mem::take(&mut self.arrival_buf);
            let routed = if self.cfg.aoi {
                self.router.inbound_zoned_into(
                    now,
                    from,
                    bytes,
                    seg.dst.port,
                    &mut self.rng,
                    &mut arrivals,
                )
            } else {
                self.router
                    .inbound_into(now, from, bytes, &mut self.rng, &mut arrivals)
            };
            match routed {
                Ok(()) => {
                    // A partition cuts the fan-out at the cut: recipients on
                    // the far side never hear the frame (TCP retransmits
                    // carry the data across once the partition heals).
                    if !self.partitions.is_empty() {
                        arrivals.retain(|&(node, _)| {
                            self.host_by_node(node)
                                .is_none_or(|h| !self.partitioned(host, h))
                        });
                    }
                    self.schedule_broadcast(&arrivals, seg);
                }
                Err(e) => self.note_route_error(now, e),
            }
            self.arrival_buf = arrivals;
        } else if let Some(client) = route.client_host() {
            // Server → client, unicast through the router.
            if let Some(h) = self.host_by_node(client) {
                if self.partitioned(host, h) {
                    return;
                }
                // A gracefully departed client racing an in-flight frame is
                // expected churn, not a routing fault: drop the frame as a
                // benign race instead of counting a route error against the
                // run.
                if self.departed_clients.contains(&h) {
                    self.benign_route_races += 1;
                    return;
                }
            }
            match self
                .router
                .outbound(now, from, client, bytes, &mut self.rng)
            {
                Ok(Some(at)) => {
                    if let Some(h) = self.host_by_node(client) {
                        self.sched
                            .schedule_at(at, Event::PacketArrival { host: h, seg });
                    }
                }
                Ok(None) => {} // loss model dropped the frame
                Err(e) => self.note_route_error(now, e),
            }
        } else if route.is_local() {
            if let Some(dest) = route.local_host() {
                let cut = self
                    .host_by_node(dest)
                    .is_some_and(|h| self.partitioned(host, h));
                if !cut && self.switch.is_attached(dest) {
                    if let Some(at) = self.switch.unicast(now, from, dest, bytes, &mut self.rng) {
                        if let Some(h) = self.host_by_node(dest) {
                            self.sched
                                .schedule_at(at, Event::PacketArrival { host: h, seg });
                        }
                    }
                }
            }
        }
        // Anything else (unknown destination) vanishes, like a frame to a
        // dark address.
    }

    /// Schedule the router's inbound fan-out as batched
    /// [`Event::BroadcastArrival`]s: one event per distinct arrival
    /// instant instead of one per node. Dispatch order is unchanged — the
    /// per-node events all carried consecutive sequence numbers, so at an
    /// equal instant they ran in node order, which is the order each batch
    /// delivers (and groups at distinct instants sort by time exactly as
    /// the individual events did).
    fn schedule_broadcast(&mut self, arrivals: &[(NodeId, SimTime)], seg: Segment) {
        let Some(&(_, t0)) = arrivals.first() else {
            return; // uplink loss: nobody receives
        };
        // Common case: idle identical downlinks, every node hears the frame
        // at the same instant — the whole fan-out is one event.
        if arrivals.iter().all(|&(_, t)| t == t0) {
            let mut hosts = self.bcast_pool.pop().unwrap_or_default();
            hosts.clear();
            for &(node, _) in arrivals {
                if let Some(h) = self.host_by_node(node) {
                    hosts.push(h);
                }
            }
            self.dispatch_or_recycle(t0, hosts, seg);
            return;
        }
        // Rare case (per-node queueing or loss skewed the instants): group
        // by instant. The sort is stable, so node order survives within a
        // group.
        let mut sorted = arrivals.to_vec();
        sorted.sort_by_key(|&(_, t)| t);
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i].1;
            let mut hosts = self.bcast_pool.pop().unwrap_or_default();
            hosts.clear();
            while i < sorted.len() && sorted[i].1 == t {
                if let Some(h) = self.host_by_node(sorted[i].0) {
                    hosts.push(h);
                }
                i += 1;
            }
            self.dispatch_or_recycle(t, hosts, seg.clone());
        }
    }

    /// Schedule one broadcast group, degrading to a plain
    /// [`Event::PacketArrival`] for a single receiver and recycling the
    /// host list when nobody is left to hear the frame.
    fn dispatch_or_recycle(&mut self, at: SimTime, mut hosts: Vec<usize>, seg: Segment) {
        match hosts.len() {
            0 => {
                if self.bcast_pool.len() < FX_POOL_CAP {
                    self.bcast_pool.push(hosts);
                }
            }
            1 => {
                let host = hosts.pop().expect("len checked");
                if self.bcast_pool.len() < FX_POOL_CAP {
                    self.bcast_pool.push(hosts);
                }
                self.sched
                    .schedule_at(at, Event::PacketArrival { host, seg });
            }
            _ => {
                self.sched
                    .schedule_at(at, Event::BroadcastArrival { hosts, seg });
            }
        }
    }

    /// Account a frame the router refused to route (unknown endpoint —
    /// normally a crashed or departed host racing an in-flight frame). The
    /// error rides the same observability rails as migration effects: a
    /// counter plus a rendered line in the effect log when enabled.
    fn note_route_error(&mut self, now: SimTime, err: RouteError) {
        self.route_errors += 1;
        if let Some(log) = &mut self.effect_log {
            log.push(format!("{}us route-error {}", now.as_micros(), err));
        }
    }
}

/// When a timed chaos window closes: `for_us == 0` means "until further
/// notice" (the window never expires on its own), mirroring the permanent
/// form of [`Fault::Partition`].
fn chaos_until(now: SimTime, for_us: u64) -> SimTime {
    if for_us == 0 {
        SimTime(u64::MAX)
    } else {
        now + for_us
    }
}

/// The inert stand-in app installed on a destination that commits a stale
/// copy during a fence-disabled split-brain window (see
/// [`World::finish_abort`]'s `RestoredOnSource` arm). It never ticks — the
/// duplicate exists so ownership accounting (and the invariant monitor) can
/// see it, not so it can do work.
struct OrphanApp;

impl App for OrphanApp {
    fn on_tick(&mut self, _ctx: &mut AppCtx<'_>) {}
}

/// Compact one-line rendering of a migration effect for the optional effect
/// log (see [`World::enable_effect_log`]). `Complete` is rendered without its
/// payload — the carried process image is large and its address-space debug
/// output is not what determinism checks want to compare.
fn render_effect(mig: MigId, at: SimTime, effect: &Effect) -> String {
    match effect {
        Effect::Complete(_) => format!("{}us mig={} Complete", at.as_micros(), mig),
        Effect::Aborted(a) => format!(
            "{}us mig={} Aborted {{ phase: {:?}, reason: {}, recovery: {} }}",
            at.as_micros(),
            mig,
            a.phase,
            a.reason.label(),
            a.recovery.label(),
        ),
        e => format!("{}us mig={} {:?}", at.as_micros(), mig, e),
    }
}
