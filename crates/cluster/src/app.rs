//! The application trait: what runs inside a zone-server (or client, or
//! database) process.
//!
//! An application's observable behaviour flows through its process's sockets
//! and memory, which is exactly what migration must preserve: the runtime
//! moves the `Box<dyn App>` together with the restored
//! [`Process`], while the migration engine ships the
//! process image and sockets — so a migration bug loses or duplicates real
//! application bytes in tests.

use bytes::Bytes;
use dvelm_net::SockAddr;
use dvelm_proc::{Fd, FdEntry, Pid, Process};
use dvelm_sim::{DetRng, SimTime};
use dvelm_stack::udp::Datagram;
use dvelm_stack::{HostStack, Skb, StackEffect};

/// World access handed to application callbacks.
pub struct AppCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The application's process id.
    pub pid: Pid,
    /// Deterministic randomness for the app.
    pub rng: &'a mut DetRng,
    pub(crate) proc: &'a mut Process,
    pub(crate) stack: &'a mut HostStack,
    pub(crate) effects: &'a mut Vec<StackEffect>,
}

impl AppCtx<'_> {
    /// Send stream data (TCP) or a datagram to the connected peer (UDP).
    pub fn send(&mut self, fd: Fd, data: Bytes) {
        let sid = self.sock_of(fd).expect("send on unknown fd");
        let fx = self.stack.send(sid, data, self.now);
        self.effects.extend(fx);
    }

    /// Send a UDP datagram to an explicit destination.
    pub fn send_udp_to(&mut self, fd: Fd, dst: SockAddr, data: Bytes) {
        let sid = self.sock_of(fd).expect("send on unknown fd");
        let fx = self.stack.udp_send_to(sid, dst, data, self.now);
        self.effects.extend(fx);
    }

    /// Dirty `pages` pages of the process address space (the memory side of
    /// one slice of application work — what the precopy loop chases).
    pub fn touch_memory(&mut self, pages: usize) {
        self.proc.do_work(self.rng, pages);
    }

    /// Declare this process's current CPU consumption (percent of one core)
    /// — what `atop` would attribute to it, feeding the selection policy.
    pub fn set_cpu_share(&mut self, pct: f64) {
        self.proc.cpu_share = pct;
    }

    /// All socket descriptors of this process, in fd order.
    pub fn socket_fds(&self) -> Vec<Fd> {
        self.proc.fds.sockets().map(|(fd, _)| fd).collect()
    }

    /// The socket behind a descriptor.
    pub fn sock_of(&self, fd: Fd) -> Option<dvelm_stack::SockId> {
        match self.proc.fds.get(fd)? {
            FdEntry::Socket(s) => Some(*s),
            FdEntry::File { .. } => None,
        }
    }

    /// The local address of the socket behind `fd`.
    pub fn local_addr(&self, fd: Fd) -> Option<SockAddr> {
        let sid = self.sock_of(fd)?;
        self.stack.sock(sid).map(|s| s.local())
    }

    /// The peer address of the socket behind `fd`.
    pub fn peer_addr(&self, fd: Fd) -> Option<SockAddr> {
        let sid = self.sock_of(fd)?;
        self.stack.sock(sid).and_then(|s| s.remote())
    }
}

/// An application running inside a simulated process.
pub trait App {
    /// One iteration of the real-time loop (scheduled every
    /// [`tick_period_us`](App::tick_period_us)).
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>);

    /// Stream data arrived on a TCP socket.
    fn on_tcp_data(&mut self, _ctx: &mut AppCtx<'_>, _fd: Fd, _data: &[Skb]) {}

    /// Datagrams arrived on a UDP socket.
    fn on_udp_data(&mut self, _ctx: &mut AppCtx<'_>, _fd: Fd, _dgrams: &[Datagram]) {}

    /// A listener accepted a connection (`child` is already in the fd
    /// table).
    fn on_new_connection(&mut self, _ctx: &mut AppCtx<'_>, _listener: Fd, _child: Fd) {}

    /// An active open completed.
    fn on_connected(&mut self, _ctx: &mut AppCtx<'_>, _fd: Fd) {}

    /// The peer closed the connection.
    fn on_conn_closed(&mut self, _ctx: &mut AppCtx<'_>, _fd: Fd) {}

    /// Real-time loop period, µs (default: the Quake III 20 Hz loop).
    fn tick_period_us(&self) -> u64 {
        50_000
    }
}
