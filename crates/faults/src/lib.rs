//! Scripted fault injection against a running cluster simulation.
//!
//! A [`FaultPlan`] is a deterministic schedule of [`Fault`]s: the owner (the
//! `World` in `dvelm-cluster`) installs the plan, turning each entry into an
//! event at its instant, and handles the fault when it fires. The plan
//! itself knows nothing about the world — it is plain data, so tests can
//! build, inspect and replay plans without a simulation.
//!
//! The vocabulary covers the failure modes the migration protocol must
//! survive (§III's rollback property, plus the orchestration layer above):
//!
//! * [`Fault::NodeCrash`] — a host dies mid-anything; migrations touching
//!   it must abort with phase-appropriate recovery;
//! * [`Fault::DownlinkLoss`] — partition or correlated loss burst on a
//!   node's downlink (reuses [`LossModel`], including
//!   [`LossModel::Burst`]);
//! * [`Fault::TransferStall`] — the in-flight migration of a pid stalls
//!   past its deadline and is aborted by the orchestrator;
//! * [`Fault::CaptureInstallFail`] / [`Fault::RestoreFail`] — the
//!   destination kernel refuses a capture hook / socket rehash;
//! * [`Fault::CtrlBlackout`] — a node's conductor goes dark on control
//!   messages (heartbeats, negotiation) for a while, in an explicit
//!   [`CtrlDir`]: inbound, outbound, or both;
//! * [`Fault::Overload`] — a traffic surge multiplies the tick (and hence
//!   send/dirty) rate of everything on a host, driving capture queues,
//!   precopy convergence and the admission path into their budgets;
//! * [`Fault::Partition`] — a network partition: control *and* data
//!   traffic between two [`HostSet`] groups is dropped until the heal;
//! * [`Fault::CtrlLoss`] / [`Fault::CtrlDup`] / [`Fault::CtrlReorder`] —
//!   unreliable control delivery: `LbMsg` frames are probabilistically
//!   dropped, duplicated, or delayed out of order via the world's seeded
//!   RNG, exercising the conductor protocol's idempotency and
//!   epoch-fencing guarantees.

use dvelm_net::LossModel;
use dvelm_proc::Pid;
use dvelm_sim::SimTime;

/// A set of host indices as a bitmask — `Copy`, so [`Fault`] stays plain
/// data. Capacity is 128 hosts; partition scenarios live well below the
/// bench harness's largest cells, which never inject partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostSet(pub u128);

impl HostSet {
    /// The empty set.
    pub const EMPTY: HostSet = HostSet(0);

    /// Build a set from host indices. Panics if an index is ≥ 128 (the
    /// bitmask capacity).
    pub fn of(hosts: &[usize]) -> HostSet {
        let mut bits = 0u128;
        for &h in hosts {
            assert!(h < 128, "HostSet capacity is 128 hosts, got index {h}");
            bits |= 1 << h;
        }
        HostSet(bits)
    }

    /// Whether `host` is in the set (indices ≥ 128 are never members).
    pub fn contains(self, host: usize) -> bool {
        host < 128 && self.0 & (1 << host) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

/// Which direction of a control blackout is suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlDir {
    /// The host's conductor hears nothing (its own sends still leave).
    Inbound,
    /// The host's conductor's own broadcasts/unicasts are swallowed; it
    /// still hears its peers.
    Outbound,
    /// Full blackout, both directions.
    Both,
}

impl CtrlDir {
    /// Whether inbound control delivery is suppressed.
    pub fn blocks_inbound(self) -> bool {
        matches!(self, CtrlDir::Inbound | CtrlDir::Both)
    }

    /// Whether outbound control delivery is suppressed.
    pub fn blocks_outbound(self) -> bool {
        matches!(self, CtrlDir::Outbound | CtrlDir::Both)
    }
}

/// One injectable fault. Hosts are named by their index in the world's host
/// table (the same indices `World::add_server_node` hands out).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// The host dies: processes are lost, its stack stops answering, and
    /// every migration touching it aborts.
    NodeCrash { host: usize },
    /// Install `model` on the host's downlink for `for_us` µs, then restore
    /// lossless delivery (`for_us == 0` leaves it installed forever).
    DownlinkLoss {
        host: usize,
        model: LossModel,
        for_us: u64,
    },
    /// Abort the in-flight migration of `pid` as stalled (the orchestration
    /// deadline fired). No-op if that pid is not migrating.
    TransferStall { pid: Pid },
    /// The host's kernel refuses the next capture-hook installation, so a
    /// migration entering its freeze phase toward this destination aborts.
    CaptureInstallFail { host: usize },
    /// The host's kernel refuses the next socket rehash, so a migration
    /// restoring onto this destination falls back to its source.
    RestoreFail { host: usize },
    /// The host's conductor goes dark on control messages for `for_us` µs,
    /// in the given [`CtrlDir`]: inbound (requests are swallowed before the
    /// conductor sees them), outbound (its own heartbeats and replies never
    /// leave the host), or both.
    CtrlBlackout {
        host: usize,
        dir: CtrlDir,
        for_us: u64,
    },
    /// A network partition: every frame — control *and* data — crossing
    /// between `groups[0]` and `groups[1]` is dropped for `for_us` µs, then
    /// the partition heals (`for_us == 0` leaves it in place forever).
    /// Traffic *within* a group, and to/from hosts in neither group, is
    /// unaffected; overlapping partitions compose (a frame is dropped if
    /// any active partition separates its endpoints).
    Partition { groups: [HostSet; 2], for_us: u64 },
    /// Unreliable control delivery: each scheduled `LbMsg` delivery is
    /// dropped with probability `pct`/100 (seeded RNG) for `for_us` µs.
    CtrlLoss { pct: u32, for_us: u64 },
    /// Unreliable control delivery: each scheduled `LbMsg` delivery is
    /// duplicated with probability `pct`/100 for `for_us` µs; the duplicate
    /// arrives a seeded 1–2000 µs after the original.
    CtrlDup { pct: u32, for_us: u64 },
    /// Unreliable control delivery: each scheduled `LbMsg` delivery is
    /// delayed by a seeded 1–`max_extra_us` extra µs with probability
    /// `pct`/100 for `for_us` µs, reordering it behind later sends.
    CtrlReorder {
        pct: u32,
        max_extra_us: u64,
        for_us: u64,
    },
    /// The residual-page stream of the in-flight post-copy migration of
    /// `pid` stalls: demand fetches and write-back pushes stop flowing for
    /// `for_us` µs (the source keeps the ledger; resolution resumes after
    /// the stall). No-op if that pid is not in its demand-resolve phase.
    FetchStall { pid: Pid, for_us: u64 },
    /// Traffic surge: every client/application flow hosted on `host` ticks
    /// `factor`× faster for `for_us` µs, multiplying its send rate and
    /// dirty rate (a flash crowd hitting a zone). `factor <= 1` restores
    /// the normal rate; `for_us == 0` leaves the surge installed forever.
    Overload {
        host: usize,
        factor: u32,
        for_us: u64,
    },
}

impl Fault {
    /// Human-readable label, stable across releases.
    pub fn label(&self) -> &'static str {
        match self {
            Fault::NodeCrash { .. } => "node crash",
            Fault::DownlinkLoss { .. } => "downlink loss",
            Fault::TransferStall { .. } => "transfer stall",
            Fault::CaptureInstallFail { .. } => "capture install fail",
            Fault::RestoreFail { .. } => "restore fail",
            Fault::CtrlBlackout { .. } => "control blackout",
            Fault::Overload { .. } => "overload",
            Fault::Partition { .. } => "partition",
            Fault::CtrlLoss { .. } => "control loss",
            Fault::CtrlDup { .. } => "control duplication",
            Fault::CtrlReorder { .. } => "control reorder",
            Fault::FetchStall { .. } => "fetch stall",
        }
    }
}

/// A deterministic schedule of faults, built fluently:
///
/// ```
/// use dvelm_faults::{Fault, FaultPlan};
/// use dvelm_sim::SimTime;
///
/// let plan = FaultPlan::new()
///     .at(SimTime::from_millis(500), Fault::CaptureInstallFail { host: 1 })
///     .at(SimTime::from_secs(2), Fault::NodeCrash { host: 1 });
/// assert_eq!(plan.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    entries: Vec<(SimTime, Fault)>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Schedule `fault` at `at` (entries may be added in any order; the
    /// owner's event queue establishes firing order).
    pub fn at(mut self, at: SimTime, fault: Fault) -> FaultPlan {
        self.entries.push((at, fault));
        self
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The scheduled faults, in insertion order.
    pub fn entries(&self) -> &[(SimTime, Fault)] {
        &self.entries
    }

    /// Consume the plan, yielding its entries sorted by instant (ties keep
    /// insertion order), ready for scheduling.
    pub fn into_entries(self) -> Vec<(SimTime, Fault)> {
        let mut entries = self.entries;
        entries.sort_by_key(|(at, _)| *at);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builds_and_sorts() {
        let plan = FaultPlan::new()
            .at(SimTime::from_secs(3), Fault::NodeCrash { host: 2 })
            .at(SimTime::from_secs(1), Fault::TransferStall { pid: Pid(7) })
            .at(
                SimTime::from_secs(1),
                Fault::CtrlBlackout {
                    host: 0,
                    dir: CtrlDir::Both,
                    for_us: 1_000,
                },
            );
        assert!(!plan.is_empty());
        assert_eq!(plan.len(), 3);
        let entries = plan.into_entries();
        assert_eq!(entries[0].0, SimTime::from_secs(1));
        assert!(
            matches!(entries[0].1, Fault::TransferStall { .. }),
            "ties keep insertion order"
        );
        assert!(matches!(entries[2].1, Fault::NodeCrash { host: 2 }));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Fault::NodeCrash { host: 0 }.label(), "node crash");
        assert_eq!(
            Fault::DownlinkLoss {
                host: 0,
                model: LossModel::Bernoulli(0.5),
                for_us: 0
            }
            .label(),
            "downlink loss"
        );
        assert_eq!(
            Fault::TransferStall { pid: Pid(1) }.label(),
            "transfer stall"
        );
        assert_eq!(
            Fault::Overload {
                host: 0,
                factor: 4,
                for_us: 0
            }
            .label(),
            "overload"
        );
        assert_eq!(
            Fault::Partition {
                groups: [HostSet::of(&[0, 1]), HostSet::of(&[2])],
                for_us: 0
            }
            .label(),
            "partition"
        );
        assert_eq!(
            Fault::CtrlLoss { pct: 10, for_us: 0 }.label(),
            "control loss"
        );
        assert_eq!(
            Fault::CtrlDup { pct: 10, for_us: 0 }.label(),
            "control duplication"
        );
        assert_eq!(
            Fault::CtrlReorder {
                pct: 10,
                max_extra_us: 1_000,
                for_us: 0
            }
            .label(),
            "control reorder"
        );
        assert_eq!(
            Fault::FetchStall {
                pid: Pid(1),
                for_us: 1_000
            }
            .label(),
            "fetch stall"
        );
    }

    #[test]
    fn host_set_membership_and_bounds() {
        let set = HostSet::of(&[0, 3, 127]);
        assert!(set.contains(0));
        assert!(!set.contains(1));
        assert!(set.contains(3));
        assert!(set.contains(127));
        // Out-of-capacity indices are simply never members.
        assert!(!set.contains(128));
        assert!(!set.contains(usize::MAX));
        assert!(HostSet::EMPTY.is_empty());
        assert!(!set.is_empty());
    }

    #[test]
    fn ctrl_dir_direction_predicates() {
        assert!(CtrlDir::Inbound.blocks_inbound());
        assert!(!CtrlDir::Inbound.blocks_outbound());
        assert!(!CtrlDir::Outbound.blocks_inbound());
        assert!(CtrlDir::Outbound.blocks_outbound());
        assert!(CtrlDir::Both.blocks_inbound());
        assert!(CtrlDir::Both.blocks_outbound());
    }
}
