//! Checkpoint image records and their transfer-size accounting.
//!
//! Two size notions coexist deliberately:
//!
//! * [`transfer_bytes`](CheckpointImage::transfer_bytes) — the number of
//!   bytes the real system would move (pages count at full `PAGE_SIZE`);
//!   this feeds the migration timing model;
//! * the compact [`encode`](CheckpointImage::encode) representation — page
//!   contents are 64-bit fingerprints in the simulation, so the encoded
//!   buffer is small; it exists for restore fidelity and roundtrip testing.

use crate::wire::{WireError, WireReader, WireWriter};
use dvelm_proc::mem::{PageRef, VmaId, VmaKind, PAGE_SIZE};
use dvelm_proc::process::SIGHANDLER_RECORD_LEN;
use dvelm_proc::thread::THREAD_RECORD_LEN;
use dvelm_proc::{Pid, Process};

/// Transfer-size overhead of one page record (addressing header), bytes.
pub const PAGE_RECORD_OVERHEAD: u64 = 24;
/// Transfer size of one VMA record, bytes.
pub const VMA_RECORD_LEN: u64 = 64;
/// Transfer size of the process metadata block, bytes.
pub const META_RECORD_LEN: u64 = 128;

/// Metadata of the checkpointed process.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessMeta {
    pub pid: Pid,
    pub name: String,
    pub thread_count: u32,
    pub cpu_share: f64,
}

/// A mapped-region record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmaRecord {
    pub id: VmaId,
    pub kind: VmaKind,
    pub start: u64,
    pub pages: usize,
}

impl VmaRecord {
    /// Compact encoding (shared by full images and incremental diffs; the
    /// *transfer* model charges [`VMA_RECORD_LEN`] per record regardless).
    pub fn encode(&self, w: &mut WireWriter) {
        w.put_u64(self.id.0);
        w.put_u8(kind_code(self.kind));
        w.put_u64(self.start);
        w.put_u64(self.pages as u64);
    }

    /// Decode one compact record.
    pub fn decode(r: &mut WireReader<'_>) -> Result<VmaRecord, WireError> {
        let id = VmaId(r.get_u64()?);
        let kind = kind_from_code(r.get_u8()?);
        let start = r.get_u64()?;
        let pages = r.get_u64()? as usize;
        Ok(VmaRecord {
            id,
            kind,
            start,
            pages,
        })
    }
}

/// A page-content record.
pub type PageRecord = PageRef;

/// Freeze-phase records: what the leader thread and its followers dump after
/// the barrier in Fig. 3 (open files, thread state, signal handlers — *not*
/// sockets, which the socket-migration machinery accounts separately).
#[derive(Debug, Clone, PartialEq)]
pub struct FreezeImage {
    /// (fd, path, offset) of each open regular file — contents are not
    /// transferred, the file is re-opened at the same descriptor.
    pub files: Vec<(u32, String, u64)>,
    /// Descriptor numbers holding sockets (16-byte attachment records each;
    /// the migrated sockets are reattached at these descriptors).
    pub socket_fds: Vec<u32>,
    pub threads: u32,
    pub sig_handlers: u32,
}

impl FreezeImage {
    /// Bytes this image contributes to the freeze-phase transfer.
    pub fn transfer_bytes(&self) -> u64 {
        16 + self
            .files
            .iter()
            .map(|(_, p, _)| 48 + p.len() as u64)
            .sum::<u64>()
            + self.socket_fds.len() as u64 * 16
            + self.threads as u64 * THREAD_RECORD_LEN
            + self.sig_handlers as u64 * SIGHANDLER_RECORD_LEN
    }
}

/// A full checkpoint image: everything needed to rebuild the process (minus
/// sockets).
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointImage {
    pub meta: ProcessMeta,
    pub vmas: Vec<VmaRecord>,
    pub pages: Vec<PageRecord>,
    pub freeze: FreezeImage,
}

impl CheckpointImage {
    /// Bytes the real system would transfer for this image.
    pub fn transfer_bytes(&self) -> u64 {
        META_RECORD_LEN
            + self.vmas.len() as u64 * VMA_RECORD_LEN
            + self.pages.len() as u64 * (PAGE_RECORD_OVERHEAD + PAGE_SIZE)
            + self.freeze.transfer_bytes()
    }

    /// Compact encoding (fingerprints instead of page contents).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.put_u64(self.meta.pid.0);
        w.put_str(&self.meta.name);
        w.put_u32(self.meta.thread_count);
        w.put_f64(self.meta.cpu_share);
        w.put_u32(self.vmas.len() as u32);
        for v in &self.vmas {
            v.encode(&mut w);
        }
        w.put_u32(self.pages.len() as u32);
        for p in &self.pages {
            w.put_u64(p.vma.0);
            w.put_u32(p.index as u32);
            w.put_u64(p.fingerprint);
        }
        w.put_u32(self.freeze.files.len() as u32);
        for (fd, path, off) in &self.freeze.files {
            w.put_u32(*fd);
            w.put_str(path);
            w.put_u64(*off);
        }
        w.put_u32(self.freeze.socket_fds.len() as u32);
        for fd in &self.freeze.socket_fds {
            w.put_u32(*fd);
        }
        w.put_u32(self.freeze.threads);
        w.put_u32(self.freeze.sig_handlers);
        w.into_bytes()
    }

    /// Decode a compact encoding.
    pub fn decode(buf: &[u8]) -> Result<CheckpointImage, WireError> {
        let mut r = WireReader::new(buf);
        let pid = Pid(r.get_u64()?);
        let name = r.get_str()?.to_owned();
        let thread_count = r.get_u32()?;
        let cpu_share = r.get_f64()?;
        let nv = r.get_u32()?;
        let mut vmas = Vec::with_capacity(nv as usize);
        for _ in 0..nv {
            vmas.push(VmaRecord::decode(&mut r)?);
        }
        let np = r.get_u32()?;
        let mut pages = Vec::with_capacity(np as usize);
        for _ in 0..np {
            let vma = VmaId(r.get_u64()?);
            let index = r.get_u32()? as usize;
            let fingerprint = r.get_u64()?;
            pages.push(PageRecord {
                vma,
                index,
                fingerprint,
            });
        }
        let nf = r.get_u32()?;
        let mut files = Vec::with_capacity(nf as usize);
        for _ in 0..nf {
            let fd = r.get_u32()?;
            let path = r.get_str()?.to_owned();
            let off = r.get_u64()?;
            files.push((fd, path, off));
        }
        let ns = r.get_u32()?;
        let mut socket_fds = Vec::with_capacity(ns as usize);
        for _ in 0..ns {
            socket_fds.push(r.get_u32()?);
        }
        let threads = r.get_u32()?;
        let sig_handlers = r.get_u32()?;
        Ok(CheckpointImage {
            meta: ProcessMeta {
                pid,
                name,
                thread_count,
                cpu_share,
            },
            vmas,
            pages,
            freeze: FreezeImage {
                files,
                socket_fds,
                threads,
                sig_handlers,
            },
        })
    }
}

fn kind_code(k: VmaKind) -> u8 {
    match k {
        VmaKind::Text => 0,
        VmaKind::Data => 1,
        VmaKind::Heap => 2,
        VmaKind::Stack => 3,
        VmaKind::Anon => 4,
    }
}

fn kind_from_code(c: u8) -> VmaKind {
    match c {
        0 => VmaKind::Text,
        1 => VmaKind::Data,
        2 => VmaKind::Heap,
        3 => VmaKind::Stack,
        _ => VmaKind::Anon,
    }
}

/// Build the freeze image of a process (fd table walk, §III-A).
pub fn freeze_image_of(p: &Process) -> FreezeImage {
    let files = p
        .fds
        .iter()
        .filter_map(|(fd, e)| match e {
            dvelm_proc::FdEntry::File { path, offset } => Some((fd.0, path.clone(), *offset)),
            dvelm_proc::FdEntry::Socket(_) => None,
        })
        .collect();
    FreezeImage {
        files,
        socket_fds: p.fds.sockets().map(|(fd, _)| fd.0).collect(),
        threads: p.threads.len() as u32,
        sig_handlers: p.sig_handlers.len() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvelm_proc::FdEntry;
    use dvelm_stack::SockId;

    fn sample_image() -> CheckpointImage {
        CheckpointImage {
            meta: ProcessMeta {
                pid: Pid(7),
                name: "zone_serv3".into(),
                thread_count: 2,
                cpu_share: 3.25,
            },
            vmas: vec![
                VmaRecord {
                    id: VmaId(1),
                    kind: VmaKind::Text,
                    start: 0x1000,
                    pages: 4,
                },
                VmaRecord {
                    id: VmaId(2),
                    kind: VmaKind::Heap,
                    start: 0x9000,
                    pages: 8,
                },
            ],
            pages: vec![
                PageRecord {
                    vma: VmaId(2),
                    index: 0,
                    fingerprint: 0xAA,
                },
                PageRecord {
                    vma: VmaId(2),
                    index: 3,
                    fingerprint: 0xBB,
                },
            ],
            freeze: FreezeImage {
                files: vec![(0, "/srv/world.db".into(), 4096)],
                socket_fds: vec![1, 2, 5],
                threads: 2,
                sig_handlers: 4,
            },
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let img = sample_image();
        let buf = img.encode();
        let back = CheckpointImage::decode(&buf).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn transfer_bytes_dominated_by_pages() {
        let img = sample_image();
        let t = img.transfer_bytes();
        assert!(t > 2 * PAGE_SIZE, "two pages at full size: {t}");
        assert!(t < 3 * PAGE_SIZE + 2048, "no runaway overhead: {t}");
    }

    #[test]
    fn freeze_image_walks_fd_table() {
        let mut p = Process::new(Pid(1), "p", 4, 4);
        p.fds.insert(FdEntry::File {
            path: "/etc/conf".into(),
            offset: 10,
        });
        p.fds.insert(FdEntry::Socket(SockId(5)));
        p.fds.insert(FdEntry::Socket(SockId(6)));
        let fi = freeze_image_of(&p);
        assert_eq!(fi.files.len(), 1);
        assert_eq!(fi.socket_fds, vec![1, 2]);
        assert_eq!(fi.threads, 1);
        assert!(fi.transfer_bytes() > 0);
    }

    #[test]
    fn decode_rejects_truncation() {
        let buf = sample_image().encode();
        assert!(CheckpointImage::decode(&buf[..buf.len() - 1]).is_err());
    }
}
