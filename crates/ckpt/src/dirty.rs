//! Incremental checkpointing: dirty pages + VMA-list diff (§V-A).
//!
//! The tracker keeps its own list of region properties as of the previous
//! iteration. Each precopy loop compares that list with the live
//! `vm_area_struct` list, emits insert/resize/remove records, updates the
//! tracking list, and collects (clearing) the dirty pages.

use crate::image::{PageRecord, VmaRecord, PAGE_RECORD_OVERHEAD, VMA_RECORD_LEN};
use dvelm_proc::mem::{AddressSpace, VmaId, PAGE_SIZE};
use std::collections::BTreeMap;

/// Region-level changes since the previous iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VmaDiff {
    /// Newly mapped regions.
    pub inserted: Vec<VmaRecord>,
    /// Regions whose length changed: (id, new page count).
    pub resized: Vec<(VmaId, usize)>,
    /// Unmapped regions.
    pub removed: Vec<VmaId>,
}

impl VmaDiff {
    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.resized.is_empty() && self.removed.is_empty()
    }

    /// Transfer size of the diff records, bytes.
    pub fn transfer_bytes(&self) -> u64 {
        self.inserted.len() as u64 * VMA_RECORD_LEN
            + self.resized.len() as u64 * 24
            + self.removed.len() as u64 * 12
    }
}

/// One incremental update: region diff + dirty pages.
#[derive(Debug, Clone, Default)]
pub struct IncrementalUpdate {
    pub vma_diff: VmaDiff,
    pub pages: Vec<PageRecord>,
}

impl IncrementalUpdate {
    /// Bytes the real system would transfer for this update.
    pub fn transfer_bytes(&self) -> u64 {
        16 + self.vma_diff.transfer_bytes()
            + self.pages.len() as u64 * (PAGE_RECORD_OVERHEAD + PAGE_SIZE)
    }

    /// Whether the update carries nothing.
    pub fn is_empty(&self) -> bool {
        self.vma_diff.is_empty() && self.pages.is_empty()
    }
}

/// Tracking state across precopy iterations.
#[derive(Debug, Clone, Default)]
pub struct IncrementalTracker {
    /// id → page count as of the last iteration.
    tracked: BTreeMap<VmaId, usize>,
    /// Iterations performed.
    pub iterations: u32,
}

impl IncrementalTracker {
    /// A fresh tracker (first `step` returns everything as inserted).
    pub fn new() -> IncrementalTracker {
        IncrementalTracker::default()
    }

    /// One iteration: diff the live VMA list against the tracking list,
    /// update the tracking list, and collect the dirty pages.
    pub fn step(&mut self, space: &mut AddressSpace) -> IncrementalUpdate {
        let mut diff = VmaDiff::default();
        let mut live: BTreeMap<VmaId, usize> = BTreeMap::new();
        for vma in space.vmas() {
            live.insert(vma.id, vma.pages.len());
            match self.tracked.get(&vma.id) {
                None => diff.inserted.push(VmaRecord {
                    id: vma.id,
                    kind: vma.kind,
                    start: vma.start,
                    pages: vma.pages.len(),
                }),
                Some(&old) if old != vma.pages.len() => {
                    diff.resized.push((vma.id, vma.pages.len()));
                }
                Some(_) => {}
            }
        }
        for id in self.tracked.keys() {
            if !live.contains_key(id) {
                diff.removed.push(*id);
            }
        }
        self.tracked = live;
        self.iterations += 1;
        IncrementalUpdate {
            vma_diff: diff,
            pages: space.collect_dirty(),
        }
    }

    /// Regions currently tracked.
    pub fn tracked_count(&self) -> usize {
        self.tracked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvelm_proc::mem::VmaKind;
    use dvelm_sim::DetRng;

    #[test]
    fn first_step_reports_everything_inserted() {
        let mut space = AddressSpace::new();
        space.mmap(VmaKind::Text, 4, 1);
        space.mmap(VmaKind::Heap, 8, 2);
        let mut tr = IncrementalTracker::new();
        let up = tr.step(&mut space);
        assert_eq!(up.vma_diff.inserted.len(), 2);
        assert_eq!(up.pages.len(), 12, "all pages dirty initially");
        assert_eq!(tr.tracked_count(), 2);
    }

    #[test]
    fn steady_state_step_is_empty() {
        let mut space = AddressSpace::new();
        space.mmap(VmaKind::Heap, 8, 1);
        let mut tr = IncrementalTracker::new();
        tr.step(&mut space);
        let up = tr.step(&mut space);
        assert!(up.is_empty());
        assert_eq!(up.transfer_bytes(), 16, "just the update header");
    }

    #[test]
    fn mmap_between_steps_is_inserted() {
        let mut space = AddressSpace::new();
        space.mmap(VmaKind::Heap, 8, 1);
        let mut tr = IncrementalTracker::new();
        tr.step(&mut space);
        let id = space.mmap(VmaKind::Anon, 5, 2);
        let up = tr.step(&mut space);
        assert_eq!(up.vma_diff.inserted.len(), 1);
        assert_eq!(up.vma_diff.inserted[0].id, id);
        assert_eq!(up.pages.len(), 5, "new region's pages are dirty");
    }

    #[test]
    fn munmap_between_steps_is_removed() {
        let mut space = AddressSpace::new();
        let id = space.mmap(VmaKind::Anon, 5, 1);
        let mut tr = IncrementalTracker::new();
        tr.step(&mut space);
        space.munmap(id);
        let up = tr.step(&mut space);
        assert_eq!(up.vma_diff.removed, vec![id]);
        assert!(up.pages.is_empty());
    }

    #[test]
    fn resize_between_steps_is_reported() {
        let mut space = AddressSpace::new();
        let id = space.mmap(VmaKind::Heap, 4, 1);
        let mut tr = IncrementalTracker::new();
        tr.step(&mut space);
        space.resize(id, 10, 2);
        let up = tr.step(&mut space);
        assert_eq!(up.vma_diff.resized, vec![(id, 10)]);
        assert_eq!(up.pages.len(), 6, "grown pages are dirty");
    }

    #[test]
    fn update_bytes_shrink_as_dirty_rate_drops() {
        // The precopy premise: with a fixed dirty rate and shrinking windows,
        // later iterations ship less.
        let mut space = AddressSpace::new();
        space.mmap(VmaKind::Heap, 4096, 1);
        let mut tr = IncrementalTracker::new();
        let full = tr.step(&mut space).transfer_bytes();
        let mut rng = DetRng::new(3);
        space.dirty_random(&mut rng, 100);
        let inc = tr.step(&mut space).transfer_bytes();
        assert!(inc < full / 10, "incremental {inc} vs full {full}");
    }
}
