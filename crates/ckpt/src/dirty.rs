//! Incremental checkpointing: dirty pages + VMA-list diff (§V-A).
//!
//! The tracker keeps its own list of region properties as of the previous
//! iteration. Each precopy loop compares that list with the live
//! `vm_area_struct` list, emits insert/resize/remove records, updates the
//! tracking list, and collects (clearing) the dirty pages.

use crate::image::{PageRecord, VmaRecord, PAGE_RECORD_OVERHEAD, VMA_RECORD_LEN};
use crate::wire::{
    WireError, WireReader, WireWriter, UPDATE_HEADER_LEN, VMA_REMOVE_RECORD_LEN, VMA_REMOVE_TAG,
    VMA_RESIZE_RECORD_LEN, VMA_RESIZE_TAG,
};
use dvelm_proc::mem::{AddressSpace, VmaId, PAGE_SIZE};

/// Region-level changes since the previous iteration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VmaDiff {
    /// Newly mapped regions.
    pub inserted: Vec<VmaRecord>,
    /// Regions whose length changed: (id, new page count).
    pub resized: Vec<(VmaId, usize)>,
    /// Unmapped regions.
    pub removed: Vec<VmaId>,
}

impl VmaDiff {
    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.resized.is_empty() && self.removed.is_empty()
    }

    /// Transfer size of the diff records, bytes. The resize/remove terms use
    /// the same constants as [`encode`](Self::encode), so the timing model
    /// charges exactly what the wire format carries (inserted regions are
    /// charged at the full [`VMA_RECORD_LEN`] like any other VMA record).
    pub fn transfer_bytes(&self) -> u64 {
        self.inserted.len() as u64 * VMA_RECORD_LEN
            + self.resized.len() as u64 * VMA_RESIZE_RECORD_LEN
            + self.removed.len() as u64 * VMA_REMOVE_RECORD_LEN
    }

    /// Encode the diff. Each resize record occupies exactly
    /// [`VMA_RESIZE_RECORD_LEN`] bytes (tag, id, new page count, reserved)
    /// and each remove record exactly [`VMA_REMOVE_RECORD_LEN`] bytes (tag,
    /// id); inserted regions use the compact [`VmaRecord`] encoding.
    pub fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.inserted.len() as u32);
        for v in &self.inserted {
            v.encode(w);
        }
        w.put_u32(self.resized.len() as u32);
        for (id, pages) in &self.resized {
            w.put_u32(VMA_RESIZE_TAG);
            w.put_u64(id.0);
            w.put_u64(*pages as u64);
            w.put_u32(0); // reserved
        }
        w.put_u32(self.removed.len() as u32);
        for id in &self.removed {
            w.put_u32(VMA_REMOVE_TAG);
            w.put_u64(id.0);
        }
    }

    /// Decode a diff written by [`encode`](Self::encode).
    pub fn decode(r: &mut WireReader<'_>) -> Result<VmaDiff, WireError> {
        let ni = r.get_u32()?;
        let mut inserted = Vec::with_capacity(ni as usize);
        for _ in 0..ni {
            inserted.push(VmaRecord::decode(r)?);
        }
        let nr = r.get_u32()?;
        let mut resized = Vec::with_capacity(nr as usize);
        for _ in 0..nr {
            expect_tag(r, VMA_RESIZE_TAG)?;
            let id = VmaId(r.get_u64()?);
            let pages = r.get_u64()? as usize;
            let _reserved = r.get_u32()?;
            resized.push((id, pages));
        }
        let nd = r.get_u32()?;
        let mut removed = Vec::with_capacity(nd as usize);
        for _ in 0..nd {
            expect_tag(r, VMA_REMOVE_TAG)?;
            removed.push(VmaId(r.get_u64()?));
        }
        Ok(VmaDiff {
            inserted,
            resized,
            removed,
        })
    }
}

fn expect_tag(r: &mut WireReader<'_>, want: u32) -> Result<(), WireError> {
    let got = r.get_u32()?;
    if got != want {
        return Err(WireError::BadTag(got));
    }
    Ok(())
}

/// One incremental update: region diff + dirty pages.
#[derive(Debug, Clone, Default)]
pub struct IncrementalUpdate {
    pub vma_diff: VmaDiff,
    pub pages: Vec<PageRecord>,
}

impl IncrementalUpdate {
    /// Bytes the real system would transfer for this update.
    pub fn transfer_bytes(&self) -> u64 {
        UPDATE_HEADER_LEN
            + self.vma_diff.transfer_bytes()
            + self.pages.len() as u64 * (PAGE_RECORD_OVERHEAD + PAGE_SIZE)
    }

    /// Whether the update carries nothing.
    pub fn is_empty(&self) -> bool {
        self.vma_diff.is_empty() && self.pages.is_empty()
    }
}

/// Tracking state across precopy iterations.
#[derive(Debug, Clone, Default)]
pub struct IncrementalTracker {
    /// (id, page count) as of the last iteration, in id order — the same
    /// order [`AddressSpace::vmas`] iterates, so one step is a linear merge
    /// walk of two sorted lists.
    tracked: Vec<(VmaId, usize)>,
    /// Scratch for the next tracking list; kept around so steady-state
    /// steps reuse its allocation instead of rebuilding a map.
    next: Vec<(VmaId, usize)>,
    /// Iterations performed.
    pub iterations: u32,
}

impl IncrementalTracker {
    /// A fresh tracker (first `step` returns everything as inserted).
    pub fn new() -> IncrementalTracker {
        IncrementalTracker::default()
    }

    /// One iteration: diff the live VMA list against the tracking list,
    /// update the tracking list, and collect the dirty pages.
    pub fn step(&mut self, space: &mut AddressSpace) -> IncrementalUpdate {
        let mut diff = VmaDiff::default();
        // Both lists are id-ordered: advance two cursors in lockstep.
        let mut old = self.tracked.iter().copied().peekable();
        self.next.clear();
        for vma in space.vmas() {
            let pages = vma.pages.len();
            // Tracked regions with smaller ids no longer exist.
            while let Some((id, _)) = old.next_if(|&(id, _)| id < vma.id) {
                diff.removed.push(id);
            }
            match old.next_if(|&(id, _)| id == vma.id) {
                Some((_, old_pages)) if old_pages != pages => {
                    diff.resized.push((vma.id, pages));
                }
                Some(_) => {}
                None => diff.inserted.push(VmaRecord {
                    id: vma.id,
                    kind: vma.kind,
                    start: vma.start,
                    pages,
                }),
            }
            self.next.push((vma.id, pages));
        }
        for (id, _) in old {
            diff.removed.push(id);
        }
        std::mem::swap(&mut self.tracked, &mut self.next);
        self.iterations += 1;
        IncrementalUpdate {
            vma_diff: diff,
            pages: space.collect_dirty(),
        }
    }

    /// Regions currently tracked.
    pub fn tracked_count(&self) -> usize {
        self.tracked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvelm_proc::mem::VmaKind;
    use dvelm_sim::DetRng;

    #[test]
    fn first_step_reports_everything_inserted() {
        let mut space = AddressSpace::new();
        space.mmap(VmaKind::Text, 4, 1);
        space.mmap(VmaKind::Heap, 8, 2);
        let mut tr = IncrementalTracker::new();
        let up = tr.step(&mut space);
        assert_eq!(up.vma_diff.inserted.len(), 2);
        assert_eq!(up.pages.len(), 12, "all pages dirty initially");
        assert_eq!(tr.tracked_count(), 2);
    }

    #[test]
    fn steady_state_step_is_empty() {
        let mut space = AddressSpace::new();
        space.mmap(VmaKind::Heap, 8, 1);
        let mut tr = IncrementalTracker::new();
        tr.step(&mut space);
        let up = tr.step(&mut space);
        assert!(up.is_empty());
        assert_eq!(up.transfer_bytes(), 16, "just the update header");
    }

    #[test]
    fn mmap_between_steps_is_inserted() {
        let mut space = AddressSpace::new();
        space.mmap(VmaKind::Heap, 8, 1);
        let mut tr = IncrementalTracker::new();
        tr.step(&mut space);
        let id = space.mmap(VmaKind::Anon, 5, 2);
        let up = tr.step(&mut space);
        assert_eq!(up.vma_diff.inserted.len(), 1);
        assert_eq!(up.vma_diff.inserted[0].id, id);
        assert_eq!(up.pages.len(), 5, "new region's pages are dirty");
    }

    #[test]
    fn munmap_between_steps_is_removed() {
        let mut space = AddressSpace::new();
        let id = space.mmap(VmaKind::Anon, 5, 1);
        let mut tr = IncrementalTracker::new();
        tr.step(&mut space);
        space.munmap(id);
        let up = tr.step(&mut space);
        assert_eq!(up.vma_diff.removed, vec![id]);
        assert!(up.pages.is_empty());
    }

    #[test]
    fn resize_between_steps_is_reported() {
        let mut space = AddressSpace::new();
        let id = space.mmap(VmaKind::Heap, 4, 1);
        let mut tr = IncrementalTracker::new();
        tr.step(&mut space);
        space.resize(id, 10, 2);
        let up = tr.step(&mut space);
        assert_eq!(up.vma_diff.resized, vec![(id, 10)]);
        assert_eq!(up.pages.len(), 6, "grown pages are dirty");
    }

    #[test]
    fn diff_roundtrips_and_record_sizes_match_the_constants() {
        use dvelm_proc::mem::VmaKind;
        let diff = VmaDiff {
            inserted: vec![VmaRecord {
                id: VmaId(9),
                kind: VmaKind::Anon,
                start: 0x7000,
                pages: 3,
            }],
            resized: vec![(VmaId(2), 40), (VmaId(5), 1)],
            removed: vec![VmaId(3)],
        };
        let mut w = WireWriter::new();
        diff.encode(&mut w);
        let with_all = w.len();
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(VmaDiff::decode(&mut r).unwrap(), diff);
        assert_eq!(r.remaining(), 0);

        // The wire cost of each record class equals the constant the
        // transfer model charges: strip the records and count the delta.
        let mut w = WireWriter::new();
        VmaDiff {
            resized: Vec::new(),
            ..diff.clone()
        }
        .encode(&mut w);
        assert_eq!(
            (with_all - w.len()) as u64,
            diff.resized.len() as u64 * VMA_RESIZE_RECORD_LEN
        );
        let mut w = WireWriter::new();
        VmaDiff {
            removed: Vec::new(),
            ..diff.clone()
        }
        .encode(&mut w);
        assert_eq!(
            (with_all - w.len()) as u64,
            diff.removed.len() as u64 * VMA_REMOVE_RECORD_LEN
        );
    }

    #[test]
    fn diff_decode_rejects_a_foreign_tag() {
        let diff = VmaDiff {
            inserted: Vec::new(),
            resized: vec![(VmaId(1), 2)],
            removed: Vec::new(),
        };
        let mut w = WireWriter::new();
        diff.encode(&mut w);
        let mut buf = w.into_bytes();
        buf[4] ^= 0xff; // corrupt the first record's tag
        let mut r = WireReader::new(&buf);
        assert!(matches!(VmaDiff::decode(&mut r), Err(WireError::BadTag(_))));
    }

    #[test]
    fn tracker_handles_interleaved_insert_resize_remove() {
        // Exercise the merge walk: removals before, between and after live
        // ids in one step.
        let mut space = AddressSpace::new();
        let a = space.mmap(VmaKind::Anon, 2, 1);
        let b = space.mmap(VmaKind::Anon, 3, 2);
        let c = space.mmap(VmaKind::Anon, 4, 3);
        let d = space.mmap(VmaKind::Anon, 5, 4);
        let mut tr = IncrementalTracker::new();
        tr.step(&mut space);
        space.munmap(a);
        space.munmap(c);
        space.resize(b, 30, 5);
        let e = space.mmap(VmaKind::Heap, 6, 6);
        space.munmap(d);
        let up = tr.step(&mut space);
        assert_eq!(up.vma_diff.removed, vec![a, c, d]);
        assert_eq!(up.vma_diff.resized, vec![(b, 30)]);
        assert_eq!(
            up.vma_diff
                .inserted
                .iter()
                .map(|v| v.id)
                .collect::<Vec<_>>(),
            vec![e]
        );
        assert_eq!(tr.tracked_count(), 2);
    }

    #[test]
    fn update_bytes_shrink_as_dirty_rate_drops() {
        // The precopy premise: with a fixed dirty rate and shrinking windows,
        // later iterations ship less.
        let mut space = AddressSpace::new();
        space.mmap(VmaKind::Heap, 4096, 1);
        let mut tr = IncrementalTracker::new();
        let full = tr.step(&mut space).transfer_bytes();
        let mut rng = DetRng::new(3);
        space.dirty_random(&mut rng, 100);
        let inc = tr.step(&mut space).transfer_bytes();
        assert!(inc < full / 10, "incremental {inc} vs full {full}");
    }
}
