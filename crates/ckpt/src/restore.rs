//! Restart: rebuild a process from a checkpoint image and apply incremental
//! updates — the destination side of the precopy protocol.

use crate::dirty::IncrementalUpdate;
use crate::image::CheckpointImage;
use dvelm_proc::{FdEntry, Process, Thread};

/// Rebuild a process skeleton from a full checkpoint image. Sockets are
/// *not* restored here (BLCR semantics); the socket-migration layer attaches
/// them afterwards and rewrites the fd table.
pub fn restore_process(img: &CheckpointImage) -> Process {
    let mut p = Process::new(img.meta.pid, img.meta.name.clone(), 0, 0);
    // Throw away the default layout; the image defines the address space.
    let default_vmas: Vec<_> = p.addr_space.vmas().map(|v| v.id).collect();
    for id in default_vmas {
        p.addr_space.munmap(id);
    }
    for v in &img.vmas {
        p.addr_space.install_vma(v.id, v.kind, v.start, v.pages);
    }
    for page in &img.pages {
        p.addr_space.apply_page(*page);
    }
    p.threads = (1..=img.meta.thread_count as u64)
        .map(Thread::new)
        .collect();
    for t in &mut p.threads {
        t.freeze();
    }
    for (fd, path, offset) in &img.freeze.files {
        p.fds.insert_at(
            dvelm_proc::Fd(*fd),
            FdEntry::File {
                path: path.clone(),
                offset: *offset,
            },
        );
    }
    p.cpu_share = img.meta.cpu_share;
    p
}

/// Apply one incremental update to a restoring process (the destination's
/// helper applies updates "before the actual execution context gets
/// migrated", §III-A).
pub fn apply_update(p: &mut Process, update: &IncrementalUpdate) {
    for v in &update.vma_diff.inserted {
        p.addr_space.install_vma(v.id, v.kind, v.start, v.pages);
    }
    for (id, pages) in &update.vma_diff.resized {
        p.addr_space.restore_resize(*id, *pages);
    }
    for id in &update.vma_diff.removed {
        p.addr_space.munmap(*id);
    }
    for page in &update.pages {
        p.addr_space.apply_page(*page);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::{full_checkpoint, incremental_update};
    use crate::dirty::IncrementalTracker;
    use dvelm_proc::mem::VmaKind;
    use dvelm_proc::Pid;
    use dvelm_sim::DetRng;

    #[test]
    fn full_restore_reproduces_content_hash() {
        let mut src = Process::new(Pid(9), "zone_serv9", 64, 512);
        let mut rng = DetRng::new(2);
        src.do_work(&mut rng, 300);
        let img = full_checkpoint(&src);
        let dst = restore_process(&img);
        assert_eq!(dst.addr_space.content_hash(), src.addr_space.content_hash());
        assert_eq!(dst.pid, src.pid);
        assert_eq!(dst.threads.len(), src.threads.len());
        assert!(dst.is_frozen(), "restored process awaits resume");
    }

    #[test]
    fn precopy_stream_converges_to_identical_memory() {
        // Source runs while updates stream to the destination — the essence
        // of live migration. After the final (quiescent) update the two
        // address spaces must match.
        let mut src = Process::new(Pid(3), "srv", 32, 1024);
        let mut tracker = IncrementalTracker::new();
        let mut rng = DetRng::new(7);

        // Initial full state via the first incremental step (everything
        // inserted + all pages).
        let first = incremental_update(&mut tracker, &mut src);
        let mut dst = Process::new(Pid(3), "srv", 0, 0);
        let ids: Vec<_> = dst.addr_space.vmas().map(|v| v.id).collect();
        for id in ids {
            dst.addr_space.munmap(id);
        }
        apply_update(&mut dst, &first);

        // Several iterations with ongoing mutation, including VMA churn.
        for i in 0..5 {
            src.do_work(&mut rng, 100);
            if i == 2 {
                src.addr_space.mmap(VmaKind::Anon, 16, 42);
            }
            let up = incremental_update(&mut tracker, &mut src);
            apply_update(&mut dst, &up);
        }
        // Freeze: no more writes; final update drains the last dirty pages.
        let final_up = incremental_update(&mut tracker, &mut src);
        apply_update(&mut dst, &final_up);
        assert_eq!(dst.addr_space.content_hash(), src.addr_space.content_hash());
    }

    #[test]
    fn restore_recreates_files() {
        let mut src = Process::new(Pid(1), "p", 4, 4);
        src.fds.insert(FdEntry::File {
            path: "/srv/map.bsp".into(),
            offset: 123,
        });
        let img = full_checkpoint(&src);
        let dst = restore_process(&img);
        let files: Vec<_> = dst
            .fds
            .iter()
            .filter_map(|(fd, e)| match e {
                FdEntry::File { path, offset } => Some((fd.0, path.clone(), *offset)),
                _ => None,
            })
            .collect();
        assert_eq!(files, vec![(0, "/srv/map.bsp".to_string(), 123)]);
    }

    #[test]
    fn encoded_image_restores_identically() {
        let mut src = Process::new(Pid(5), "p", 8, 32);
        let mut rng = DetRng::new(11);
        src.do_work(&mut rng, 50);
        let img = full_checkpoint(&src);
        let img2 = CheckpointImage::decode(&img.encode()).unwrap();
        let dst = restore_process(&img2);
        assert_eq!(dst.addr_space.content_hash(), src.addr_space.content_hash());
    }
}
