//! BLCR-style checkpoint/restart (§III-A, §V-A).
//!
//! The paper extends the Berkeley Lab Checkpoint/Restart library with live
//! (incremental) checkpointing. This crate reproduces that layer:
//!
//! * a **checkpoint image format** with an explicit wire encoding — byte
//!   counts are first-class because they drive the timing model;
//! * **full checkpoints** (the first precopy transfer: memory map + all
//!   pages);
//! * **incremental updates** — dirty pages collected via the dirty bit plus a
//!   VMA-list diff against a tracking list (insertions, resizes, removals);
//! * **freeze-phase records** — the open-file table (paths only, file
//!   contents are shared per §II-A), thread registers/relations and signal
//!   handlers, exactly the items the leader thread and its followers dump in
//!   Fig. 3;
//! * **restart** — rebuild a [`Process`](dvelm_proc::Process) from the image
//!   and apply incremental updates, with content-hash verification.
//!
//! Sockets are deliberately *absent* here: stock BLCR "simply omits" them.
//! Socket migration is the contribution of the paper and lives in
//! `dvelm-migrate`.

pub mod checkpoint;
pub mod dirty;
pub mod image;
pub mod restore;
pub mod wire;

pub use checkpoint::{freeze_records, full_checkpoint, incremental_update};
pub use dirty::{IncrementalTracker, IncrementalUpdate, VmaDiff};
pub use image::{
    CheckpointImage, FreezeImage, PageRecord, ProcessMeta, VmaRecord, PAGE_RECORD_OVERHEAD,
    VMA_RECORD_LEN,
};
pub use restore::{apply_update, restore_process};
pub use wire::{
    WireError, WireReader, WireWriter, UPDATE_HEADER_LEN, VMA_REMOVE_RECORD_LEN,
    VMA_RESIZE_RECORD_LEN,
};
