//! A small explicit wire encoder/decoder for checkpoint images.
//!
//! We do not use a serialization framework on purpose: the number of bytes a
//! record occupies on the wire is an input to the migration timing model, so
//! the format is spelled out, fixed-endian (little) and stable.

/// Transfer size of one VMA-resize diff record, bytes: record tag `u32` +
/// region id `u64` + new page count `u64` + reserved `u32`. Shared between
/// the [`VmaDiff`](crate::dirty::VmaDiff) codec and its transfer-size
/// accounting so the timing model charges exactly what the wire carries.
pub const VMA_RESIZE_RECORD_LEN: u64 = 24;
/// Transfer size of one VMA-remove diff record, bytes: record tag `u32` +
/// region id `u64`.
pub const VMA_REMOVE_RECORD_LEN: u64 = 12;
/// Transfer size of the incremental-update header, bytes: iteration `u32` +
/// three `u32` record counts (inserted / resized+removed / pages).
pub const UPDATE_HEADER_LEN: u64 = 16;

/// Record tag opening a VMA-resize diff record.
pub const VMA_RESIZE_TAG: u32 = 0x5253_5a31; // "RSZ1"
/// Record tag opening a VMA-remove diff record.
pub const VMA_REMOVE_TAG: u32 = 0x524d_5631; // "RMV1"

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> WireWriter {
        WireWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and take the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes.
    Truncated,
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A record opened with an unexpected tag.
    BadTag(u32),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated wire data"),
            WireError::BadUtf8 => write!(f, "invalid UTF-8 in wire string"),
            WireError::BadTag(t) => write!(f, "unexpected record tag {t:#x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Sequential decoder over a byte slice.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Start decoding `buf`.
    pub fn new(buf: &'a [u8]) -> WireReader<'a> {
        WireReader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("length checked"),
        ))
    }

    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("length checked"),
        ))
    }

    pub fn get_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("length checked"),
        ))
    }

    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("length checked"),
        ))
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| WireError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_f64(3.5);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f64().unwrap(), 3.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn string_roundtrip() {
        let mut w = WireWriter::new();
        w.put_str("zone_serv17");
        w.put_str("");
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_str().unwrap(), "zone_serv17");
        assert_eq!(r.get_str().unwrap(), "");
    }

    #[test]
    fn truncated_is_detected() {
        let mut w = WireWriter::new();
        w.put_u64(1);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf[..7]);
        assert_eq!(r.get_u64(), Err(WireError::Truncated));
    }

    #[test]
    fn truncated_string_is_detected() {
        let mut w = WireWriter::new();
        w.put_str("hello");
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf[..6]);
        assert_eq!(r.get_bytes().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn bad_utf8_is_detected() {
        let mut w = WireWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        let buf = w.into_bytes();
        let mut r = WireReader::new(&buf);
        assert_eq!(r.get_str(), Err(WireError::BadUtf8));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn mixed_roundtrip(vals in proptest::collection::vec((0u64..u64::MAX, ".{0,32}"), 0..50)) {
            let mut w = WireWriter::new();
            for (n, s) in &vals {
                w.put_u64(*n);
                w.put_str(s);
            }
            let buf = w.into_bytes();
            let mut r = WireReader::new(&buf);
            for (n, s) in &vals {
                prop_assert_eq!(r.get_u64().unwrap(), *n);
                prop_assert_eq!(r.get_str().unwrap(), s.as_str());
            }
            prop_assert_eq!(r.remaining(), 0);
        }
    }
}
