//! Checkpoint construction entry points.

use crate::dirty::{IncrementalTracker, IncrementalUpdate};
use crate::image::{freeze_image_of, CheckpointImage, FreezeImage, ProcessMeta, VmaRecord};
use dvelm_proc::mem::PageRef;
use dvelm_proc::Process;

/// Take a full checkpoint: memory map, *all* page contents, freeze records.
/// This is also the first transfer of the precopy phase.
pub fn full_checkpoint(p: &Process) -> CheckpointImage {
    let vmas: Vec<VmaRecord> = p
        .addr_space
        .vmas()
        .map(|v| VmaRecord {
            id: v.id,
            kind: v.kind,
            start: v.start,
            pages: v.pages.len(),
        })
        .collect();
    let pages: Vec<PageRef> = p
        .addr_space
        .vmas()
        .flat_map(|v| {
            v.pages.iter().enumerate().map(move |(i, pg)| PageRef {
                vma: v.id,
                index: i,
                fingerprint: pg.fingerprint,
            })
        })
        .collect();
    CheckpointImage {
        meta: ProcessMeta {
            pid: p.pid,
            name: p.name.clone(),
            thread_count: p.threads.len() as u32,
            cpu_share: p.cpu_share,
        },
        vmas,
        pages,
        freeze: freeze_image_of(p),
    }
}

/// One incremental precopy iteration over the process address space. Note
/// this intentionally does not clear dirty bits outside the tracker: the
/// tracker owns the iteration protocol.
pub fn incremental_update(tracker: &mut IncrementalTracker, p: &mut Process) -> IncrementalUpdate {
    tracker.step(&mut p.addr_space)
}

/// Freeze-phase records only (fd table walk + threads + signal handlers),
/// taken after the final barrier of Fig. 3.
pub fn freeze_records(p: &Process) -> FreezeImage {
    freeze_image_of(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvelm_proc::Pid;
    use dvelm_sim::DetRng;

    #[test]
    fn full_checkpoint_covers_every_page() {
        let p = Process::new(Pid(1), "srv", 16, 64);
        let img = full_checkpoint(&p);
        assert_eq!(img.vmas.len(), 3);
        assert_eq!(img.pages.len(), 16 + 64 + 64);
        assert_eq!(img.meta.pid, Pid(1));
    }

    #[test]
    fn full_checkpoint_does_not_clear_dirty_bits() {
        let p = Process::new(Pid(1), "srv", 4, 4);
        let before = p.addr_space.dirty_count();
        let _ = full_checkpoint(&p);
        assert_eq!(p.addr_space.dirty_count(), before);
    }

    #[test]
    fn incremental_after_full_sees_only_new_writes() {
        let mut p = Process::new(Pid(1), "srv", 16, 256);
        let mut tr = IncrementalTracker::new();
        let first = incremental_update(&mut tr, &mut p);
        assert_eq!(first.pages.len(), p.addr_space.total_pages());
        let mut rng = DetRng::new(1);
        p.do_work(&mut rng, 20);
        let second = incremental_update(&mut tr, &mut p);
        assert!(second.pages.len() <= 20);
        assert!(!second.pages.is_empty());
        assert!(second.vma_diff.is_empty());
    }
}
