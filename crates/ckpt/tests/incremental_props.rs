//! Property tests of the incremental checkpoint stream: for *any* sequence
//! of address-space operations interleaved with incremental updates, the
//! destination replica converges to the source once the source quiesces.

use dvelm_ckpt::{apply_update, incremental_update, IncrementalTracker};
use dvelm_proc::mem::VmaKind;
use dvelm_proc::{Pid, Process};
use dvelm_sim::DetRng;
use proptest::prelude::*;

/// One mutation of the source address space.
#[derive(Debug, Clone)]
enum Op {
    /// Dirty n random pages.
    Work(usize),
    /// Map a new region of n pages.
    Mmap(usize),
    /// Unmap the i-th currently mapped region (modulo count).
    Munmap(usize),
    /// Resize the i-th region to n pages.
    Resize(usize, usize),
    /// Ship an incremental update to the replica.
    Sync,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..200).prop_map(Op::Work),
        (1usize..64).prop_map(Op::Mmap),
        (0usize..8).prop_map(Op::Munmap),
        ((0usize..8), (1usize..64)).prop_map(|(i, n)| Op::Resize(i, n)),
        Just(Op::Sync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn replica_converges_after_quiesce(
        seed in 0u64..100_000,
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut rng = DetRng::new(seed);
        let mut src = Process::new(Pid(1), "p", 8, 64);
        let mut tracker = IncrementalTracker::new();

        // Replica starts from the first update (full state).
        let mut dst = Process::new(Pid(1), "p", 0, 0);
        let ids: Vec<_> = dst.addr_space.vmas().map(|v| v.id).collect();
        for id in ids {
            dst.addr_space.munmap(id);
        }
        let first = incremental_update(&mut tracker, &mut src);
        apply_update(&mut dst, &first);

        for op in &ops {
            match op {
                Op::Work(n) => src.do_work(&mut rng, *n),
                Op::Mmap(n) => {
                    src.addr_space.mmap(VmaKind::Anon, *n, rng.next_u64());
                }
                Op::Munmap(i) => {
                    let live: Vec<_> = src.addr_space.vmas().map(|v| v.id).collect();
                    if !live.is_empty() {
                        src.addr_space.munmap(live[i % live.len()]);
                    }
                }
                Op::Resize(i, n) => {
                    let live: Vec<_> = src.addr_space.vmas().map(|v| v.id).collect();
                    if !live.is_empty() {
                        src.addr_space.resize(live[i % live.len()], *n, rng.next_u64());
                    }
                }
                Op::Sync => {
                    let up = incremental_update(&mut tracker, &mut src);
                    apply_update(&mut dst, &up);
                }
            }
        }
        // Quiesce: one final update drains everything outstanding.
        let final_up = incremental_update(&mut tracker, &mut src);
        apply_update(&mut dst, &final_up);

        prop_assert_eq!(
            dst.addr_space.content_hash(),
            src.addr_space.content_hash(),
            "replica diverged after {} ops",
            ops.len()
        );
        prop_assert_eq!(dst.addr_space.vma_count(), src.addr_space.vma_count());
        prop_assert_eq!(dst.addr_space.total_pages(), src.addr_space.total_pages());

        // And once quiescent, further updates are empty.
        let idle = incremental_update(&mut tracker, &mut src);
        prop_assert!(idle.is_empty(), "quiescent source produced {idle:?}");
    }

    /// Update transfer sizes are bounded by what actually changed: syncing
    /// twice in a row without intervening work ships only the header.
    #[test]
    fn no_change_no_bytes(seed in 0u64..100_000, work in 1usize..300) {
        let mut rng = DetRng::new(seed);
        let mut src = Process::new(Pid(1), "p", 8, 256);
        let mut tracker = IncrementalTracker::new();
        let _ = incremental_update(&mut tracker, &mut src);
        src.do_work(&mut rng, work);
        let busy = incremental_update(&mut tracker, &mut src);
        prop_assert!(!busy.is_empty());
        let idle = incremental_update(&mut tracker, &mut src);
        prop_assert_eq!(idle.transfer_bytes(), 16, "idle update is just the header");
    }
}
