//! R2 fixture: the PR 3 stale-clock incident, minimized. A clock-less
//! convenience wrapper invents `SimTime::ZERO` for a clock-threaded API, so
//! every xlate rule it installs is born stale and TTL GC evicts it while
//! packets are still matching it. A second path mutates the TTL stamp
//! without taking `now` at all.
//! Linted under the virtual path `crates/stack/src/fixture.rs`.

use dvelm_sim::SimTime;

/// An address-translation rule with its TTL liveness stamp.
pub struct TimedRule {
    /// Sim time of the last packet that matched this rule.
    pub last_hit: SimTime,
}

/// A miniature xlate table.
pub struct Table {
    rules: Vec<TimedRule>,
}

impl Table {
    /// Installs a rule, stamping it live at `now`. (Clean: the clock is
    /// threaded through.)
    pub fn install_at(&mut self, mut rule: TimedRule, now: SimTime) {
        rule.last_hit = now;
        self.rules.push(rule);
    }

    /// BAD (R2b): the clock-less wrapper PR 3 shipped — `SimTime::ZERO` fed
    /// to the clock-threaded call site.
    pub fn install(&mut self, rule: TimedRule) {
        self.install_at(rule, SimTime::ZERO);
    }

    /// BAD (R2a): refreshes the TTL stamp but takes no `now` parameter, so
    /// the function can only invent a clock.
    pub fn refresh_all(&mut self) {
        for rule in &mut self.rules {
            rule.last_hit = SimTime::ZERO;
        }
    }
}
