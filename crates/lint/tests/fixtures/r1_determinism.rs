//! R1 fixture: every nondeterminism source a sim-facing crate must not use.
//! Linted under the virtual path `crates/stack/src/fixture.rs`.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::{Instant, SystemTime};

/// Latency samples keyed by peer — RandomState iteration order leaks into
/// anything that iterates this map.
pub struct Samples {
    by_peer: HashMap<u32, u64>,
    seen: HashSet<u32>,
}

impl Samples {
    /// Stamps a sample off the wall clock and unseeded randomness.
    pub fn stamp(&mut self, peer: u32) -> u64 {
        let started = Instant::now();
        let wall = SystemTime::now();
        let jitter = thread_rng().next_u64() % 3;
        let _ = (started, wall);
        self.seen.insert(peer);
        *self.by_peer.entry(peer).or_insert(jitter)
    }
}
