//! R5 fixture: undocumented public API in the contribution layer.
//! Linted under the virtual path `crates/stack/src/fixture.rs`.

pub struct RouteEntry {
    pub port: u16,
    /// Documented field — not flagged.
    pub hits: u64,
}

pub fn lookup(_port: u16) -> Option<RouteEntry> {
    None
}

pub(crate) fn internal() {}

pub const MAX_ROUTES: usize = 64;
