//! R4 fixture: process-aborting calls on a migration hot path. Each one
//! tears down the whole simulated cluster instead of surfacing a typed
//! abort through the effect pipeline.
//! Linted under the virtual path `crates/core/src/fixture.rs`.

fn checkpoint_len(sizes: &[u64], idx: usize) -> u64 {
    let len = sizes.get(idx).unwrap();
    let doubled = sizes.get(idx).expect("index in range");
    if *len == 0 {
        panic!("empty checkpoint");
    }
    match *doubled {
        0 => unreachable!("zero filtered above"),
        n => n + *len,
    }
}

fn ship(_bytes: u64) {
    todo!("write the ship path")
}
