//! R8 mini-root matrix test: pins `Stalled` (so only `Torn` is missing
//! its abort-row assertion).

#[test]
fn stall_abort_reported() {
    let reason = AbortReason::Stalled;
    assert_eq!(reason, AbortReason::Stalled);
}
