//! R8 mini-root vocabulary: two phases, two abort reasons. `Freeze` is
//! entered without an abort row; `Torn` is emittable but no matrix test
//! asserts it.

enum PhaseId {
    Precopy,
    Freeze,
}

enum AbortReason {
    Stalled,
    Torn,
}
