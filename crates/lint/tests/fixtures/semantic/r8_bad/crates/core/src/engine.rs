//! R8 mini-root engine: enters `Precopy` (abort row: `abort_precopy` plus
//! a `MigrationAborted` literal) and `Freeze` (no abort row — the phase
//! finding). `AbortReason::Stalled` is asserted by the matrix test;
//! `AbortReason::Torn` is emittable but asserted nowhere — the reason
//! finding.

struct Engine {
    effects: Vec<Effect>,
}

impl Engine {
    fn step_precopy(&mut self) {
        self.effects.push(Effect::PhaseEntered(PhaseId::Precopy));
    }

    fn step_freeze(&mut self) {
        self.effects.push(Effect::PhaseEntered(PhaseId::Freeze));
    }

    fn abort_precopy(&mut self) -> MigrationAborted {
        MigrationAborted {
            phase: PhaseId::Precopy,
            reason: AbortReason::Stalled,
        }
    }

    fn fail_freeze(&mut self) -> AbortReason {
        AbortReason::Torn
    }
}
