//! R9 mini-root: the PR-3 stale-clock shape, one hop removed and outside
//! `crates/stack`, so the lexical R2 cannot see it — only the call-graph
//! taint can. `refresh`'s `now` seeds the taint, `sweep`'s `t` inherits it,
//! and `tick` feeds the epoch constant in at the top.

struct Cache {
    last_hit: SimTime,
}

impl Cache {
    fn refresh(&mut self, now: SimTime) {
        self.last_hit = now;
    }

    fn sweep(&mut self, t: SimTime) {
        self.refresh(t);
    }

    fn tick(&mut self) {
        self.sweep(SimTime::ZERO);
    }
}
