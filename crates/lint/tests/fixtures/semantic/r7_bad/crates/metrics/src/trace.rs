//! The trace recorder of the R7 mini-root: names every variant, so the
//! only findings come from the runtime dispatcher and the dead variant.

struct TraceRecorder {
    events: u64,
}

impl TraceRecorder {
    fn observe(&mut self, e: &Effect) {
        match e {
            Effect::PhaseEntered => self.events += 1,
            Effect::Shipped => self.events += 1,
            Effect::QueuePressure => self.events += 1,
            Effect::Aborted => self.events += 1,
        }
    }
}
