//! Construction census for the R7 mini-root: everything but `Aborted` is
//! built here.

fn emit_all(q: &mut Vec<Effect>) {
    q.push(Effect::PhaseEntered);
    q.push(Effect::Shipped);
    q.push(Effect::QueuePressure);
}
