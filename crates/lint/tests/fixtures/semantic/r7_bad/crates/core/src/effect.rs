//! R7 mini-root: the effect vocabulary. `QueuePressure` is constructed in
//! `emit.rs` but `World::apply_effect` never names it (missing arm);
//! `Aborted` is named by every dispatcher but constructed nowhere (dead
//! variant).

enum Effect {
    PhaseEntered,
    Shipped,
    QueuePressure,
    Aborted,
}
