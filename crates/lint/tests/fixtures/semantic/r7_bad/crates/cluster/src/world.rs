//! The runtime dispatcher of the R7 mini-root: routes every variant
//! except `QueuePressure` — the missing arm R7 must report.

struct World {
    shipped: u64,
}

impl World {
    fn apply_effect(&mut self, e: Effect) {
        match e {
            Effect::PhaseEntered => {}
            Effect::Shipped => self.shipped += 1,
            Effect::Aborted => self.shipped = 0,
        }
    }
}
