//! R3 fixture: a dispatcher over the cross-layer `Effect` enum hiding
//! future variants behind a wildcard arm. PR 3's capture-pressure
//! misattribution hid behind exactly this shape — a new variant fell into
//! the `_` arm and was silently routed wrong.
//! Linted under the virtual path `crates/metrics/src/fixture.rs`.

use dvelm_migrate::Effect;

fn describe(effect: &Effect) -> &'static str {
    match effect {
        Effect::SuspendApp => "suspend",
        Effect::ResumeApp => "resume",
        Effect::Complete(_) => "complete",
        _ => "something else",
    }
}
