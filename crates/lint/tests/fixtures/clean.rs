//! Clean fixture: the shapes the rules demand. Must produce zero
//! diagnostics under the strictest virtual path,
//! `crates/stack/src/fixture.rs` (in scope for R1, R2, R4 and R5).

use dvelm_sim::SimTime;
use std::collections::BTreeMap;

/// An entry with a TTL liveness stamp, refreshed only through a threaded
/// clock.
pub struct Entry {
    /// Sim time of the last hit.
    pub last_hit: SimTime,
}

/// A table of entries in deterministic iteration order.
pub struct Table {
    entries: BTreeMap<u16, Entry>,
}

impl Table {
    /// Refreshes `port`'s liveness stamp at `now`.
    pub fn refresh_at(&mut self, port: u16, now: SimTime) {
        if let Some(e) = self.entries.get_mut(&port) {
            e.last_hit = now;
        }
    }
}
