//! Bad: simulation state shared across threads through primitives instead
//! of the parallel core's mailbox/barrier API (R6 shard-isolation).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-shard results collected through a lock instead of per-task mailboxes:
/// the drain order is whatever the OS scheduler produced, so the merged
/// stream differs run to run and across thread counts.
pub struct EffectCollector {
    merged: Arc<Mutex<Vec<String>>>,
    delivered: AtomicU64,
}

impl EffectCollector {
    pub fn record(&self, line: String) {
        self.merged.lock().unwrap().push(line);
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }
}

/// Ad-hoc fan-out that bypasses the worker pool's barrier entirely.
pub fn fan_out(lines: Vec<String>, sink: &EffectCollector) {
    std::thread::scope(|s| {
        for line in lines {
            s.spawn(|| sink.record(line));
        }
    });
}
