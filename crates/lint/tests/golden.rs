//! Golden-fixture tests: each bad fixture, linted under a virtual in-scope
//! path, must produce exactly the rendered diagnostics in its `.expected`
//! file — same rule, `file:line`, message and allow key. Because every bad
//! fixture yields at least one unallowed finding, `dvelm-lint check` exits
//! non-zero on a tree containing it (proved end-to-end below); the clean
//! fixture must stay silent.
//!
//! To regenerate the `.expected` files after an intentional rule change:
//! `UPDATE_EXPECT=1 cargo test -p dvelm-lint --test golden` (then review
//! the diff).

use dvelm_lint::{check_workspace, lint_file, Allowlist, Severity};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lint `fixture` as if it sat at `virtual_path` and render one line per
/// diagnostic.
fn render(fixture: &str, virtual_path: &str) -> String {
    let src = std::fs::read_to_string(fixtures_dir().join(fixture))
        .unwrap_or_else(|e| panic!("read fixture {fixture}: {e}"));
    lint_file(virtual_path, &src)
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

/// Compare against the fixture's `.expected` file (or rewrite it under
/// `UPDATE_EXPECT=1`), and require `rule` among the findings.
fn check_golden(fixture: &str, virtual_path: &str, rule: &str) {
    let rendered = render(fixture, virtual_path);
    assert!(
        rendered.lines().any(|l| l.contains(&format!("[{rule}/"))),
        "bad fixture {fixture} must trip {rule}; got:\n{rendered}"
    );
    let expected_path = fixtures_dir().join(fixture).with_extension("expected");
    if std::env::var_os("UPDATE_EXPECT").is_some() {
        std::fs::write(&expected_path, format!("{rendered}\n")).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", expected_path.display()));
    assert_eq!(
        rendered.trim_end(),
        expected.trim_end(),
        "{fixture} diagnostics drifted from the golden file \
         (UPDATE_EXPECT=1 regenerates after review)"
    );
}

#[test]
fn r1_determinism_fixture() {
    check_golden("r1_determinism.rs", "crates/stack/src/fixture.rs", "R1");
}

#[test]
fn r2_stale_clock_fixture() {
    // The minimized PR-3 xlate repro: both the clock-less wrapper feeding
    // `SimTime::ZERO` to `install_at` (R2b) and the `now`-less TTL refresh
    // (R2a) must be flagged.
    check_golden("r2_stale_clock.rs", "crates/stack/src/fixture.rs", "R2");
    let rendered = render("r2_stale_clock.rs", "crates/stack/src/fixture.rs");
    assert!(
        rendered.contains("fn:Table::install") && rendered.contains("SimTime::ZERO"),
        "R2b must point at the clock-less wrapper:\n{rendered}"
    );
    assert!(
        rendered.contains("refresh_all"),
        "R2a must point at the now-less TTL refresh:\n{rendered}"
    );
}

#[test]
fn r3_wildcard_fixture() {
    check_golden("r3_wildcard.rs", "crates/metrics/src/fixture.rs", "R3");
}

#[test]
fn r4_panic_fixture() {
    check_golden("r4_panic.rs", "crates/core/src/fixture.rs", "R4");
}

#[test]
fn r5_undoc_fixture() {
    check_golden("r5_undoc.rs", "crates/stack/src/fixture.rs", "R5");
}

#[test]
fn r6_shard_fixture() {
    check_golden("r6_shard.rs", "crates/cluster/src/fixture.rs", "R6");
    // The sanctioned pool module is the one place these primitives belong:
    // the same source under the exempt path lints clean.
    let rendered = render("r6_shard.rs", "crates/sim/src/par.rs");
    assert!(
        rendered.is_empty(),
        "crates/sim/src/par.rs is R6-exempt:\n{rendered}"
    );
}

#[test]
fn clean_fixture_is_silent() {
    let rendered = render("clean.rs", "crates/stack/src/fixture.rs");
    assert!(
        rendered.is_empty(),
        "clean fixture must lint clean:\n{rendered}"
    );
}

#[test]
fn out_of_scope_path_silences_scoped_rules() {
    // The same R1 fixture under a path outside the determinism scope.
    let rendered = render("r1_determinism.rs", "crates/metrics/src/fixture.rs");
    assert!(rendered.is_empty(), "R1 is scoped:\n{rendered}");
}

/// End-to-end through the workspace walker: a fake repo root containing one
/// bad fixture yields unallowed error findings (strict `check` exits
/// non-zero), and the allowlist suppresses exactly the keyed finding.
#[test]
fn check_workspace_finds_planted_fixture() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("golden_root");
    let src_dir = root.join("crates/stack/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::copy(
        fixtures_dir().join("r2_stale_clock.rs"),
        src_dir.join("fixture.rs"),
    )
    .unwrap();

    let report = check_workspace(&root, &Allowlist::default()).unwrap();
    assert_eq!(report.files, 1);
    assert!(
        report
            .findings
            .iter()
            .any(|d| d.rule == "R2" && d.severity == Severity::Error),
        "the planted stale-clock fixture must surface through the walker"
    );
    // The semantic layer runs through the walker too: the same planted
    // constant is a clock-dataflow hit (the `install` wrapper feeds
    // `SimTime::ZERO` into `install_at`'s tainted `now` position).
    assert!(
        report
            .findings
            .iter()
            .any(|d| d.rule == "R9" && d.key == "fn:Table::install"),
        "R9 must flag the planted clock constant through the call graph: {:?}",
        report.findings
    );

    // Allowlisting the sites by their stable impl-qualified keys silences
    // the check.
    let allow = Allowlist::parse(
        "R2 crates/stack/src/fixture.rs fn:Table::install\n\
         R2 crates/stack/src/fixture.rs fn:Table::refresh_all\n\
         R9 crates/stack/src/fixture.rs fn:Table::install\n",
    );
    let report = check_workspace(&root, &allow).unwrap();
    assert!(
        report.findings.is_empty(),
        "allowlisted findings must be suppressed: {:?}",
        report.findings
    );
    assert_eq!(report.allowed, 3);
    assert!(report.stale_allows.is_empty());
}
