//! Semantic-layer golden tests: each `fixtures/semantic/<rule>_bad/` dir is
//! a miniature workspace root (real crate paths, fake content) whose only
//! findings must come from the rule under test — so deleting the rule from
//! [`dvelm_lint::semantic::run`] makes the fixture lint clean, proving the
//! finding belongs to that rule and nothing else. Rendered diagnostics are
//! pinned byte-for-byte in `<rule>_bad.expected`
//! (`UPDATE_EXPECT=1 cargo test -p dvelm-lint --test semantic` regenerates
//! after review).
//!
//! Also here: the parser round-trip against the *real* effect/strategy
//! enums (the symbol graph must name every variant exactly — no drift
//! between the linter's view and the source of truth), and byte-stability
//! of `--format json` through the binary.

use dvelm_lint::parse::FileSyms;
use dvelm_lint::{check_workspace, Allowlist, FileCtx};
use std::path::{Path, PathBuf};
use std::process::Command;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/semantic")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Lint the mini-root, require every finding to carry `rule`, and compare
/// the rendered diagnostics against `<name>.expected`.
fn check_semantic_golden(name: &str, rule: &str) {
    let root = fixtures_dir().join(name);
    let report = check_workspace(&root, &Allowlist::default())
        .unwrap_or_else(|e| panic!("walk {name}: {e}"));
    assert!(
        !report.findings.is_empty(),
        "{name} must trip {rule}, found nothing"
    );
    for d in &report.findings {
        assert_eq!(
            d.rule, rule,
            "{name} must only trip {rule} (other layers stay quiet): {d}"
        );
    }
    let rendered = report
        .findings
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("\n");
    let expected_path = fixtures_dir().join(format!("{name}.expected"));
    if std::env::var_os("UPDATE_EXPECT").is_some() {
        std::fs::write(&expected_path, format!("{rendered}\n")).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&expected_path)
        .unwrap_or_else(|e| panic!("read {}: {e}", expected_path.display()));
    assert_eq!(
        rendered.trim_end(),
        expected.trim_end(),
        "{name} diagnostics drifted from the golden file \
         (UPDATE_EXPECT=1 regenerates after review)"
    );
}

#[test]
fn r7_missing_arm_and_dead_variant() {
    check_semantic_golden("r7_bad", "R7");
}

#[test]
fn r8_missing_abort_row_and_unasserted_reason() {
    check_semantic_golden("r8_bad", "R8");
}

#[test]
fn r9_one_hop_clock_constant() {
    check_semantic_golden("r9_bad", "R9");
}

/// The symbol graph over the real `crates/core/src/effect.rs` and
/// `crates/core/src/strategy.rs` must name every variant of the dispatched
/// enums exactly — additions, removals and renames all break this test, so
/// the semantic rules can never silently diverge from the vocabulary they
/// police.
#[test]
fn parser_round_trips_the_real_effect_enums() {
    let cases: [(&str, &str, &[&str]); 4] = [
        (
            "crates/core/src/effect.rs",
            "Effect",
            &[
                "PhaseEntered",
                "SuspendApp",
                "InstallCapture",
                "SendXlate",
                "Stack",
                "SocketDetached",
                "Shipped",
                "QueuePressure",
                "PacketReinjected",
                "Complete",
                "ResumeApp",
                "RemoveCapture",
                "RevokeXlate",
                "Aborted",
                "Subscribe",
                "Unsubscribe",
            ],
        ),
        (
            "crates/core/src/effect.rs",
            "PhaseId",
            &[
                "PrecopyFull",
                "PrecopyIter",
                "FreezeCapture",
                "FreezeDetach",
                "Restore",
                "DemandResolve",
            ],
        ),
        (
            "crates/core/src/effect.rs",
            "AbortReason",
            &[
                "DestinationCrashed",
                "SourceCrashed",
                "TransferStalled",
                "CaptureInstallFailed",
                "RestoreFailed",
                "ProcessKilled",
                "NodeDetached",
                "Overloaded",
                "NonConverging",
                "FencedStaleEpoch",
            ],
        ),
        (
            "crates/core/src/strategy.rs",
            "Strategy",
            &[
                "Iterative",
                "Collective",
                "IncrementalCollective",
                "PostCopy",
                "Hybrid",
            ],
        ),
    ];
    for (path, enum_name, want) in cases {
        let src = std::fs::read_to_string(repo_root().join(path))
            .unwrap_or_else(|e| panic!("read {path}: {e}"));
        let ctx = FileCtx::new(path, &src);
        let syms = FileSyms::from_ctx(&ctx);
        let def = syms
            .enum_def(enum_name)
            .unwrap_or_else(|| panic!("{path} must define enum {enum_name}"));
        let got: Vec<&str> = def.variants.iter().map(|(v, _)| v.as_str()).collect();
        assert_eq!(
            got, want,
            "symbol graph drifted from `{enum_name}` in {path}"
        );
    }
}

/// `--format json` is the CI contract: two runs over the same tree must be
/// byte-identical (fixed key order, pre-sorted findings, no timestamps),
/// and a tree with findings still exits non-zero in json mode.
#[test]
fn json_output_is_byte_stable_and_strict() {
    let root = fixtures_dir().join("r9_bad");
    let run = || {
        Command::new(env!("CARGO_BIN_EXE_dvelm-lint"))
            .args(["check", "--format", "json", "--root"])
            .arg(&root)
            .output()
            .expect("run dvelm-lint")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.stdout, b.stdout, "json output must be byte-stable");
    assert!(
        !a.status.success(),
        "json mode must still exit non-zero on findings"
    );
    let text = String::from_utf8(a.stdout).expect("json is utf-8");
    assert!(
        text.contains("\"rule\": \"R9\"") && text.contains("\"version\": 1"),
        "json must carry the R9 finding:\n{text}"
    );
}
