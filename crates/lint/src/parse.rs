//! The parser pass: from the flat token stream of one file to the symbols
//! the semantic rules need.
//!
//! This is deliberately *not* a Rust parser. It recognizes exactly four
//! shapes — enum definitions with their variants, `fn` signatures with
//! parameter names, call sites with argument spans, and two-segment
//! `Head::Seg` path uses classified by position (pattern vs. expression,
//! inside an `assert!`-family macro or not) — because those four are all the
//! workspace-level rules (R7–R9) consume. No type inference, no macro
//! expansion, no name resolution beyond `Type::fn` paths: the symbol graph
//! ([`crate::graph`]) compensates with conservative matching (a call site
//! binds to a definition only when every candidate agrees).
//!
//! The low-level scanners ([`fn_sites`], [`match_body`], [`arms`]) are
//! shared with the lexical rules in [`crate::rules`].

use crate::lexer::{Tok, TokKind};
use crate::matching_close;
use crate::FileCtx;

/// A function found in the stream: its `fn` keyword, name, parameter-group
/// token span (inclusive of the delimiters) and body span, if any.
pub struct FnSite {
    /// Token index of the `fn` keyword.
    pub fn_kw: usize,
    /// The function's bare name (no `impl` qualification).
    pub name: String,
    /// Token span of the parameter group, inclusive of the parentheses.
    pub params: (usize, usize),
    /// Token span of the body braces, if the fn has a body.
    pub body: Option<(usize, usize)>,
}

/// Find every `fn` with its parameter list and body. Generic parameter
/// lists between name and `(` are skipped by angle-depth tracking.
pub fn fn_sites(toks: &[Tok]) -> Vec<FnSite> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        // Parameter group: first `(` at generic-angle depth 0.
        let mut j = i + 2;
        let mut angle = 0i32;
        let params_open = loop {
            match toks.get(j).map(|t| &t.kind) {
                Some(TokKind::Punct('<')) => angle += 1,
                Some(TokKind::Punct('>')) => angle -= 1,
                Some(TokKind::Open('(')) if angle <= 0 => break Some(j),
                Some(_) => {}
                None => break None,
            }
            j += 1;
        };
        let Some(params_open) = params_open else {
            continue;
        };
        let Some(params_close) = matching_close(toks, params_open) else {
            continue;
        };
        // Body: first `{` before a top-level `;` (bodyless trait method).
        let mut k = params_close + 1;
        let mut body = None;
        let mut depth = 0i32;
        while let Some(t) = toks.get(k) {
            match t.kind {
                TokKind::Open('{') if depth == 0 => {
                    body = matching_close(toks, k).map(|c| (k, c));
                    break;
                }
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        out.push(FnSite {
            fn_kw: i,
            name: name_tok.text.clone(),
            params: (params_open, params_close),
            body,
        });
    }
    out
}

/// The `{` opening a match body: first top-level `{` after the scrutinee
/// (parens/brackets in the scrutinee are depth-tracked).
pub fn match_body(toks: &[Tok], match_kw: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(match_kw + 1) {
        match t.kind {
            TokKind::Open('{') if depth == 0 => return Some(j),
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => depth -= 1,
            _ => {}
        }
    }
    None
}

/// Split a match body into arms: returns `(pattern_start, arrow_index)` for
/// each `pattern => value` at the body's top level.
pub fn arms(toks: &[Tok], body_open: usize, body_close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut j = body_open + 1;
    while j < body_close {
        let pat_start = j;
        // Scan the pattern to its `=>` at arm level.
        let mut depth = 0i32;
        let mut arrow = None;
        while j < body_close {
            let t = &toks[j];
            match t.kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Punct('=')
                    if depth == 0 && toks.get(j + 1).is_some_and(|n| n.is_punct('>')) =>
                {
                    arrow = Some(j);
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        out.push((pat_start, arrow));
        // Skip the arm value: a brace group, or tokens to a `,` at arm level.
        j = arrow + 2;
        if j < body_close && matches!(toks[j].kind, TokKind::Open('{')) {
            j = matching_close(toks, j).map_or(body_close, |c| c + 1);
        } else {
            let mut depth = 0i32;
            while j < body_close {
                match toks[j].kind {
                    TokKind::Open(_) => depth += 1,
                    TokKind::Close(_) => depth -= 1,
                    TokKind::Punct(',') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
        }
        // Skip the trailing comma.
        if j < body_close && toks[j].is_punct(',') {
            j += 1;
        }
    }
    out
}

/// An enum definition with its variants.
#[derive(Debug)]
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// The variant names with their 1-based lines, in declaration order.
    pub variants: Vec<(String, u32)>,
}

/// One declared parameter of a fn.
#[derive(Debug)]
pub struct Param {
    /// The bound name (`_` for tuple/struct-pattern parameters).
    pub name: String,
    /// Whether the declared type mentions `SimTime` — the clock-dataflow
    /// rule only taints parameters that actually carry the sim clock.
    pub clock_typed: bool,
}

/// A function definition's signature, as the graph sees it.
#[derive(Debug)]
pub struct FnSig {
    /// `impl`-qualified name (`MigrationEngine::step`) or bare name for
    /// free functions.
    pub qual_name: String,
    /// The bare name (last segment of `qual_name`).
    pub bare_name: String,
    /// Parameters in order, `self` receivers excluded.
    pub params: Vec<Param>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the definition lives in `#[cfg(test)]`/`#[test]` code.
    pub in_test: bool,
    /// Token span of the body braces, if any.
    pub body: Option<(usize, usize)>,
}

/// The shape of one call argument, as far as the clock-dataflow rule cares.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgShape {
    /// A compile-time clock constant: the argument is built purely from
    /// `SimTime::ZERO` / `SimTime::from_*(<literals>)` with no variable
    /// involved — the "invented clock" of the PR 3 bug class.
    ClockConst,
    /// A single bare identifier (a local or parameter being passed on).
    Ident(String),
    /// Anything else — field accesses, method results, arithmetic.
    Other,
}

/// A call site: `callee(args)`, `recv.callee(args)` or `Qual::callee(args)`.
#[derive(Debug)]
pub struct CallSite {
    /// The called function's bare name.
    pub callee: String,
    /// The path segment before `::callee(`, when the call is path-qualified
    /// (e.g. `LoadInfo` in `LoadInfo::new(…)`).
    pub callee_qual: Option<String>,
    /// The shape of each argument, in order.
    pub args: Vec<ArgShape>,
    /// 1-based line of the callee token.
    pub line: u32,
    /// Whether the call site is in test code.
    pub in_test: bool,
    /// `impl`-qualified name of the enclosing fn, if any.
    pub caller: Option<String>,
}

/// One `Head::Seg` path use (both segments capitalized — enum variants,
/// associated consts), classified by syntactic position.
#[derive(Debug)]
pub struct PathUse {
    /// First segment (`Effect` in `Effect::Complete`).
    pub head: String,
    /// Second segment (`Complete`).
    pub seg: String,
    /// Token index of the head segment.
    pub idx: usize,
    /// 1-based line of the head segment.
    pub line: u32,
    /// Whether the use sits in pattern position (a match arm pattern or a
    /// `let`/`if let`/`while let` pattern) rather than an expression.
    pub in_pattern: bool,
    /// Whether the use sits inside an `assert!`-family or `matches!` macro
    /// invocation.
    pub in_assert: bool,
    /// Whether the use is in test code.
    pub in_test: bool,
    /// `impl`-qualified name of the enclosing fn, if any.
    pub in_fn: Option<String>,
    /// The identifier immediately wrapping this path in a call, when the
    /// head is directly preceded by `ident(` — e.g. `PhaseEntered` for
    /// `PhaseEntered(PhaseId::Restore)`.
    pub wrapping_call: Option<String>,
}

/// Everything the symbol graph keeps about one file.
pub struct FileSyms {
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
    /// Function definitions.
    pub fns: Vec<FnSig>,
    /// Call sites.
    pub calls: Vec<CallSite>,
    /// Capitalized two-segment path uses.
    pub paths: Vec<PathUse>,
    /// Spans of `Ident { … }` brace groups, for struct-literal containment
    /// queries (e.g. "inside a `MigrationAborted { … }` literal").
    pub braces_after_ident: Vec<(String, usize, usize)>,
}

const ASSERT_MACROS: &[&str] = &[
    "assert",
    "assert_eq",
    "assert_ne",
    "debug_assert",
    "debug_assert_eq",
    "debug_assert_ne",
    "assert_matches",
    "matches",
];

/// Keywords that can immediately precede a `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "as", "move", "fn", "let", "else", "loop",
];

impl FileSyms {
    /// Run the parser pass over an already-lexed file.
    pub fn from_ctx(ctx: &FileCtx<'_>) -> FileSyms {
        let toks = &ctx.toks;
        let pattern_spans = pattern_spans(toks);
        let assert_spans = macro_spans(toks, ASSERT_MACROS);
        let in_span =
            |spans: &[(usize, usize)], i: usize| spans.iter().any(|&(a, b)| a <= i && i <= b);

        let mut enums = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if !t.is_ident("enum") || ctx.in_test[i] {
                continue;
            }
            let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
                continue;
            };
            // Body: first `{` (generics between name and body are skipped by
            // angle tracking, like fn_sites).
            let mut j = i + 2;
            let mut angle = 0i32;
            let open = loop {
                match toks.get(j).map(|t| &t.kind) {
                    Some(TokKind::Punct('<')) => angle += 1,
                    Some(TokKind::Punct('>')) => angle -= 1,
                    Some(TokKind::Open('{')) if angle <= 0 => break Some(j),
                    Some(TokKind::Punct(';')) => break None,
                    Some(_) => {}
                    None => break None,
                }
                j += 1;
            };
            let Some(open) = open else { continue };
            let Some(close) = matching_close(toks, open) else {
                continue;
            };
            enums.push(EnumDef {
                name: name_tok.text.clone(),
                line: t.line,
                variants: enum_variants(toks, open, close),
            });
        }

        let mut fns = Vec::new();
        for site in fn_sites(toks) {
            let qual_name = ctx.qualified_fn(site.fn_kw, &site.name);
            fns.push(FnSig {
                bare_name: site.name,
                params: param_names(toks, site.params),
                line: toks[site.fn_kw].line,
                in_test: ctx.in_test[site.fn_kw],
                body: site.body,
                qual_name,
            });
        }

        let mut calls = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident
                || NON_CALL_KEYWORDS.contains(&t.text.as_str())
                || !matches!(toks.get(i + 1).map(|n| &n.kind), Some(TokKind::Open('(')))
            {
                continue;
            }
            // Definitions are not calls.
            if i > 0 && toks[i - 1].is_ident("fn") {
                continue;
            }
            let Some(close) = matching_close(toks, i + 1) else {
                continue;
            };
            let callee_qual = (i >= 3
                && toks[i - 1].is_punct(':')
                && toks[i - 2].is_punct(':')
                && toks[i - 3].kind == TokKind::Ident)
                .then(|| toks[i - 3].text.clone());
            calls.push(CallSite {
                callee: t.text.clone(),
                callee_qual,
                args: split_args(toks, i + 1, close)
                    .into_iter()
                    .map(|span| arg_shape(toks, span))
                    .collect(),
                line: t.line,
                in_test: ctx.in_test[i],
                caller: ctx.fn_of[i].clone(),
            });
        }

        let mut paths = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident
                || !t.text.starts_with(|c: char| c.is_ascii_uppercase())
                || !toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                || !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            {
                continue;
            }
            let Some(seg) = toks.get(i + 3).filter(|n| {
                n.kind == TokKind::Ident && n.text.starts_with(|c: char| c.is_ascii_uppercase())
            }) else {
                continue;
            };
            let wrapping_call = (i >= 2
                && matches!(toks[i - 1].kind, TokKind::Open('('))
                && toks[i - 2].kind == TokKind::Ident)
                .then(|| toks[i - 2].text.clone());
            paths.push(PathUse {
                head: t.text.clone(),
                seg: seg.text.clone(),
                idx: i,
                line: t.line,
                in_pattern: in_span(&pattern_spans, i),
                in_assert: in_span(&assert_spans, i),
                in_test: ctx.in_test[i],
                in_fn: ctx.fn_of[i].clone(),
                wrapping_call,
            });
        }

        let mut braces_after_ident = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident
                && t.text.starts_with(|c: char| c.is_ascii_uppercase())
                && matches!(toks.get(i + 1).map(|n| &n.kind), Some(TokKind::Open('{')))
            {
                if let Some(close) = matching_close(toks, i + 1) {
                    braces_after_ident.push((t.text.clone(), i + 1, close));
                }
            }
        }

        FileSyms {
            path: ctx.path.to_string(),
            enums,
            fns,
            calls,
            paths,
            braces_after_ident,
        }
    }

    /// The enum named `name` defined in this file, if any.
    pub fn enum_def(&self, name: &str) -> Option<&EnumDef> {
        self.enums.iter().find(|e| e.name == name)
    }

    /// The fn with `impl`-qualified name `qual`, if defined in this file.
    pub fn fn_def(&self, qual: &str) -> Option<&FnSig> {
        self.fns.iter().find(|f| f.qual_name == qual)
    }

    /// Whether token index `i` falls inside an `Ident { … }` group whose
    /// identifier is `name`.
    pub fn inside_brace_literal(&self, name: &str, i: usize) -> bool {
        self.braces_after_ident
            .iter()
            .any(|(n, a, b)| n == name && *a <= i && i <= *b)
    }
}

/// Variant names of an enum body span (top-level identifiers, attributes
/// and doc comments skipped, payloads and discriminants consumed).
fn enum_variants(toks: &[Tok], open: usize, close: usize) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut j = open + 1;
    while j < close {
        match &toks[j].kind {
            TokKind::DocOuter | TokKind::DocInner => j += 1,
            TokKind::Punct('#')
                if matches!(toks.get(j + 1).map(|t| &t.kind), Some(TokKind::Open('['))) =>
            {
                j = matching_close(toks, j + 1).map_or(close, |c| c + 1);
            }
            TokKind::Ident => {
                out.push((toks[j].text.clone(), toks[j].line));
                // Consume payload/discriminant to the `,` at variant level.
                j += 1;
                let mut depth = 0i32;
                while j < close {
                    match toks[j].kind {
                        TokKind::Open(_) => depth += 1,
                        TokKind::Close(_) => depth -= 1,
                        TokKind::Punct(',') if depth == 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    out
}

/// Classify one argument span for the clock-dataflow rule.
fn arg_shape(toks: &[Tok], (start, end): (usize, usize)) -> ArgShape {
    let span = &toks[start..=end];
    if span.len() == 1 && span[0].kind == TokKind::Ident {
        return ArgShape::Ident(span[0].text.clone());
    }
    // A clock constant: mentions `SimTime::ZERO` or `SimTime::from_*`, and
    // involves no variable (every identifier is SimTime / ZERO / from_*).
    let mentions_clock = span.windows(4).any(|w| {
        w[0].is_ident("SimTime")
            && w[1].is_punct(':')
            && w[2].is_punct(':')
            && w[3].kind == TokKind::Ident
            && (w[3].text == "ZERO" || w[3].text.starts_with("from_"))
    });
    let no_variables = span.iter().all(|t| {
        t.kind != TokKind::Ident
            || t.text == "SimTime"
            || t.text == "ZERO"
            || t.text.starts_with("from_")
    });
    if mentions_clock && no_variables {
        ArgShape::ClockConst
    } else {
        ArgShape::Other
    }
}

/// Parameters of a fn's parenthesized parameter group, `self` receivers
/// excluded, pattern parameters reported as `_`.
fn param_names(toks: &[Tok], (open, close): (usize, usize)) -> Vec<Param> {
    let mut out = Vec::new();
    let mut j = open + 1;
    while j < close {
        // One parameter: up to the `,` at parameter level.
        let start = j;
        let mut depth = 0i32;
        let mut angle = 0i32;
        while j < close {
            match toks[j].kind {
                TokKind::Open(_) => depth += 1,
                TokKind::Close(_) => depth -= 1,
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                TokKind::Punct(',') if depth == 0 && angle <= 0 => break,
                _ => {}
            }
            j += 1;
        }
        let param = &toks[start..j];
        j += 1; // past the comma
                // Skip attributes at the front of the parameter.
        let mut k = 0usize;
        while k < param.len()
            && param[k].is_punct('#')
            && matches!(param.get(k + 1).map(|t| &t.kind), Some(TokKind::Open('[')))
        {
            match matching_close(param, k + 1) {
                Some(c) => k = c + 1,
                None => break,
            }
        }
        let rest = &param[k..];
        if rest.is_empty() {
            continue;
        }
        // A receiver: any leading run of `&`, lifetimes and `mut` ending in
        // `self` is skipped entirely.
        let mut r = 0usize;
        while r < rest.len()
            && (rest[r].is_punct('&')
                || rest[r].kind == TokKind::Lifetime
                || rest[r].is_ident("mut"))
        {
            r += 1;
        }
        if rest.get(r).is_some_and(|t| t.is_ident("self")) {
            continue;
        }
        // `mut name: Type` / `name: Type`; anything else (tuple or struct
        // patterns) binds no single name.
        let mut n = 0usize;
        if rest.get(n).is_some_and(|t| t.is_ident("mut")) {
            n += 1;
        }
        let name = match rest.get(n) {
            Some(t)
                if t.kind == TokKind::Ident && rest.get(n + 1).is_some_and(|c| c.is_punct(':')) =>
            {
                t.text.clone()
            }
            _ => "_".to_string(),
        };
        let clock_typed = rest.iter().skip(n + 1).any(|t| t.is_ident("SimTime"));
        out.push(Param { name, clock_typed });
    }
    out
}

/// Argument token spans of a call's parenthesized group, split at
/// top-level commas. Empty argument lists yield no spans.
fn split_args(toks: &[Tok], open: usize, close: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = open + 1;
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        match t.kind {
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => depth -= 1,
            TokKind::Punct(',') if depth == 0 => {
                if start < j {
                    out.push((start, j - 1));
                }
                start = j + 1;
            }
            _ => {}
        }
    }
    if start < close {
        out.push((start, close - 1));
    }
    out
}

/// Spans of pattern positions: match arm patterns (pattern start to the
/// `=>`) and `let`/`if let`/`while let` patterns (`let` to the `=`).
fn pattern_spans(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("match") {
            if let Some(open) = match_body(toks, i) {
                if let Some(close) = matching_close(toks, open) {
                    for (pat, arrow) in arms(toks, open, close) {
                        spans.push((pat, arrow.saturating_sub(1)));
                    }
                }
            }
        } else if t.is_ident("let") {
            // `let PATTERN = …;` — the pattern runs to the `=` at depth 0
            // (stop at `;` or an `else` for safety on `let … else`).
            let mut depth = 0i32;
            for (j, tk) in toks.iter().enumerate().skip(i + 1) {
                match tk.kind {
                    TokKind::Open(_) => depth += 1,
                    TokKind::Close(_) if depth == 0 => break,
                    TokKind::Close(_) => depth -= 1,
                    TokKind::Punct('=') if depth == 0 => {
                        if j > i + 1 {
                            spans.push((i + 1, j - 1));
                        }
                        break;
                    }
                    TokKind::Punct(';') if depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    spans
}

/// Spans of `name!(…)` / `name![…]` / `name!{…}` macro invocations for the
/// given macro names.
fn macro_spans(toks: &[Tok], names: &[&str]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident
            && names.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && matches!(toks.get(i + 2).map(|n| &n.kind), Some(TokKind::Open(_)))
        {
            if let Some(close) = matching_close(toks, i + 2) {
                spans.push((i, close));
            }
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(path: &str, src: &str) -> FileSyms {
        FileSyms::from_ctx(&FileCtx::new(path, src))
    }

    #[test]
    fn enum_variants_with_payloads_and_attrs() {
        let s = syms(
            "crates/core/src/x.rs",
            "enum E {\n A,\n #[doc(hidden)] B(u8, Vec<u8>),\n /// doc\n C { x: u8 },\n D = 4,\n}",
        );
        let e = s.enum_def("E").unwrap();
        let names: Vec<&str> = e.variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["A", "B", "C", "D"]);
        assert_eq!(e.variants[1].1, 3);
    }

    #[test]
    fn fn_params_skip_self_and_mut() {
        let s = syms(
            "crates/core/src/x.rs",
            "impl T { fn f(&mut self, mut now: SimTime, n: u8, (a, b): (u8, u8)) {} }",
        );
        let f = s.fn_def("T::f").unwrap();
        let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["now", "n", "_"]);
        assert!(f.params[0].clock_typed);
        assert!(!f.params[1].clock_typed);
        assert_eq!(f.bare_name, "f");
    }

    #[test]
    fn call_sites_resolve_qualifier_and_args() {
        let s = syms(
            "crates/core/src/x.rs",
            "fn g() { LoadInfo::new(NodeId(3), x, SimTime::ZERO); self.step(a, b); }",
        );
        let new_call = s.calls.iter().find(|c| c.callee == "new").unwrap();
        assert_eq!(new_call.callee_qual.as_deref(), Some("LoadInfo"));
        assert_eq!(
            new_call.args,
            [
                ArgShape::Other,
                ArgShape::Ident("x".into()),
                ArgShape::ClockConst
            ]
        );
        assert_eq!(new_call.caller.as_deref(), Some("g"));
        let step = s.calls.iter().find(|c| c.callee == "step").unwrap();
        assert!(step.callee_qual.is_none());
        assert_eq!(step.args.len(), 2);
    }

    #[test]
    fn clock_const_shapes() {
        let s = syms(
            "crates/core/src/x.rs",
            "fn g() { f(SimTime::from_secs(3)); f(now.max(SimTime::ZERO)); f(0); }",
        );
        let shapes: Vec<&ArgShape> = s
            .calls
            .iter()
            .filter(|c| c.callee == "f")
            .map(|c| &c.args[0])
            .collect();
        // A pure from_secs literal is a clock constant; mixing in a variable
        // (`now.max(…)`) is not; a bare numeric literal is not SimTime-typed.
        assert_eq!(
            shapes,
            [&ArgShape::ClockConst, &ArgShape::Other, &ArgShape::Other]
        );
    }

    #[test]
    fn path_uses_classified_by_position() {
        let src = "fn f(e: E) { match e { E::A => {}\n E::B => g(E::C), } \
                   assert_eq!(x, E::D); let E::A = e else { return }; }";
        let s = syms("crates/core/src/x.rs", src);
        let find = |seg: &str| s.paths.iter().find(|p| p.seg == seg).unwrap();
        assert!(find("A").in_pattern);
        assert!(find("B").in_pattern);
        assert!(!find("C").in_pattern);
        assert!(!find("C").in_assert);
        assert!(find("D").in_assert);
        assert!(!find("D").in_pattern);
        let let_a = s
            .paths
            .iter()
            .filter(|p| p.seg == "A")
            .nth(1)
            .expect("the let-else pattern use");
        assert!(let_a.in_pattern);
    }

    #[test]
    fn wrapping_call_names_the_direct_wrapper() {
        let s = syms(
            "crates/core/src/x.rs",
            "fn f() { sink.emit(now, Effect::PhaseEntered(PhaseId::Restore)); }",
        );
        let phase = s
            .paths
            .iter()
            .find(|p| p.head == "PhaseId" && p.seg == "Restore")
            .unwrap();
        assert_eq!(phase.wrapping_call.as_deref(), Some("PhaseEntered"));
        let effect = s
            .paths
            .iter()
            .find(|p| p.head == "Effect" && p.seg == "PhaseEntered")
            .unwrap();
        assert!(effect.wrapping_call.is_none());
    }

    #[test]
    fn brace_literal_containment() {
        let s = syms(
            "crates/core/src/x.rs",
            "fn f() { emit(MigrationAborted { phase: PhaseId::Restore, reason });\n\
             let x = PhaseId::Start; }",
        );
        let inside = s.paths.iter().find(|p| p.seg == "Restore").unwrap();
        assert!(s.inside_brace_literal("MigrationAborted", inside.idx));
        let outside = s.paths.iter().find(|p| p.seg == "Start").unwrap();
        assert!(!s.inside_brace_literal("MigrationAborted", outside.idx));
    }
}
