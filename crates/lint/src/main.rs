//! Command-line front end: `cargo run -p dvelm-lint -- check`.

use dvelm_lint::{check_workspace, Allowlist, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
dvelm-lint — repo-specific static analysis for the dvelm workspace

USAGE:
    cargo run -p dvelm-lint -- check [--root <dir>] [--allow <file>]
    cargo run -p dvelm-lint -- rules

COMMANDS:
    check    Lint every workspace source file; exit 1 on any finding not
             covered by the allowlist (warnings are denied too).
    rules    Print the rule table.

OPTIONS:
    --root <dir>     Workspace root (default: auto-detected).
    --allow <file>   Allowlist file (default: <root>/lint.allow).
";

const RULES: &str = "\
R1 determinism     error    sim,core,stack,cluster,lb  no HashMap/HashSet/Instant::now/SystemTime::now/thread_rng
R2 clock-threading error    stack                      last_hit/TTL state needs a `now` param; no SimTime::ZERO into *_at()
R3 no-wildcard-arm error    all crates                 no `_` arm in matches over Effect/AbortReason/Fault/Event
R4 panic-hygiene   error    core,stack                 no unwrap/expect/panic!/unreachable!/todo!/unimplemented!
R5 doc-hygiene     warning  core,stack                 every pub item documented
R6 shard-isolation error    sim,core,stack,cluster,lb  no Mutex/RwLock/Condvar/Atomic*/mpsc/thread::spawn outside sim/par.rs
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "rules" if cmd.is_none() => cmd = Some(a.clone()),
            "--root" => root = it.next().map(PathBuf::from),
            "--allow" => allow_path = it.next().map(PathBuf::from),
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    match cmd.as_deref() {
        Some("rules") => {
            print!("{RULES}");
            ExitCode::SUCCESS
        }
        Some("check") => run_check(root, allow_path),
        _ => {
            print!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run_check(root: Option<PathBuf>, allow_path: Option<PathBuf>) -> ExitCode {
    let root = root.unwrap_or_else(detect_root);
    let allow_path = allow_path.unwrap_or_else(|| root.join("lint.allow"));
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };
    let report = match check_workspace(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dvelm-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    for d in &report.findings {
        println!("{d}");
    }
    for stale in &report.stale_allows {
        println!("note: stale lint.allow entry (matched nothing): {stale}");
    }
    let errors = report
        .findings
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = report.findings.len() - errors;
    println!(
        "dvelm-lint: {} files, {} error(s), {} warning(s), {} allowlisted",
        report.files, errors, warnings, report.allowed
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        println!("dvelm-lint: FAILED (strict mode: warnings are denied; add `RULE path key` lines to lint.allow only with a written justification)");
        ExitCode::FAILURE
    }
}

/// Workspace root: the current directory if it has a `crates/` dir, else
/// two levels up from this crate's manifest (`crates/lint` → repo root).
fn detect_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or(cwd)
}
