//! Command-line front end: `cargo run -p dvelm-lint -- check`.

use dvelm_lint::{check_workspace, explain, Allowlist, CheckReport, Severity, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
dvelm-lint — repo-specific static analysis for the dvelm workspace

USAGE:
    cargo run -p dvelm-lint -- check [--root <dir>] [--allow <file>]
                                     [--format <text|json>] [--stale-allow]
    cargo run -p dvelm-lint -- rules
    cargo run -p dvelm-lint -- explain <RULE>

COMMANDS:
    check      Lint every workspace source file (lexical rules per file,
               semantic rules over the workspace symbol graph); exit 1 on
               any finding not covered by the allowlist (warnings are
               denied too).
    rules      Print the rule table (generated from the registry).
    explain    Print one rule's rationale, minimal bad/good example and bug
               lineage, extracted from the rule's own doc comment.

OPTIONS:
    --root <dir>       Workspace root (default: auto-detected).
    --allow <file>     Allowlist file (default: <root>/lint.allow).
    --format <fmt>     `text` (default) or `json` — machine-readable,
                       byte-stable findings for CI annotation.
    --stale-allow      Also fail when lint.allow entries match nothing
                       (dead grandfathering must be deleted).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut stale_strict = false;
    let mut explain_rule: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "rules" | "explain" if cmd.is_none() => cmd = Some(a.clone()),
            "--root" => root = it.next().map(PathBuf::from),
            "--allow" => allow_path = it.next().map(PathBuf::from),
            "--format" => match it.next().map(String::as_str) {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!("--format takes `text` or `json`, got {other:?}\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--stale-allow" => stale_strict = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if cmd.as_deref() == Some("explain") && explain_rule.is_none() => {
                explain_rule = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    match cmd.as_deref() {
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some("explain") => match explain_rule.as_deref().map(explain) {
            Some(Some(text)) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Some(None) => {
                eprintln!(
                    "unknown rule; valid: {}",
                    RULES
                        .iter()
                        .map(|r| format!("{} ({})", r.id, r.name))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                ExitCode::FAILURE
            }
            None => {
                eprintln!("explain needs a rule id or name, e.g. `explain R9`\n\n{USAGE}");
                ExitCode::FAILURE
            }
        },
        Some("check") => run_check(root, allow_path, format, stale_strict),
        _ => {
            print!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
}

/// The rule table, generated from the registry so it cannot drift.
fn print_rules() {
    for r in RULES {
        println!(
            "{} {:<15} {:<8} {:<8} {:<26} {}",
            r.id, r.name, r.severity, r.layer, r.scope, r.summary
        );
    }
}

fn run_check(
    root: Option<PathBuf>,
    allow_path: Option<PathBuf>,
    format: Format,
    stale_strict: bool,
) -> ExitCode {
    let root = root.unwrap_or_else(detect_root);
    let allow_path = allow_path.unwrap_or_else(|| root.join("lint.allow"));
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };
    let report = match check_workspace(&root, &allow) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dvelm-lint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };
    let failed = !report.findings.is_empty() || (stale_strict && !report.stale_allows.is_empty());
    match format {
        Format::Json => print!("{}", render_json(&report, stale_strict)),
        Format::Text => print_text(&report, stale_strict),
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn counts(report: &CheckReport) -> (usize, usize) {
    let errors = report
        .findings
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    (errors, report.findings.len() - errors)
}

fn print_text(report: &CheckReport, stale_strict: bool) {
    for d in &report.findings {
        println!("{d}");
    }
    for stale in &report.stale_allows {
        println!("note: stale lint.allow entry (matched nothing): {stale}");
    }
    let (errors, warnings) = counts(report);
    println!(
        "dvelm-lint: {} files, {} error(s), {} warning(s), {} allowlisted",
        report.files, errors, warnings, report.allowed
    );
    if !report.findings.is_empty() {
        println!("dvelm-lint: FAILED (strict mode: warnings are denied; add `RULE path key` lines to lint.allow only with a written justification)");
    } else if stale_strict && !report.stale_allows.is_empty() {
        println!("dvelm-lint: FAILED (--stale-allow: delete the dead lint.allow entries above)");
    }
}

/// Byte-stable JSON: fixed key order, findings pre-sorted by
/// (path, line, rule, key) in [`check_workspace`], no timestamps, no map
/// iteration — identical trees render identical bytes.
fn render_json(report: &CheckReport, stale_strict: bool) -> String {
    let (errors, warnings) = counts(report);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str(&format!("  \"files\": {},\n", report.files));
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"warnings\": {warnings},\n"));
    out.push_str(&format!("  \"allowed\": {},\n", report.allowed));
    out.push_str(&format!("  \"stale_allow_strict\": {stale_strict},\n"));
    out.push_str("  \"findings\": [");
    for (i, d) in report.findings.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": {}, \"name\": {}, \"severity\": {}, \"path\": {}, \"line\": {}, \"key\": {}, \"msg\": {}}}",
            json_str(d.rule),
            json_str(d.name),
            json_str(&d.severity.to_string()),
            json_str(&d.path),
            d.line,
            json_str(&d.key),
            json_str(&d.msg),
        ));
    }
    out.push_str(if report.findings.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"stale_allows\": [");
    for (i, s) in report.stale_allows.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!("    {}", json_str(s)));
    }
    out.push_str(if report.stale_allows.is_empty() {
        "]\n"
    } else {
        "\n  ]\n"
    });
    out.push_str("}\n");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Workspace root: the current directory if it has a `crates/` dir, else
/// two levels up from this crate's manifest (`crates/lint` → repo root).
fn detect_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or(cwd)
}
