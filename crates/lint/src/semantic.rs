//! The semantic rules (R7–R9): workspace-wide invariants over the
//! [`SymbolGraph`]. Each rule is a pure function appending [`Diagnostic`]s,
//! mirroring the lexical rules in [`crate::rules`]; the dispatch specs
//! (which enum must be routed by which fn) live here next to the rules they
//! configure.
//!
//! Every spec is pinned to the enum's defining file: when that file is
//! absent from the walked set (a fixture mini-root, a partial checkout) the
//! rule skips silently, but when the enum exists and a declared handler fn
//! is missing the rule errors — renaming a dispatcher away does not silence
//! the check.

use crate::graph::SymbolGraph;
use crate::{Diagnostic, Severity};

/// One fn that must name every variant of a dispatched enum.
struct Handler {
    /// Repo-relative path of the file defining the handler.
    file: &'static str,
    /// `impl`-qualified fn name.
    fn_qual: &'static str,
}

/// One enum whose variants must be fully routed.
struct DispatchSpec {
    /// The enum's name.
    enum_name: &'static str,
    /// The file defining it (pins resolution).
    enum_file: &'static str,
    /// Every fn that must have an arm per variant.
    handlers: &'static [Handler],
}

/// The effect-pipeline dispatch map: each cross-layer enum and the switch
/// points that must stay exhaustive *in the semantic sense* — R3 already
/// bans wildcard arms lexically; R7 proves each variant is actually named
/// in each dispatcher and actually constructed somewhere.
const DISPATCH_SPECS: &[DispatchSpec] = &[
    DispatchSpec {
        enum_name: "Effect",
        enum_file: "crates/core/src/effect.rs",
        handlers: &[
            Handler {
                file: "crates/cluster/src/world.rs",
                fn_qual: "World::apply_effect",
            },
            Handler {
                file: "crates/metrics/src/trace.rs",
                fn_qual: "TraceRecorder::observe",
            },
        ],
    },
    DispatchSpec {
        enum_name: "LbEffect",
        enum_file: "crates/lb/src/conductor.rs",
        handlers: &[Handler {
            file: "crates/cluster/src/world.rs",
            fn_qual: "World::apply_lb_effects",
        }],
    },
    DispatchSpec {
        enum_name: "Fault",
        enum_file: "crates/faults/src/lib.rs",
        handlers: &[Handler {
            file: "crates/cluster/src/world.rs",
            fn_qual: "World::inject_fault",
        }],
    },
];

/// The abort-row spec: where the engine lives, where the phase/reason enums
/// live, and which matrix tests must assert each emittable reason.
const R8_ENGINE_FILE: &str = "crates/core/src/engine.rs";
const R8_ENUM_FILE: &str = "crates/core/src/effect.rs";
const R8_TEST_FILES: &[&str] = &[
    "tests/fault_matrix.rs",
    "tests/overload_matrix.rs",
    "tests/partition_matrix.rs",
];

/// Crates R9 watches: the simulation family plus the experiment driver
/// (`dve`), where a constant clock at an experiment origin is exactly as
/// wrong as one in the TTL hot path.
const R9_SCOPE: &[&str] = &[
    "crates/sim/",
    "crates/core/",
    "crates/stack/",
    "crates/cluster/",
    "crates/lb/",
    "crates/dve/",
];

/// Run every semantic rule over the workspace graph.
pub fn run(graph: &SymbolGraph, out: &mut Vec<Diagnostic>) {
    r7_effect_coverage(graph, out);
    r8_abort_rows(graph, out);
    r9_clock_dataflow(graph, out);
}

/// R7 `effect-coverage`: every variant of a dispatched enum (`Effect`,
/// `LbEffect`, `Fault`) must be named in each of its dispatch fns
/// (`World::apply_effect` + `TraceRecorder::observe`, `World::apply_lb_effects`,
/// `World::inject_fault`), and must be constructed somewhere in the
/// workspace (src or tests) — a variant nobody builds is dead weight that
/// still costs every dispatcher an arm.
///
/// Lineage: PR 3's capture-pressure misattribution hid behind a wildcard
/// dispatch arm. R3 bans the wildcard lexically; R7 closes the cross-file
/// half — an `Effect` variant added in `core` cannot ship until `cluster`'s
/// `World::apply_effect` and `metrics`' `TraceRecorder::observe` both route
/// it by name.
///
/// Bad (missing arm — `Effect::QueuePressure` constructed in core, but the
/// dispatcher never names it):
/// ```text
/// // core:    sink.emit(now, Effect::QueuePressure { dropped });
/// // cluster: match effect { Effect::Shipped { .. } => …, /* no QueuePressure arm */ }
/// ```
/// Good: every dispatcher names the variant, even if only to record it:
/// ```text
/// // cluster: Effect::QueuePressure { .. } => {} // trace-only
/// ```
/// Dead-variant bad: `enum Effect { …, Aborted }` with no `Effect::Aborted`
/// construction anywhere — delete the variant or build it.
pub fn r7_effect_coverage(graph: &SymbolGraph, out: &mut Vec<Diagnostic>) {
    for spec in DISPATCH_SPECS {
        let Some(def) = graph.enum_at(spec.enum_file, spec.enum_name) else {
            continue;
        };
        let census = graph.constructions(spec.enum_name);
        for handler in spec.handlers {
            let Some(file) = graph.file(handler.file) else {
                continue;
            };
            let Some(mentioned) =
                graph.mentions_in_fn(handler.file, handler.fn_qual, spec.enum_name)
            else {
                out.push(Diagnostic {
                    rule: "R7",
                    name: "effect-coverage",
                    severity: Severity::Error,
                    path: handler.file.to_string(),
                    line: 1,
                    key: format!("fn:{}", handler.fn_qual),
                    msg: format!(
                        "dispatch fn `{}` not found in {}; R7 cannot verify `{}` coverage without it",
                        handler.fn_qual, handler.file, spec.enum_name
                    ),
                });
                continue;
            };
            let handler_line = file.fn_def(handler.fn_qual).map(|d| d.line).unwrap_or(1);
            for (variant, vline) in &def.variants {
                if !mentioned.contains(variant) {
                    let origin = match census.get(variant) {
                        Some(site) => format!("constructed at {}:{}", site.path, site.line),
                        None => format!("defined at {}:{vline}", spec.enum_file),
                    };
                    out.push(Diagnostic {
                        rule: "R7",
                        name: "effect-coverage",
                        severity: Severity::Error,
                        path: handler.file.to_string(),
                        line: handler_line,
                        key: format!("variant:{}::{variant}", spec.enum_name),
                        msg: format!(
                            "`{}::{variant}` ({origin}) has no arm in `{}`; route the variant explicitly",
                            spec.enum_name, handler.fn_qual
                        ),
                    });
                }
            }
        }
        for (variant, vline) in &def.variants {
            if !census.contains_key(variant) {
                out.push(Diagnostic {
                    rule: "R7",
                    name: "effect-coverage",
                    severity: Severity::Error,
                    path: spec.enum_file.to_string(),
                    line: *vline,
                    key: format!("variant:{}::{variant}", spec.enum_name),
                    msg: format!(
                        "`{}::{variant}` is dispatched but never constructed anywhere (src or tests); delete the dead variant or build it",
                        spec.enum_name
                    ),
                });
            }
        }
    }
}

/// R8 `abort-row`: the migration engine's phase machine must stay
/// abort-complete, and its abort vocabulary must stay test-asserted.
///
/// * Every `PhaseId` the engine enters (an `Effect::PhaseEntered(PhaseId::…)`
///   emission in `crates/core/src/engine.rs`) must have an abort row: the
///   same `PhaseId` named inside an `abort_*` fn or inside a
///   `MigrationAborted { … }` literal — otherwise a fault landing in that
///   phase has no compensation path.
/// * Every `AbortReason` variant live code can emit (constructed outside
///   test code) must be named in at least one assertion in the matrix tests
///   (`tests/fault_matrix.rs`, `tests/overload_matrix.rs`,
///   `tests/partition_matrix.rs`) — the abort row is only *stated* once a
///   test pins it.
///
/// Lineage: the fault/overload matrices exist because aborts are where
/// migration state can leak (PR 4's torn-restore bug); a new strategy
/// (ROADMAP items 3/4) adding a phase or reason without its abort rows
/// stated as tests must fail lint, not soak.
///
/// Bad: the engine gains `PhaseId::Verify` (emits
/// `Effect::PhaseEntered(PhaseId::Verify)`) but no `abort_*` fn and no
/// `MigrationAborted { phase: PhaseId::Verify, … }` names it.
/// Good: `fn abort_verify(…)` handles it, and the matrix tests assert the
/// reason it can abort with:
/// ```text
/// assert_eq!(outcome.reason, AbortReason::VerifyFailed);
/// ```
pub fn r8_abort_rows(graph: &SymbolGraph, out: &mut Vec<Diagnostic>) {
    let Some(engine) = graph.file(R8_ENGINE_FILE) else {
        return;
    };
    if let Some(phases) = graph.enum_at(R8_ENUM_FILE, "PhaseId") {
        // Phases entered: Effect::PhaseEntered(PhaseId::V) emissions.
        let mut entered: Vec<(&str, u32)> = Vec::new();
        for p in &engine.paths {
            if p.head == "PhaseId"
                && !p.in_test
                && p.wrapping_call.as_deref() == Some("PhaseEntered")
                && !entered.iter().any(|(v, _)| *v == p.seg)
            {
                entered.push((&p.seg, p.line));
            }
        }
        // Abort rows: the phase named in an abort_* fn or a MigrationAborted
        // literal.
        let has_abort_row = |variant: &str| {
            engine.paths.iter().any(|p| {
                p.head == "PhaseId"
                    && p.seg == variant
                    && !p.in_test
                    && (p.in_fn.as_deref().is_some_and(|f| {
                        f.rsplit("::")
                            .next()
                            .is_some_and(|b| b.starts_with("abort"))
                    }) || engine.inside_brace_literal("MigrationAborted", p.idx))
            })
        };
        for (variant, line) in entered {
            // Defensive: only variants the enum actually declares.
            if !phases.variants.iter().any(|(v, _)| v == variant) {
                continue;
            }
            if !has_abort_row(variant) {
                out.push(Diagnostic {
                    rule: "R8",
                    name: "abort-row",
                    severity: Severity::Error,
                    path: R8_ENGINE_FILE.to_string(),
                    line,
                    key: format!("phase:PhaseId::{variant}"),
                    msg: format!(
                        "`PhaseId::{variant}` is entered here but has no abort row: no `abort_*` fn and no `MigrationAborted` literal in the engine names it"
                    ),
                });
            }
        }
    }
    if let Some(reasons) = graph.enum_at(R8_ENUM_FILE, "AbortReason") {
        let emittable = graph.constructions_src("AbortReason");
        let asserted = graph.asserted_variants(R8_TEST_FILES, "AbortReason");
        for (variant, _) in &reasons.variants {
            let Some(site) = emittable.get(variant) else {
                continue;
            };
            if !asserted.contains(variant) {
                out.push(Diagnostic {
                    rule: "R8",
                    name: "abort-row",
                    severity: Severity::Error,
                    path: site.path.clone(),
                    line: site.line,
                    key: format!("reason:AbortReason::{variant}"),
                    msg: format!(
                        "`AbortReason::{variant}` can be emitted here but no assertion in {} names it; state the abort row as a test",
                        R8_TEST_FILES.join("/")
                    ),
                });
            }
        }
    }
}

/// R9 `clock-dataflow`: no compile-time clock constant (`SimTime::ZERO`,
/// `SimTime::from_*(<literal>)`) may be passed — directly or any number of
/// call hops away — into a parameter that carries the sim clock.
///
/// A parameter carries the clock when it is SimTime-typed and named
/// `now`/`at`, or when the callee passes it on into such a parameter
/// (computed as a call-graph fixpoint in [`SymbolGraph`]). A call site is
/// flagged only when *every* definition the call can bind to agrees the
/// position is clock-carrying, so ambiguous method names never false-
/// positive.
///
/// Lineage: this generalizes R2 — PR 3's stale-clock bug fed `SimTime::ZERO`
/// into the xlate TTL path, and R2 catches that shape only inside
/// `crates/stack` and only at `*_at(…)` call sites. R9 catches the same
/// invented clock one (or N) hops away, in any simulation-facing crate:
///
/// Bad (the constant is two frames from the `last_hit` write):
/// ```text
/// fn refresh_at(&mut self, now: SimTime) { self.last_hit = now; }
/// fn sweep(&mut self, t: SimTime) { self.refresh_at(t); }
/// fn tick(&mut self) { self.sweep(SimTime::ZERO); }   // flagged here
/// ```
/// Good: thread the real clock down from the event loop:
/// ```text
/// fn tick(&mut self, now: SimTime) { self.sweep(now); }
/// ```
pub fn r9_clock_dataflow(graph: &SymbolGraph, out: &mut Vec<Diagnostic>) {
    for f in graph.files() {
        if !R9_SCOPE.iter().any(|p| f.path.starts_with(p)) || SymbolGraph::is_test_file(&f.path) {
            continue;
        }
        for call in &f.calls {
            if call.in_test {
                continue;
            }
            for (pos, arg) in call.args.iter().enumerate() {
                if *arg != crate::parse::ArgShape::ClockConst
                    || !graph.call_position_tainted(call, pos)
                {
                    continue;
                }
                // Deterministic description of the callee: the first
                // candidate definition (walk order).
                let cands = graph.resolve(call, pos + 1);
                let target = cands
                    .first()
                    .map(|id| {
                        let d = graph.fn_sig(*id);
                        let file = &graph.files()[id.0];
                        format!(
                            "`{}` (param `{}`, {}:{})",
                            d.qual_name, d.params[pos].name, file.path, d.line
                        )
                    })
                    .unwrap_or_else(|| format!("`{}`", call.callee));
                out.push(Diagnostic {
                    rule: "R9",
                    name: "clock-dataflow",
                    severity: Severity::Error,
                    path: f.path.clone(),
                    line: call.line,
                    key: match &call.caller {
                        Some(c) => format!("fn:{c}"),
                        None => "top".to_string(),
                    },
                    msg: format!(
                        "clock constant passed into clock-carrying position {pos} of {target}; thread the sim clock through (stale-clock bug class from PR 3, caught across calls)"
                    ),
                });
            }
        }
    }
}
