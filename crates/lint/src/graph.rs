//! The workspace-wide symbol graph the semantic rules (R7–R9) run over.
//!
//! Built from one [`FileSyms`] per walked file (sources *and* integration
//! tests — the censuses need both). The graph offers exactly the queries the
//! rules consume:
//!
//! * **enum lookup** pinned to a defining file, so a fixture mini-root and
//!   the real tree resolve the same way;
//! * **construction census**: which variants of an enum are built in
//!   expression position anywhere (pattern positions never count);
//! * **mention census** inside one fn's body, for dispatch-arm coverage;
//! * **assertion census** over named test files, for abort-row coverage;
//! * **clock taint**: the fixpoint of "this parameter carries the sim
//!   clock", seeded by SimTime-typed parameters named `now`/`at` and
//!   propagated backwards through call sites that pass a caller's own
//!   parameter along. Resolution is conservative: a call binds to its
//!   candidate definitions by qualified path when available, else by bare
//!   name, and a position is tainted only when *every* arity-compatible
//!   candidate agrees.

use crate::parse::{ArgShape, CallSite, EnumDef, FileSyms, FnSig};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies one fn definition: (file index, fn index within the file).
pub type FnId = (usize, usize);

/// One construction site of an enum variant.
#[derive(Debug, Clone)]
pub struct Site {
    /// Repo-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Whether the site is in test code (a `#[cfg(test)]` region or an
    /// integration-test file).
    pub in_test: bool,
}

/// The workspace symbol graph. See the module docs for the query surface.
pub struct SymbolGraph {
    files: Vec<FileSyms>,
    /// bare fn name → definitions.
    by_bare: BTreeMap<String, Vec<FnId>>,
    /// `impl`-qualified fn name (`Type::name`) → definitions.
    by_qual: BTreeMap<String, Vec<FnId>>,
    /// Tainted clock positions: (fn, parameter index) pairs through which
    /// the sim clock flows.
    tainted: BTreeSet<(FnId, usize)>,
}

impl SymbolGraph {
    /// Build the graph and run the clock-taint fixpoint.
    pub fn build(files: Vec<FileSyms>) -> SymbolGraph {
        let mut by_bare: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_qual: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        for (fi, f) in files.iter().enumerate() {
            for (ni, d) in f.fns.iter().enumerate() {
                by_bare
                    .entry(d.bare_name.clone())
                    .or_default()
                    .push((fi, ni));
                by_qual
                    .entry(d.qual_name.clone())
                    .or_default()
                    .push((fi, ni));
            }
        }
        let mut g = SymbolGraph {
            files,
            by_bare,
            by_qual,
            tainted: BTreeSet::new(),
        };
        g.taint_fixpoint();
        g
    }

    /// All files, in walk order.
    pub fn files(&self) -> &[FileSyms] {
        &self.files
    }

    /// The file at `path`, if walked.
    pub fn file(&self, path: &str) -> Option<&FileSyms> {
        self.files.iter().find(|f| f.path == path)
    }

    /// Whether `path` is an integration-test file (every token in it counts
    /// as test code even without `#[cfg(test)]`).
    pub fn is_test_file(path: &str) -> bool {
        path.starts_with("tests/") || path.contains("/tests/")
    }

    /// The enum `name` as defined in `path`, if both exist.
    pub fn enum_at(&self, path: &str, name: &str) -> Option<&EnumDef> {
        self.file(path)?.enum_def(name)
    }

    /// The fn definition behind a [`FnId`].
    pub fn fn_sig(&self, id: FnId) -> &FnSig {
        &self.files[id.0].fns[id.1]
    }

    /// Construction census: for each variant of `enum_name` built in
    /// expression position anywhere in the workspace (test code included),
    /// the first site (by walk order). Pattern positions (match arms, `let`
    /// patterns) never count as construction.
    pub fn constructions(&self, enum_name: &str) -> BTreeMap<String, Site> {
        self.constructions_impl(enum_name, true)
    }

    /// Like [`SymbolGraph::constructions`], restricted to non-test code —
    /// the sites a live simulation can actually reach.
    pub fn constructions_src(&self, enum_name: &str) -> BTreeMap<String, Site> {
        self.constructions_impl(enum_name, false)
    }

    fn constructions_impl(&self, enum_name: &str, include_tests: bool) -> BTreeMap<String, Site> {
        let mut out: BTreeMap<String, Site> = BTreeMap::new();
        for f in &self.files {
            let file_is_test = Self::is_test_file(&f.path);
            for p in &f.paths {
                let in_test = p.in_test || file_is_test;
                if p.head == enum_name && !p.in_pattern && (include_tests || !in_test) {
                    out.entry(p.seg.clone()).or_insert_with(|| Site {
                        path: f.path.clone(),
                        line: p.line,
                        in_test,
                    });
                }
            }
        }
        out
    }

    /// Variants of `enum_name` mentioned (pattern or expression) inside the
    /// body of the fn `qual_name` defined in `path`. `None` when the file
    /// exists but defines no such fn.
    pub fn mentions_in_fn(
        &self,
        path: &str,
        qual_name: &str,
        enum_name: &str,
    ) -> Option<BTreeSet<String>> {
        let f = self.file(path)?;
        let d = f.fn_def(qual_name)?;
        let (open, close) = d.body?;
        Some(
            f.paths
                .iter()
                .filter(|p| p.head == enum_name && open <= p.idx && p.idx <= close)
                .map(|p| p.seg.clone())
                .collect(),
        )
    }

    /// Variants of `enum_name` named inside an `assert!`-family or
    /// `matches!` invocation in any of `paths` (missing files skipped).
    pub fn asserted_variants(&self, paths: &[&str], enum_name: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for path in paths {
            if let Some(f) = self.file(path) {
                for p in &f.paths {
                    if p.head == enum_name && p.in_assert {
                        out.insert(p.seg.clone());
                    }
                }
            }
        }
        out
    }

    /// Whether the sim clock flows through parameter `idx` of `id`.
    pub fn is_tainted(&self, id: FnId, idx: usize) -> bool {
        self.tainted.contains(&(id, idx))
    }

    /// The candidate definitions a call site may bind to, filtered to those
    /// accepting at least `arity` parameters. Qualified calls
    /// (`Type::name(…)`) resolve by impl-qualified path first; method and
    /// bare calls fall back to every definition with that bare name.
    pub fn resolve(&self, call: &CallSite, arity: usize) -> Vec<FnId> {
        let candidates: &[FnId] = match &call.callee_qual {
            Some(q) if q.starts_with(|c: char| c.is_ascii_uppercase()) => {
                let qual = format!("{q}::{}", call.callee);
                match self.by_qual.get(&qual) {
                    Some(v) => v,
                    // Unknown type qualifier (std or foreign type): the call
                    // cannot bind to workspace definitions.
                    None => return Vec::new(),
                }
            }
            _ => match self.by_bare.get(&call.callee) {
                Some(v) => v,
                None => return Vec::new(),
            },
        };
        candidates
            .iter()
            .copied()
            .filter(|id| self.fn_sig(*id).params.len() >= arity)
            .collect()
    }

    /// Whether every candidate definition of `call` (at `arity` = the
    /// argument position + 1) carries the clock through position `pos` —
    /// and there is at least one candidate.
    pub fn call_position_tainted(&self, call: &CallSite, pos: usize) -> bool {
        let cands = self.resolve(call, pos + 1);
        !cands.is_empty() && cands.iter().all(|id| self.is_tainted(*id, pos))
    }

    /// Seed and propagate clock taint to fixpoint.
    ///
    /// Seed: any SimTime-typed parameter named exactly `now` or `at`.
    /// Propagate: if fn `F` passes its own SimTime-typed parameter `p` into
    /// a tainted position of a callee, `p` is tainted too — that is how R9
    /// sees one (or N) hops past the function that ultimately touches TTL
    /// state.
    fn taint_fixpoint(&mut self) {
        for (fi, f) in self.files.iter().enumerate() {
            for (ni, d) in f.fns.iter().enumerate() {
                for (pi, p) in d.params.iter().enumerate() {
                    if p.clock_typed && (p.name == "now" || p.name == "at") {
                        self.tainted.insert(((fi, ni), pi));
                    }
                }
            }
        }
        loop {
            let mut grew = false;
            for (fi, f) in self.files.iter().enumerate() {
                for call in &f.calls {
                    let Some(caller_qual) = &call.caller else {
                        continue;
                    };
                    // Resolve the enclosing fn within the same file.
                    let Some(ci) = f.fns.iter().position(|d| &d.qual_name == caller_qual) else {
                        continue;
                    };
                    for (pos, arg) in call.args.iter().enumerate() {
                        let ArgShape::Ident(name) = arg else { continue };
                        let Some(pi) = f.fns[ci]
                            .params
                            .iter()
                            .position(|p| &p.name == name && p.clock_typed)
                        else {
                            continue;
                        };
                        if self.tainted.contains(&((fi, ci), pi)) {
                            continue;
                        }
                        let cands = self.resolve(call, pos + 1);
                        if !cands.is_empty()
                            && cands.iter().all(|id| self.tainted.contains(&(*id, pos)))
                        {
                            self.tainted.insert(((fi, ci), pi));
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileCtx;

    fn graph(files: &[(&str, &str)]) -> SymbolGraph {
        SymbolGraph::build(
            files
                .iter()
                .map(|(p, s)| FileSyms::from_ctx(&FileCtx::new(p, s)))
                .collect(),
        )
    }

    #[test]
    fn construction_census_skips_patterns() {
        let g = graph(&[(
            "crates/core/src/x.rs",
            "enum E { A, B }\n\
             fn build() -> E { E::A }\n\
             fn route(e: E) { match e { E::A => {}\n E::B => {} } }",
        )]);
        let census = g.constructions("E");
        assert!(census.contains_key("A"), "expression use counts");
        assert!(
            !census.contains_key("B"),
            "pattern-only use is not construction"
        );
    }

    #[test]
    fn mentions_cover_both_positions() {
        let g = graph(&[(
            "crates/core/src/x.rs",
            "impl W { fn apply(&mut self, e: E) { match e { E::A => {}\n E::B => f(E::C), } } }",
        )]);
        let m = g
            .mentions_in_fn("crates/core/src/x.rs", "W::apply", "E")
            .unwrap();
        let got: Vec<&str> = m.iter().map(String::as_str).collect();
        assert_eq!(got, ["A", "B", "C"]);
    }

    #[test]
    fn taint_seeds_and_propagates_one_hop() {
        let g = graph(&[(
            "crates/stack/src/x.rs",
            "impl T {\n\
             fn refresh_at(&mut self, now: SimTime) { self.last = now; }\n\
             fn sweep(&mut self, t: SimTime) { self.refresh_at(t); }\n\
             fn index(&mut self, at: usize) { self.v[at] = 0; }\n\
             }",
        )]);
        let f = g.file("crates/stack/src/x.rs").unwrap();
        let id_of =
            |name: &str| -> FnId { (0, f.fns.iter().position(|d| d.bare_name == name).unwrap()) };
        assert!(g.is_tainted(id_of("refresh_at"), 0), "seed: now: SimTime");
        assert!(
            g.is_tainted(id_of("sweep"), 0),
            "propagated through the call"
        );
        assert!(
            !g.is_tainted(id_of("index"), 0),
            "`at: usize` is not clock-typed"
        );
    }

    #[test]
    fn ambiguous_bare_names_need_every_candidate_tainted() {
        let g = graph(&[
            (
                "crates/stack/src/a.rs",
                "impl A { fn set(&mut self, now: SimTime) {} }",
            ),
            (
                "crates/stack/src/b.rs",
                "impl B { fn set(&mut self, level: u8) {} }\n\
                 fn f(s: &mut S, t: SimTime) { s.set(t); }",
            ),
        ]);
        let f = g.file("crates/stack/src/b.rs").unwrap();
        let fid = (1, f.fns.iter().position(|d| d.bare_name == "f").unwrap());
        assert!(
            !g.is_tainted(fid, 1),
            "a method call that may bind to a non-clock fn must not taint"
        );
    }
}
